"""LIPP — Wu et al., 2021: an updatable learned index with precise positions.

LIPP's key idea: eliminate the last-mile search entirely.  Every node is
an array of slots addressed *exactly* by its model's prediction; a slot
holds either nothing, one key/value entry, or a child node containing all
keys that collide at that slot.  Queries therefore never search — they
follow at most ``depth`` exact predictions (the survey's *mutable pure /
dynamic layout / in-place* branch, alongside ALEX but without gapped
arrays).

Subtrees whose depth degenerates are rebuilt from their items, mirroring
LIPP's conflict-driven adjustment.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.interfaces import MutableOneDimIndex
from repro.models.linear import LinearModel

__all__ = ["LIPPIndex"]

_EMPTY = 0
_DATA = 1
_CHILD = 2

_MAX_DEPTH = 48


class _LippNode:
    """A LIPP node: model + slot arrays (tag, key, payload).

    ``boundaries`` is the exact-routing fallback for pathological key
    clusters (gaps narrower than linear-model precision): when set, the
    slot of a key is ``searchsorted(boundaries, key, side='right')``.
    """

    __slots__ = ("model", "tags", "keys", "payloads", "count", "boundaries")

    def __init__(self, capacity: int) -> None:
        self.model = LinearModel()
        self.tags = np.zeros(capacity, dtype=np.int8)
        self.keys = np.zeros(capacity)
        self.payloads: list[object] = [None] * capacity
        self.count = 0  # number of keys stored in this subtree
        self.boundaries: np.ndarray | None = None

    @property
    def capacity(self) -> int:
        return int(self.tags.size)


class LIPPIndex(MutableOneDimIndex):
    """LIPP: kernelised tree with exact model-predicted positions.

    Args:
        gap_factor: slots allocated per key at build time (>= 1.5); more
            gaps mean fewer collisions and shallower trees.
    """

    name = "lipp"

    def __init__(self, gap_factor: float = 2.0) -> None:
        super().__init__()
        if gap_factor < 1.5:
            raise ValueError("gap_factor must be >= 1.5")
        self.gap_factor = gap_factor
        self._root: _LippNode | None = None
        self._size = 0

    # -- construction -----------------------------------------------------
    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "LIPPIndex":
        arr, vals = self._prepare(keys, values)
        self._size = int(arr.size)
        self._built = True
        self._root = self._build_node(arr, vals)
        self._refresh_size()
        return self

    def _build_node(self, arr: np.ndarray, vals: list[object]) -> _LippNode:
        """Build one gapped LIPP node from ``arr``.

        Capacity-bounded on the hot path: insert-time conflict rebuilds
        pass one slot's group, so the grouping loop is O(1) per insert;
        only the initial bulk build sees the full array.
        """
        n = arr.size
        capacity = max(8, int(np.ceil(n * self.gap_factor)))
        node = _LippNode(capacity)
        node.count = n
        if n == 0:
            return node
        if float(arr[0]) == float(arr[-1]):
            # All keys equal: a single entry with overwrite semantics.
            node.model = LinearModel(slope=0.0, intercept=0.0)
            node.tags[0] = _DATA
            node.keys[0] = arr[0]
            node.payloads[0] = vals[-1]
            node.count = 1
            return node
        positions = (np.arange(n, dtype=np.float64) + 0.5) / n * capacity
        node.model = LinearModel.fit(arr, positions)
        preds = node.model.predict_array(arr)
        if node.model.slope <= 0 or not np.all(np.isfinite(preds)):
            # Key gaps too narrow for a finite linear model: route by
            # exact unique-key rank instead (one slot per distinct key).
            unique = np.unique(arr)
            node.tags = np.zeros(unique.size, dtype=np.int8)
            node.keys = np.zeros(unique.size)
            node.payloads = [None] * unique.size
            node.boundaries = unique[1:]
            slots = np.searchsorted(node.boundaries, arr, side="right")
        else:
            slots = np.clip(preds.astype(int), 0, capacity - 1)
        # Group keys by slot; singleton groups become DATA, larger groups
        # become child nodes built recursively.
        start = 0
        while start < n:
            end = start + 1
            while end < n and slots[end] == slots[start]:
                end += 1
            s = int(slots[start])
            if end - start == 1:
                node.tags[s] = _DATA
                node.keys[s] = arr[start]
                node.payloads[s] = vals[start]
            else:
                group_keys = arr[start:end]
                if float(group_keys[0]) == float(group_keys[-1]):
                    # All duplicates: keep the last value (overwrite semantics).
                    node.tags[s] = _DATA
                    node.keys[s] = group_keys[0]
                    node.payloads[s] = vals[end - 1]
                    node.count -= (end - start - 1)
                else:
                    node.tags[s] = _CHILD
                    node.payloads[s] = self._build_node(group_keys.copy(), vals[start:end])
            start = end
        return node

    def _refresh_size(self) -> None:
        total = 0
        nodes = 0
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            nodes += 1
            total += node.capacity * 17 + 24
            for s in range(node.capacity):
                if node.tags[s] == _CHILD:
                    stack.append(node.payloads[s])
        self.stats.size_bytes = total
        self.stats.extra["nodes"] = nodes

    # -- slot addressing -----------------------------------------------------
    @staticmethod
    def _slot(node: _LippNode, key: float) -> int:
        if node.boundaries is not None:
            return int(np.searchsorted(node.boundaries, key, side="right"))
        raw = node.model.predict(key)
        if not np.isfinite(raw):
            return 0
        pred = int(raw)
        if pred < 0:
            return 0
        if pred >= node.capacity:
            return node.capacity - 1
        return pred

    # -- reads ------------------------------------------------------------------
    def lookup(self, key: float) -> object | None:
        """Level-bounded descent: each model hop drops one level of the
        precise-placement tree, whose depth conflict rebuilds keep
        logarithmic."""
        self._require_built()
        node = self._root
        key = float(key)
        while node is not None:
            self.stats.nodes_visited += 1
            self.stats.model_predictions += 1
            s = self._slot(node, key)
            tag = node.tags[s]
            if tag == _EMPTY:
                return None
            if tag == _DATA:
                self.stats.comparisons += 1
                if node.keys[s] == key:
                    self.stats.keys_scanned += 1
                    return node.payloads[s]
                return None
            node = node.payloads[s]
        return None

    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        self._require_built()
        if high < low or self._root is None:
            return []
        out: list[tuple[float, object]] = []
        self._scan(self._root, float(low), float(high), out)
        return out

    def _scan(self, node: _LippNode, low: float, high: float, out: list) -> None:
        # Monotone model => keys in slot range [slot(low), slot(high)].
        s_lo = self._slot(node, low)
        s_hi = self._slot(node, high)
        if node.model.slope <= 0:
            s_lo, s_hi = 0, node.capacity - 1
        self.stats.nodes_visited += 1
        for s in range(s_lo, s_hi + 1):
            tag = node.tags[s]
            if tag == _DATA:
                k = float(node.keys[s])
                if low <= k <= high:
                    out.append((k, node.payloads[s]))
                    self.stats.keys_scanned += 1
            elif tag == _CHILD:
                self._scan(node.payloads[s], low, high, out)

    def items(self) -> Iterator[tuple[float, object]]:
        """Yield all entries in key order (in-order slot traversal)."""
        def walk(node: _LippNode):
            for s in range(node.capacity):
                tag = node.tags[s]
                if tag == _DATA:
                    yield float(node.keys[s]), node.payloads[s]
                elif tag == _CHILD:
                    yield from walk(node.payloads[s])

        if self._root is not None:
            yield from walk(self._root)

    # -- writes --------------------------------------------------------------------
    def insert(self, key: float, value: object | None = None) -> None:
        self._require_built()
        key = float(key)
        if self._root is None:
            self._root = self._build_node(np.array([key]), [value])
            self._size = 1
            return
        if self._insert_into(self._root, key, value, depth=0):
            self._size += 1

    def _insert_into(self, node: _LippNode, key: float, value: object, depth: int) -> bool:
        """Level-bounded descent to the conflict slot (see :meth:`lookup`);
        subtree rebuilds along the path are amortized by the ratio test."""
        path: list[_LippNode] = []
        while True:
            path.append(node)
            s = self._slot(node, key)
            tag = node.tags[s]
            if tag == _EMPTY:
                node.tags[s] = _DATA
                node.keys[s] = key
                node.payloads[s] = value
                for p in path:
                    p.count += 1
                return True
            if tag == _DATA:
                if node.keys[s] == key:
                    node.payloads[s] = value
                    return False
                # Collision: push both entries into a fresh child node.
                old_key = float(node.keys[s])
                old_val = node.payloads[s]
                pair = sorted([(old_key, old_val), (key, value)])
                child = self._build_node(
                    np.array([pair[0][0], pair[1][0]]), [pair[0][1], pair[1][1]]
                )
                node.tags[s] = _CHILD
                node.keys[s] = 0.0
                node.payloads[s] = child
                for p in path:
                    p.count += 1
                if depth + len(path) > _MAX_DEPTH:
                    self._rebuild_subtree(path[0])
                return True
            node = node.payloads[s]
            depth += 1

    def _rebuild_subtree(self, node: _LippNode) -> None:
        """Flatten a degenerate subtree and rebuild it balanced."""
        items = []

        def walk(current: _LippNode) -> None:
            for s in range(current.capacity):
                tag = current.tags[s]
                if tag == _DATA:
                    items.append((float(current.keys[s]), current.payloads[s]))
                elif tag == _CHILD:
                    walk(current.payloads[s])

        walk(node)
        items.sort(key=lambda kv: kv[0])
        rebuilt = self._build_node(
            np.array([k for k, _ in items]), [v for _, v in items]
        )
        node.model = rebuilt.model
        node.tags = rebuilt.tags
        node.keys = rebuilt.keys
        node.payloads = rebuilt.payloads
        node.count = rebuilt.count
        self.stats.extra["rebuilds"] = self.stats.extra.get("rebuilds", 0) + 1

    def delete(self, key: float) -> bool:
        self._require_built()
        key = float(key)
        node = self._root
        path: list[tuple[_LippNode, int]] = []
        while node is not None:
            s = self._slot(node, key)
            tag = node.tags[s]
            if tag == _EMPTY:
                return False
            if tag == _DATA:
                if node.keys[s] != key:
                    return False
                node.tags[s] = _EMPTY
                node.payloads[s] = None
                for parent, _ in path:
                    parent.count -= 1
                node.count -= 1
                self._size -= 1
                return True
            path.append((node, s))
            node = node.payloads[s]
        return False

    def __len__(self) -> int:
        return self._size
