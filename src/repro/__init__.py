"""learned-indexes: a reproduction of "Learned Indexes From the
One-dimensional to the Multi-dimensional Spaces" (SIGMOD 2025 tutorial).

The package has seven layers:

* :mod:`repro.core` -- index interfaces + the paper's taxonomy registry
  and figure generators.
* :mod:`repro.models` -- ML substrate (linear/PLA/spline/CDF/MLP/...).
* :mod:`repro.baselines` -- traditional structures (B+-tree, R-tree, ...).
* :mod:`repro.curves` -- space-filling curves (Z-order, Hilbert).
* :mod:`repro.onedim` / :mod:`repro.multidim` -- the learned indexes.
* :mod:`repro.data` / :mod:`repro.bench` -- workloads and the benchmark
  harness (experiments E1-E12, figures F1-F3, table T1).
* :mod:`repro.serve` -- sharded, request-coalescing serving layer
  (experiment E19).

Quickstart::

    import numpy as np
    from repro.onedim import PGMIndex

    keys = np.sort(np.random.default_rng(0).uniform(0, 1e9, 1_000_000))
    index = PGMIndex(epsilon=64).build(keys)
    index.lookup(keys[42])      # -> 42
    index.range_query(keys[10], keys[20])
"""

from repro import baselines, bench, core, curves, data, models, multidim, onedim, serve

__version__ = "1.0.0"

__all__ = [
    "core", "models", "baselines", "curves", "onedim", "multidim", "data", "bench", "serve",
]
