"""Index persistence: save built indexes to disk and load them back.

Learned indexes are cheap to store (that is their headline feature), so
shipping a built index to another process is a natural workflow.  Since
format version 2 the single-file layout shares its data model with the
artifact store (:mod:`repro.core.artifact`): the index is split along
the :mod:`repro.core.state` line into raw little-endian array blocks
plus one pickled payload block, described by an embedded JSON manifest
with a sha256 **per block** — aliased arrays are stored once, and every
block (including the payload, before it is unpickled) verifies its own
digest instead of trusting one monolithic hash over the whole file.

Layout::

    MAGIC | version (2) | manifest sha256 (32) | manifest length (4)
          | manifest JSON | array block 0 | ... | payload block

Version-1 files (whole-object pickle behind a single digest) still
load.

Security note: pickle executes code on load — only load index files you
produced yourself, exactly like numpy's ``allow_pickle`` data.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.state import (
    IndexState,
    StateError,
    export_index_state,
    index_from_state,
    resolve_index_class,
)

__all__ = ["save_index", "load_index", "PersistenceError", "FORMAT_VERSION"]

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 2

_MAGIC = b"LIDX"

#: Fixed header size of a version-2 file: magic + version + manifest
#: digest + manifest length.
_V2_HEADER = 4 + 2 + 32 + 4


class PersistenceError(RuntimeError):
    """Raised when an index file is missing, corrupt, or incompatible."""


def _export(index: object) -> tuple[IndexState, bool]:
    """Split ``index`` into an exportable state plus its built flag.

    Built indexes go through their own ``export_state`` (so subclass
    overrides run); unbuilt indexes and filters take the generic path,
    which needs no lifecycle.
    """
    built = bool(getattr(index, "_built", False))
    export = getattr(index, "export_state", None)
    try:
        if built and callable(export):
            return export(), True
        return export_index_state(index), built
    except (StateError, TypeError) as exc:
        raise PersistenceError(
            f"{type(index).__name__} is not serializable: {exc}"
        ) from exc


def save_index(index: object, path: str | Path) -> int:
    """Serialise an index to ``path``.

    Args:
        index: any index object from this library (built or not).
        path: destination file.

    Returns:
        The number of bytes written.
    """
    state, built = _export(index)
    blocks: list[bytes] = []
    entries: list[dict[str, Any]] = []
    offset = 0
    for arr in state.arrays:
        out = np.ascontiguousarray(arr)
        if out.dtype.str.startswith(">"):
            out = out.astype(out.dtype.newbyteorder("<"))
        raw = out.tobytes()
        entries.append({
            "dtype": out.dtype.str,
            "shape": list(out.shape),
            "offset": offset,
            "nbytes": len(raw),
            "sha256": hashlib.sha256(raw).hexdigest(),
        })
        blocks.append(raw)
        offset += len(raw)
    manifest = {
        "built": built,
        "class": {"module": state.cls_module, "qualname": state.cls_qualname},
        "arrays": entries,
        "payload": {
            "offset": offset,
            "nbytes": len(state.payload),
            "sha256": hashlib.sha256(state.payload).hexdigest(),
        },
    }
    manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
    blob = (
        _MAGIC
        + FORMAT_VERSION.to_bytes(2, "big")
        + hashlib.sha256(manifest_bytes).digest()
        + len(manifest_bytes).to_bytes(4, "big")
        + manifest_bytes
        + b"".join(blocks)
        + state.payload
    )
    Path(path).write_bytes(blob)
    return len(blob)


def load_index(path: str | Path) -> object:
    """Load an index previously written by :func:`save_index`.

    Raises:
        PersistenceError: wrong magic, unsupported version, truncation,
            or any block whose digest does not match (corruption).
    """
    data = Path(path).read_bytes()
    if len(data) < 6 or data[:4] != _MAGIC:
        raise PersistenceError(f"{path}: not a learned-index file")
    version = int.from_bytes(data[4:6], "big")
    if version > FORMAT_VERSION:
        raise PersistenceError(
            f"{path}: format version {version} newer than supported {FORMAT_VERSION}"
        )
    if version == 1:
        return _load_v1(path, data)
    return _load_v2(path, data)


def _load_v1(path: str | Path, data: bytes) -> object:
    """Legacy loader: whole-object pickle behind one monolithic digest."""
    if len(data) < 38:
        raise PersistenceError(f"{path}: truncated version-1 file")
    digest = data[6:38]
    payload = data[38:]
    if hashlib.sha256(payload).digest() != digest:
        raise PersistenceError(f"{path}: payload digest mismatch (corrupt file)")
    return pickle.loads(payload)


def _block(path: str | Path, body: bytes, entry: dict[str, Any],
           what: str) -> bytes:
    """Slice one manifest-described block and verify its digest."""
    try:
        offset = int(entry["offset"])
        nbytes = int(entry["nbytes"])
        expected = str(entry["sha256"])
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"{path}: malformed manifest ({what})") from exc
    raw = body[offset:offset + nbytes]
    if len(raw) != nbytes:
        raise PersistenceError(f"{path}: truncated file ({what})")
    if hashlib.sha256(raw).hexdigest() != expected:
        raise PersistenceError(f"{path}: {what} digest mismatch (corrupt file)")
    return raw


def _load_v2(path: str | Path, data: bytes) -> object:
    """Manifest-described loader: every block digest-verified before use."""
    if len(data) < _V2_HEADER:
        raise PersistenceError(f"{path}: truncated header")
    manifest_digest = data[6:38]
    manifest_len = int.from_bytes(data[38:42], "big")
    manifest_bytes = data[_V2_HEADER:_V2_HEADER + manifest_len]
    if len(manifest_bytes) != manifest_len:
        raise PersistenceError(f"{path}: truncated manifest")
    if hashlib.sha256(manifest_bytes).digest() != manifest_digest:
        raise PersistenceError(f"{path}: manifest digest mismatch (corrupt file)")
    try:
        manifest = json.loads(manifest_bytes)
    except ValueError as exc:
        raise PersistenceError(f"{path}: unreadable manifest: {exc}") from exc
    if not isinstance(manifest, dict) or "class" not in manifest:
        raise PersistenceError(f"{path}: malformed manifest")
    body = data[_V2_HEADER + manifest_len:]
    arrays: list[np.ndarray] = []
    for i, entry in enumerate(manifest.get("arrays", [])):
        raw = _block(path, body, entry, f"array #{i}")
        try:
            dtype = np.dtype(str(entry["dtype"]))
            shape = tuple(int(x) for x in entry["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(
                f"{path}: bad dtype/shape for array #{i}"
            ) from exc
        # Private writable copy: persistence-loaded indexes stay fully
        # mutable (the artifact store is the zero-copy mmap path).
        arrays.append(np.frombuffer(raw, dtype=dtype).reshape(shape).copy())
    payload = _block(path, body, manifest["payload"], "payload")
    state = IndexState(
        cls_module=str(manifest["class"].get("module", "")),
        cls_qualname=str(manifest["class"].get("qualname", "")),
        arrays=arrays,
        payload=payload,
    )
    try:
        if manifest.get("built"):
            cls = resolve_index_class(state)
            from_state = getattr(cls, "from_state", None)
            if callable(from_state):
                return from_state(state)
        return index_from_state(state)
    except StateError as exc:
        raise PersistenceError(f"{path}: {exc}") from exc
