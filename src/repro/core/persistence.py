"""Index persistence: save built indexes to disk and load them back.

Learned indexes are cheap to store (that is their headline feature), so
shipping a built index to another process is a natural workflow.  The
format is a versioned pickle with an integrity header; loading verifies
both before unpickling.

Security note: pickle executes code on load — only load index files you
produced yourself, exactly like numpy's ``allow_pickle`` data.
"""

from __future__ import annotations

import hashlib
import io
import pickle
from pathlib import Path

__all__ = ["save_index", "load_index", "PersistenceError", "FORMAT_VERSION"]

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

_MAGIC = b"LIDX"


class PersistenceError(RuntimeError):
    """Raised when an index file is missing, corrupt, or incompatible."""


def save_index(index: object, path: str | Path) -> int:
    """Serialise a built index to ``path``.

    Args:
        index: any index object from this library (built or not).
        path: destination file.

    Returns:
        The number of bytes written.

    The file layout is ``MAGIC | version (2 bytes) | sha256 (32 bytes) |
    payload``; the digest covers the payload so silent corruption is
    detected at load time.
    """
    buffer = io.BytesIO()
    pickle.dump(index, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    payload = buffer.getvalue()
    digest = hashlib.sha256(payload).digest()
    blob = _MAGIC + FORMAT_VERSION.to_bytes(2, "big") + digest + payload
    out = Path(path)
    out.write_bytes(blob)
    return len(blob)


def load_index(path: str | Path) -> object:
    """Load an index previously written by :func:`save_index`.

    Raises:
        PersistenceError: wrong magic, unsupported version, or a payload
            whose digest does not match (corruption).
    """
    data = Path(path).read_bytes()
    if len(data) < 38 or data[:4] != _MAGIC:
        raise PersistenceError(f"{path}: not a learned-index file")
    version = int.from_bytes(data[4:6], "big")
    if version > FORMAT_VERSION:
        raise PersistenceError(
            f"{path}: format version {version} newer than supported {FORMAT_VERSION}"
        )
    digest = data[6:38]
    payload = data[38:]
    if hashlib.sha256(payload).digest() != digest:
        raise PersistenceError(f"{path}: payload digest mismatch (corrupt file)")
    return pickle.loads(payload)
