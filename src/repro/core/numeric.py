"""Numeric-safety helpers shared by the kernels.

SOSD-style workloads carry full 64-bit integer keys, and the projected
multi-dimensional indexes produce Morton/Hilbert codes up to 62 bits
wide.  float64 represents integers exactly only up to ``2**53``
(:data:`FLOAT64_EXACT_BITS`); casting wider integers to float silently
merges distinct keys, which corrupts lookups while *looking* like a
performance artefact (cf. Marcus et al., "Benchmarking Learned
Indexes").  :func:`exact_float64` is the sanctioned cast: it performs
the int -> float64 conversion but raises when any value would not
round-trip.  The ``RPR102`` dataflow rule flags raw ``astype(float64)``
casts of wide integers and points at this helper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FLOAT64_EXACT_BITS", "FLOAT64_EXACT_MAX", "exact_float64"]

#: float64 has a 53-bit significand: integers in [-2^53, 2^53] are exact.
FLOAT64_EXACT_BITS = 53

#: Largest magnitude below which *every* integer is exactly representable.
FLOAT64_EXACT_MAX = 1 << FLOAT64_EXACT_BITS


def exact_float64(values: object, *, what: str = "values") -> np.ndarray:
    """Cast ``values`` to float64, raising if any integer would be lossy.

    Float input is passed through (converted to float64 if needed); the
    round-trip check applies to integer dtypes only.  Values beyond
    ``2**53`` that happen to be exactly representable (e.g. ``2**53 + 2``)
    are accepted — the check is value-dependent, not a blanket magnitude
    cut-off — so the guard costs one min/max scan unless the data
    actually strays beyond the exact range.

    Args:
        values: array-like of numbers.
        what: label used in the error message.

    Raises:
        ValueError: when an integer value does not survive the
            int -> float64 -> int round-trip.
    """
    arr = np.asarray(values)
    if arr.dtype == object:
        # Python ints wider than 64 bits (object-dtype Morton codes).
        out = arr.astype(np.float64)
        if arr.size and any(int(v) != int(f) for v, f in zip(arr.ravel(), out.ravel())):
            raise ValueError(
                f"{what}: integer values exceed float64's exact range "
                f"(2^{FLOAT64_EXACT_BITS}); a float cast would merge distinct values"
            )
        return out
    if arr.dtype.kind not in "iu":
        return arr if arr.dtype == np.float64 else arr.astype(np.float64)
    out = arr.astype(np.float64)
    if arr.size:
        hi = int(arr.max())
        lo = int(arr.min())
        if hi > FLOAT64_EXACT_MAX or lo < -FLOAT64_EXACT_MAX:
            with np.errstate(invalid="ignore", over="ignore"):
                back = out.astype(arr.dtype)
            if not np.array_equal(back, arr):
                raise ValueError(
                    f"{what}: integer values exceed float64's exact range "
                    f"(2^{FLOAT64_EXACT_BITS}); a float cast would merge distinct values"
                )
    return out
