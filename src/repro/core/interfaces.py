"""Uniform index interfaces shared by every structure in the library.

The survey classifies learned indexes along several axes (immutable vs.
mutable, one- vs. multi-dimensional, pure vs. hybrid).  To let benchmarks
and tests treat all of them uniformly, every index in this repository
implements one of the small abstract interfaces defined here:

* :class:`OneDimIndex` — read-only key -> value index over totally ordered
  keys, with point lookups and range scans.
* :class:`MutableOneDimIndex` — adds ``insert``/``delete``.
* :class:`MultiDimIndex` — read-only index over d-dimensional points, with
  point, axis-aligned range, and kNN queries.
* :class:`MutableMultiDimIndex` — adds ``insert``/``delete``.
* :class:`MembershipFilter` — approximate membership (Bloom-filter family).

Every index also carries an :class:`IndexStats` object with
machine-independent cost counters (comparisons, keys scanned, nodes or
models visited) and a size estimate in bytes.  Counters make benchmark
*shapes* reproducible even when absolute Python timings vary by machine.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.numeric import exact_float64
from repro.core.state import IndexState, StateError, export_index_state, index_from_state

__all__ = [
    "IndexStats",
    "OneDimIndex",
    "MutableOneDimIndex",
    "MultiDimIndex",
    "MutableMultiDimIndex",
    "MembershipFilter",
    "NotBuiltError",
    "as_object_array",
]


class NotBuiltError(RuntimeError):
    """Raised when querying an index that has not been built yet."""


def as_object_array(values: Sequence[object]) -> np.ndarray:
    """1-d object ndarray holding ``values`` verbatim.

    ``np.asarray`` would recursively convert sequence-valued payloads
    into multi-dimensional arrays; assigning element-wise keeps each
    payload intact whatever its type.
    """
    out = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        out[i] = v
    return out


@dataclass
class IndexStats:
    """Machine-independent cost counters and a size estimate.

    Attributes:
        comparisons: number of key comparisons performed during queries.
        keys_scanned: number of stored keys touched while answering queries.
        nodes_visited: internal nodes / models / buckets traversed.
        model_predictions: number of learned-model invocations.
        corrections: total size of last-mile (error-correction) searches.
        build_seconds: wall-clock time of the most recent ``build``.
        size_bytes: estimated in-memory footprint of the index structure
            (excluding the raw data it indexes, unless the index owns a
            private copy with gaps or duplication — then that is counted).
    """

    comparisons: int = 0
    keys_scanned: int = 0
    nodes_visited: int = 0
    model_predictions: int = 0
    corrections: int = 0
    build_seconds: float = 0.0
    size_bytes: int = 0
    extra: dict[str, object] = field(default_factory=dict)

    def reset_counters(self) -> None:
        """Zero the per-query counters, keeping build time and size."""
        self.comparisons = 0
        self.keys_scanned = 0
        self.nodes_visited = 0
        self.model_predictions = 0
        self.corrections = 0

    def snapshot(self) -> dict[str, int | float]:
        """Return a plain-dict copy of all counters for reporting."""
        return {
            "comparisons": self.comparisons,
            "keys_scanned": self.keys_scanned,
            "nodes_visited": self.nodes_visited,
            "model_predictions": self.model_predictions,
            "corrections": self.corrections,
            "build_seconds": self.build_seconds,
            "size_bytes": self.size_bytes,
        }

    def merge(self, other: "IndexStats") -> "IndexStats":
        """Return a new :class:`IndexStats` combining two counter sets.

        All counters sum, including ``build_seconds`` (total build work
        across shards) and ``size_bytes`` (total footprint).  ``extra``
        keys from both sides are carried over; ``other`` wins on
        conflicts.  The numeric part is commutative —
        ``a.merge(b).snapshot() == b.merge(a).snapshot()`` — which lets
        sharded serving aggregate per-shard stats in any drain order.
        """
        merged = IndexStats(
            comparisons=self.comparisons + other.comparisons,
            keys_scanned=self.keys_scanned + other.keys_scanned,
            nodes_visited=self.nodes_visited + other.nodes_visited,
            model_predictions=self.model_predictions + other.model_predictions,
            corrections=self.corrections + other.corrections,
            build_seconds=self.build_seconds + other.build_seconds,
            size_bytes=self.size_bytes + other.size_bytes,
        )
        merged.extra = {**self.extra, **other.extra}
        return merged


class OneDimIndex(abc.ABC):
    """A (possibly immutable) one-dimensional key -> value index.

    Keys are real numbers (ints or floats); values are arbitrary Python
    objects, most commonly integer record ids.  Implementations must accept
    duplicate-free key sets; behaviour under duplicate keys is
    implementation-defined unless documented otherwise.
    """

    #: Human-readable name used in benchmark tables.
    name: str = "one-dim-index"

    def __init__(self) -> None:
        self.stats = IndexStats()
        self._built = False

    # -- construction ----------------------------------------------------
    @abc.abstractmethod
    def build(self, keys: Sequence[float], values: Sequence[object] | None = None) -> "OneDimIndex":
        """Bulk-load the index from ``keys`` (sorted or unsorted).

        Args:
            keys: the keys to index.  They will be sorted internally if the
                implementation requires it.
            values: optional payloads aligned with ``keys``; defaults to the
                position of each key in the *sorted* key order.

        Returns:
            ``self``, to allow ``index = RMIIndex().build(keys)``.
        """

    # -- queries ----------------------------------------------------------
    @abc.abstractmethod
    def lookup(self, key: float) -> object | None:
        """Return the value stored for ``key``, or ``None`` if absent."""

    @abc.abstractmethod
    def range_query(self, low: float, high: float) -> list[tuple[float, object]]:
        """Return all ``(key, value)`` pairs with ``low <= key <= high``.

        Results are sorted by key.
        """

    def contains(self, key: float) -> bool:
        """Return whether ``key`` is present."""
        return self.lookup(key) is not None

    # -- batch queries -----------------------------------------------------
    def lookup_batch(self, keys: Sequence[float]) -> np.ndarray:
        """Answer many point lookups at once.

        Returns an object ndarray aligned with ``keys``: the stored value
        for each hit, ``None`` for each miss — exactly what a loop of
        scalar :meth:`lookup` calls would produce.  The base
        implementation *is* that loop; hot indexes override it with
        numpy-vectorized paths that amortize Python interpreter overhead
        across the whole batch (their :class:`IndexStats` counters are
        then aggregated per batch rather than per comparison).
        """
        self._require_built()
        arr = np.asarray(keys, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        out = np.empty(arr.size, dtype=object)
        for i in range(arr.size):
            out[i] = self.lookup(float(arr[i]))
        return out

    def contains_batch(self, keys: Sequence[float]) -> np.ndarray:
        """Boolean ndarray: presence of each key (batched :meth:`contains`)."""
        results = self.lookup_batch(keys)
        return np.fromiter(
            (r is not None for r in results), dtype=bool, count=results.size
        )

    def __len__(self) -> int:
        raise NotImplementedError

    # -- built-state export (the shared-state contract) --------------------
    def export_state(self) -> IndexState:
        """Snapshot the built index: shareable arrays plus pickled residue.

        The snapshot reconstructs via :meth:`from_state` without
        retraining; the serving layer packs it into shared memory so
        worker processes can map the arrays zero-copy
        (:mod:`repro.serve.shm`).  Implementations overriding this must
        override :meth:`from_state` too (the RPR010 pairing contract).
        """
        self._require_built()
        return export_index_state(self)

    @classmethod
    def from_state(cls, state: IndexState,
                   arrays: list[np.ndarray] | None = None) -> "OneDimIndex":
        """Rebuild an index from :meth:`export_state` output, no retraining.

        ``arrays`` optionally substitutes the exported arrays with
        positionally aligned views (e.g. shared-memory mappings).
        """
        instance = index_from_state(state, arrays)
        if not isinstance(instance, cls):
            raise StateError(
                f"state holds a {state.class_path()}, not a {cls.__name__}"
            )
        return instance

    # -- on-disk persistence (the artifact store) --------------------------
    def save(self, path: str | Path) -> Path:
        """Persist the built index as a verifiable artifact directory.

        Writes :meth:`export_state` output through
        :func:`repro.core.artifact.write_artifact`: raw little-endian
        array files plus a pickled payload, described by a
        ``manifest.json`` with a sha256 per file.  Returns the artifact
        directory; reload it with :meth:`load` — no retraining.
        """
        from repro.core.artifact import write_artifact

        return write_artifact(self.export_state(), path)

    @classmethod
    def load(cls, path: str | Path,
             mmap_mode: str | None = "r") -> "OneDimIndex":
        """Reconstruct an index saved by :meth:`save`, without retraining.

        Args:
            path: the artifact directory.
            mmap_mode: ``"r"`` (default) maps arrays lazily as read-only
                ``np.memmap`` views — instant cold start, zero copies;
                ``None`` materializes private writable arrays eagerly
                (use this when the index will be mutated heavily).

        Every file is digest-verified before any bytes are mapped or
        unpickled.
        """
        from repro.core.artifact import read_artifact

        return cls.from_state(read_artifact(path, mmap_mode=mmap_mode))

    # -- helpers ----------------------------------------------------------
    def _require_built(self) -> None:
        if not self._built:
            raise NotBuiltError(f"{self.name}: call build() before querying")

    def _thaw(self, *names: str) -> None:
        """Copy-on-write the named array attributes before in-place writes.

        Arrays restored from a read-only mapping (``mmap_mode="r"``
        loads, shared-memory views) are non-writeable; swapping in a
        private copy on first mutation keeps the backing file or segment
        byte-identical while letting mutable indexes mutate freely.
        Writable arrays are left untouched, so the built/eager paths pay
        nothing.
        """
        for name in names:
            arr = getattr(self, name, None)
            if isinstance(arr, np.ndarray) and not arr.flags.writeable:
                setattr(self, name, arr.copy())

    @staticmethod
    def _prepare(keys: Sequence[float], values: Sequence[object] | None) -> tuple[np.ndarray, list[object]]:
        """Sort keys (with aligned values) and return ``(keys, values)``.

        Default values are the ranks in sorted order, matching the learned
        index literature where the payload is the key's position.

        Integer keys (SOSD workloads use the full 64-bit range) must
        survive the float64 cast exactly: above ``2**53`` distinct keys
        can merge, which corrupts lookups while looking like a model
        accuracy problem, so :func:`repro.core.numeric.exact_float64`
        raises instead of casting lossily.
        """
        arr = exact_float64(keys, what="index keys")
        if arr.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        if arr.size and not np.all(np.isfinite(arr)):
            raise ValueError("keys must be finite")
        order = np.argsort(arr, kind="mergesort")
        arr = arr[order]
        if values is None:
            vals: list[object] = list(range(arr.size))
        else:
            if len(values) != arr.size:
                raise ValueError("values must align with keys")
            vals = [values[i] for i in order]
        return arr, vals


class MutableOneDimIndex(OneDimIndex):
    """A one-dimensional index supporting dynamic inserts and deletes."""

    @abc.abstractmethod
    def insert(self, key: float, value: object | None = None) -> None:
        """Insert ``key`` with ``value`` (replacing any existing entry)."""

    @abc.abstractmethod
    def delete(self, key: float) -> bool:
        """Remove ``key``; return ``True`` if it was present."""


class MultiDimIndex(abc.ABC):
    """A (possibly immutable) index over d-dimensional points.

    Points are rows of a float64 array of shape ``(n, d)``.  Values default
    to row positions in the array passed to :meth:`build`.
    """

    name: str = "multi-dim-index"

    def __init__(self) -> None:
        self.stats = IndexStats()
        self._built = False
        self.dims = 0

    @abc.abstractmethod
    def build(self, points: np.ndarray, values: Sequence[object] | None = None) -> "MultiDimIndex":
        """Bulk-load the index from an ``(n, d)`` array of points."""

    @abc.abstractmethod
    def point_query(self, point: Sequence[float]) -> object | None:
        """Return the value stored at exactly ``point``, or ``None``."""

    @abc.abstractmethod
    def range_query(self, low: Sequence[float], high: Sequence[float]) -> list[tuple[tuple[float, ...], object]]:
        """Return all ``(point, value)`` pairs inside the box [low, high].

        The box is closed on both ends in every dimension.  Results are in
        implementation order; tests sort before comparing.
        """

    def point_query_batch(self, points: np.ndarray) -> np.ndarray:
        """Answer many point queries at once.

        Returns an object ndarray aligned with the rows of ``points``
        (shape ``(m, d)``): the stored value per hit, ``None`` per miss —
        identical to looping scalar :meth:`point_query`.  Indexes with a
        vectorizable layout override this loop fallback.
        """
        self._require_built()
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must have shape (m, d)")
        out = np.empty(pts.shape[0], dtype=object)
        for i in range(pts.shape[0]):
            out[i] = self.point_query(pts[i])
        return out

    def range_query_batch(self, lows: np.ndarray, highs: np.ndarray) -> list[list[tuple[tuple[float, ...], object]]]:
        """Answer many axis-aligned range queries at once.

        Args:
            lows, highs: ``(m, d)`` arrays of box corners (closed boxes).

        Returns:
            A list of per-box result lists, element-wise identical to a
            loop of scalar :meth:`range_query` calls (same points, same
            values, same in-box ordering).  The base implementation is
            that loop; grid-shaped indexes override it with vectorized
            cell routing and in-cell mask filtering.

        The fallback validates exactly once per batch call — one
        ``_require_built`` check and one shape check up front — then
        fills a preallocated result list through a single bound-method
        reference, so per-row work is only the scalar query itself.
        """
        self._require_built()
        lo = np.asarray(lows, dtype=np.float64)
        hi = np.asarray(highs, dtype=np.float64)
        if lo.ndim != 2 or hi.shape != lo.shape:
            raise ValueError("lows/highs must both have shape (m, d)")
        m = lo.shape[0]
        scalar = self.range_query
        out: list[list[tuple[tuple[float, ...], object]]] = [[] for _ in range(m)]
        for i in range(m):
            out[i] = scalar(lo[i], hi[i])
        return out

    def knn_query(self, point: Sequence[float], k: int) -> list[tuple[tuple[float, ...], object]]:
        """Return the ``k`` nearest neighbours of ``point`` (Euclidean).

        The default implementation performs range expansion over
        :meth:`range_query`; spatial trees override it with guided search.
        """
        self._require_built()
        if k <= 0:
            return []
        q = np.asarray(point, dtype=np.float64)
        # Expanding-radius search: start from a small box, grow until we
        # have k candidates whose true distance is within the box radius.
        # Growth is clamped: once the box dwarfs the data extent, wider
        # boxes cannot add candidates, and unclamped doubling of a large
        # initial radius would overflow to inf (and then nan bounds).
        radius = self._initial_knn_radius(k)
        max_radius = min(
            max(float(getattr(self, "_extent", 1.0)), radius, 1.0) * 2.0 ** 40,
            1e300,
        )
        candidates: list[tuple[tuple[float, ...], object]] = []
        for _ in range(64):
            lo = q - radius
            hi = q + radius
            candidates = self.range_query(lo, hi)
            if len(candidates) >= k:
                dists = sorted(
                    (float(np.linalg.norm(np.asarray(p) - q)), p, v) for p, v in candidates
                )
                if dists[k - 1][0] <= radius:
                    return [(p, v) for _, p, v in dists[:k]]
            if radius >= max_radius:
                break  # box already covers the whole data space
            radius = min(radius * 2.0, max_radius)
        # Fall back to whatever we gathered (covers tiny datasets and
        # k > len(index)); the last query used the largest box.
        if not candidates:
            return []
        dists = sorted((float(np.linalg.norm(np.asarray(p) - q)), p, v) for p, v in candidates)
        return [(p, v) for _, p, v in dists[:k]]

    def _initial_knn_radius(self, k: int) -> float:
        n = max(len(self), 1)
        extent = getattr(self, "_extent", 1.0)
        frac = min(1.0, (k / n) ** (1.0 / max(self.dims, 1)))
        return max(extent * frac, extent * 1e-6, 1e-12)

    def __len__(self) -> int:
        raise NotImplementedError

    def _require_built(self) -> None:
        if not self._built:
            raise NotBuiltError(f"{self.name}: call build() before querying")

    # -- built-state export (the shared-state contract) --------------------
    def export_state(self) -> IndexState:
        """Snapshot the built index: shareable arrays plus pickled residue.

        Same contract as :meth:`OneDimIndex.export_state`; overriding it
        requires overriding :meth:`from_state` as well (RPR010).
        """
        self._require_built()
        return export_index_state(self)

    @classmethod
    def from_state(cls, state: IndexState,
                   arrays: list[np.ndarray] | None = None) -> "MultiDimIndex":
        """Rebuild an index from :meth:`export_state` output, no retraining."""
        instance = index_from_state(state, arrays)
        if not isinstance(instance, cls):
            raise StateError(
                f"state holds a {state.class_path()}, not a {cls.__name__}"
            )
        return instance

    # -- on-disk persistence (the artifact store) --------------------------
    def save(self, path: str | Path) -> Path:
        """Persist the built index as a verifiable artifact directory.

        Same contract as :meth:`OneDimIndex.save`.
        """
        from repro.core.artifact import write_artifact

        return write_artifact(self.export_state(), path)

    @classmethod
    def load(cls, path: str | Path,
             mmap_mode: str | None = "r") -> "MultiDimIndex":
        """Reconstruct an index saved by :meth:`save`, without retraining.

        Same contract as :meth:`OneDimIndex.load`: ``mmap_mode="r"``
        (default) maps arrays as lazy read-only views, ``None``
        materializes writable copies; every file is digest-verified
        before any bytes are mapped or unpickled.
        """
        from repro.core.artifact import read_artifact

        return cls.from_state(read_artifact(path, mmap_mode=mmap_mode))

    def _thaw(self, *names: str) -> None:
        """Copy-on-write the named array attributes before in-place writes.

        Same contract as :meth:`OneDimIndex._thaw`: restored read-only
        arrays are replaced by private writable copies; writable arrays
        are left untouched.
        """
        for name in names:
            arr = getattr(self, name, None)
            if isinstance(arr, np.ndarray) and not arr.flags.writeable:
                setattr(self, name, arr.copy())

    @staticmethod
    def _prepare_points(points: np.ndarray, values: Sequence[object] | None) -> tuple[np.ndarray, list[object]]:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must have shape (n, d)")
        if pts.size and not np.all(np.isfinite(pts)):
            raise ValueError("points must be finite")
        if values is None:
            vals: list[object] = list(range(pts.shape[0]))
        else:
            if len(values) != pts.shape[0]:
                raise ValueError("values must align with points")
            vals = list(values)
        return pts, vals


class MutableMultiDimIndex(MultiDimIndex):
    """A multi-dimensional index supporting inserts and deletes."""

    @abc.abstractmethod
    def insert(self, point: Sequence[float], value: object | None = None) -> None:
        """Insert ``point`` with ``value``."""

    @abc.abstractmethod
    def delete(self, point: Sequence[float]) -> bool:
        """Remove ``point``; return ``True`` if it was present."""


class MembershipFilter(abc.ABC):
    """Approximate membership: may return false positives, never false negatives."""

    name: str = "membership-filter"

    def __init__(self) -> None:
        self.stats = IndexStats()

    @abc.abstractmethod
    def build(self, keys: Iterable[float]) -> "MembershipFilter":
        """Construct the filter over ``keys``."""

    @abc.abstractmethod
    def might_contain(self, key: float) -> bool:
        """Return ``True`` if ``key`` may be in the set (no false negatives)."""

    def false_positive_rate(self, negatives: Iterable[float]) -> float:
        """Measure the empirical FPR over ``negatives`` (true non-members)."""
        total = 0
        hits = 0
        for key in negatives:
            total += 1
            if self.might_contain(key):
                hits += 1
        return hits / total if total else 0.0
