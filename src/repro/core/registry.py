"""Machine-readable registry of the learned indexes surveyed by the paper.

The tutorial classifies over 100 learned one- and multi-dimensional
indexes (Figure 2) and tracks their evolution over time (Figure 3).  This
module encodes each surveyed index as an :class:`IndexInfo` record carrying
its taxonomy coordinates, publication year, reference number in the paper's
bibliography, ML technique(s), supported query types, and lineage edges to
the earlier work it builds on.

Figures 1-3 and the §5.6 summary table are generated from these records by
:mod:`repro.core.spectrum`, :mod:`repro.core.tree_render`,
:mod:`repro.core.timeline`, and :mod:`repro.core.summary`.

Classification follows the paper's own grouping: e.g. §5.2 lists the
immutable pure multi-dimensional indexes and §5.3 the immutable hybrid
ones, so Flood and Tsunami are registered as grid-based hybrids exactly as
the paper places them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import networkx as nx

from repro.core.taxonomy import (
    ComplexityClass,
    Dimensionality,
    HybridComponent,
    InsertStrategy,
    Layout,
    MLTechnique,
    Mutability,
    QueryType,
    SpaceHandling,
    Spectrum,
)

__all__ = ["IndexInfo", "REGISTRY", "get", "query", "lineage_graph", "counts_by"]


@dataclass(frozen=True)
class IndexInfo:
    """One surveyed learned index and its taxonomy coordinates."""

    name: str
    year: int
    refs: tuple[int, ...]
    mutability: Mutability
    dimensionality: Dimensionality
    spectrum: Spectrum
    layout: Layout = Layout.NOT_APPLICABLE
    insert_strategy: InsertStrategy = InsertStrategy.NOT_APPLICABLE
    hybrid_component: HybridComponent = HybridComponent.NONE
    space: SpaceHandling = SpaceHandling.NOT_APPLICABLE
    ml: tuple[MLTechnique, ...] = ()
    queries: tuple[QueryType, ...] = (QueryType.POINT,)
    concurrent: bool = False
    assigned_name: bool = False
    influences: tuple[str, ...] = ()
    implemented: str | None = None
    #: Declared per-lookup complexity class of the implementation's hot
    #: path (required whenever ``implemented`` is set; see
    #: :mod:`repro.core.complexity` for the per-method contract table the
    #: RPR301 analyzer and the scaling witness enforce).
    complexity: ComplexityClass | None = None
    notes: str = ""


def _i1(
    name: str,
    year: int,
    refs: tuple[int, ...],
    ml: tuple[MLTechnique, ...],
    queries: tuple[QueryType, ...] = (QueryType.POINT, QueryType.RANGE),
    **kw: Any,
) -> IndexInfo:
    """Immutable pure one-dimensional index."""
    return IndexInfo(
        name=name, year=year, refs=refs,
        mutability=Mutability.IMMUTABLE,
        dimensionality=Dimensionality.ONE_DIMENSIONAL,
        spectrum=Spectrum.PURE, ml=ml, queries=queries, **kw,
    )


def _h1(
    name: str,
    year: int,
    refs: tuple[int, ...],
    component: HybridComponent,
    ml: tuple[MLTechnique, ...],
    queries: tuple[QueryType, ...] = (QueryType.POINT, QueryType.RANGE),
    mutability: Mutability = Mutability.IMMUTABLE,
    layout: Layout = Layout.NOT_APPLICABLE,
    **kw: Any,
) -> IndexInfo:
    """Hybrid one-dimensional index."""
    return IndexInfo(
        name=name, year=year, refs=refs, mutability=mutability, layout=layout,
        dimensionality=Dimensionality.ONE_DIMENSIONAL,
        spectrum=Spectrum.HYBRID, hybrid_component=component,
        ml=ml, queries=queries, **kw,
    )


def _m1(
    name: str,
    year: int,
    refs: tuple[int, ...],
    layout: Layout,
    strategy: InsertStrategy,
    ml: tuple[MLTechnique, ...],
    queries: tuple[QueryType, ...] = (QueryType.POINT, QueryType.RANGE),
    **kw: Any,
) -> IndexInfo:
    """Mutable pure one-dimensional index."""
    return IndexInfo(
        name=name, year=year, refs=refs,
        mutability=Mutability.MUTABLE, layout=layout,
        dimensionality=Dimensionality.ONE_DIMENSIONAL,
        spectrum=Spectrum.PURE, insert_strategy=strategy,
        ml=ml, queries=queries, **kw,
    )


def _pm(
    name: str,
    year: int,
    refs: tuple[int, ...],
    space: SpaceHandling,
    ml: tuple[MLTechnique, ...],
    queries: tuple[QueryType, ...],
    mutability: Mutability = Mutability.IMMUTABLE,
    layout: Layout = Layout.NOT_APPLICABLE,
    strategy: InsertStrategy = InsertStrategy.NOT_APPLICABLE,
    **kw: Any,
) -> IndexInfo:
    """Pure multi-dimensional index."""
    return IndexInfo(
        name=name, year=year, refs=refs, mutability=mutability, layout=layout,
        dimensionality=Dimensionality.MULTI_DIMENSIONAL,
        spectrum=Spectrum.PURE, insert_strategy=strategy, space=space,
        ml=ml, queries=queries, **kw,
    )


def _hm(
    name: str,
    year: int,
    refs: tuple[int, ...],
    component: HybridComponent,
    ml: tuple[MLTechnique, ...],
    queries: tuple[QueryType, ...],
    mutability: Mutability = Mutability.IMMUTABLE,
    layout: Layout = Layout.NOT_APPLICABLE,
    space: SpaceHandling = SpaceHandling.NATIVE,
    **kw: Any,
) -> IndexInfo:
    """Hybrid multi-dimensional index."""
    return IndexInfo(
        name=name, year=year, refs=refs, mutability=mutability, layout=layout,
        dimensionality=Dimensionality.MULTI_DIMENSIONAL,
        spectrum=Spectrum.HYBRID, hybrid_component=component, space=space,
        ml=ml, queries=queries, **kw,
    )


_L = MLTechnique.LINEAR
_PL = MLTechnique.PIECEWISE_LINEAR
_SP = MLTechnique.SPLINE
_POLY = MLTechnique.POLYNOMIAL
_NN = MLTechnique.NEURAL_NETWORK
_RL = MLTechnique.REINFORCEMENT_LEARNING
_CLS = MLTechnique.CLASSIFIER
_CLU = MLTechnique.CLUSTERING
_H = MLTechnique.HISTOGRAM
_INT = MLTechnique.INTERPOLATION

_P = QueryType.POINT
_R = QueryType.RANGE
_K = QueryType.KNN
_J = QueryType.JOIN
_M = QueryType.MEMBERSHIP
_A = QueryType.AGGREGATE
_ST = QueryType.SPATIAL_TEXTUAL

_O1 = ComplexityClass.CONSTANT
_OLOG = ComplexityClass.LOGARITHMIC

#: All surveyed indexes, in rough chronological order.
REGISTRY: tuple[IndexInfo, ...] = (
    # ------------------------------------------------------------------
    # One-dimensional, immutable (paper §4.1: 18 indexes).
    # ------------------------------------------------------------------
    _i1("RMI", 2018, (59,), (_L, _NN), influences=(),
        implemented="repro.onedim.rmi.RMIIndex", complexity=_OLOG,
        notes="Recursive Model Index; first learned index; learns the CDF."),
    _h1("Hybrid-RMI", 2018, (59,), HybridComponent.BTREE, (_L, _NN),
        influences=("RMI",), implemented="repro.onedim.hybrid_rmi.HybridRMIIndex", complexity=_OLOG,
        notes="RMI with B-tree leaves replacing poorly fit models."),
    _i1("Pavo", 2018, (132,), (_NN,), queries=(_P,), influences=("RMI",),
        notes="RNN-based learned inverted index."),
    _i1("SOSD-interp", 2020, (108,), (_INT,), influences=("RMI",), assigned_name=True,
        notes="Function interpolation for learned index structures."),
    _i1("CDFShop", 2020, (85,), (_L, _NN), influences=("RMI",),
        notes="RMI optimizer / explorer."),
    _i1("RadixSpline", 2020, (56,), (_SP,), influences=("RMI",),
        implemented="repro.onedim.radix_spline.RadixSplineIndex", complexity=_OLOG,
        notes="Single-pass radix table over an error-bounded spline."),
    _i1("Google-LI", 2020, (1,), (_PL,), influences=("RMI",), assigned_name=True,
        notes="Learned index integrated in Bigtable-like disk store."),
    _i1("Hist-Tree", 2021, (19,), (_H,), influences=("RMI",),
        implemented="repro.onedim.hist_tree.HistTreeIndex", complexity=_OLOG,
        notes="Hierarchical histogram bins instead of trained models."),
    _i1("Shift-Table", 2021, (47,), (_INT,), influences=("RMI",),
        notes="Model correction layer over interpolation."),
    _i1("PLEX", 2021, (112,), (_SP, _H), influences=("RadixSpline",),
        notes="Practical learned index: CompactHistTree + spline."),
    _i1("LSE", 2021, (111,), (_PL,), assigned_name=True, influences=("RMI",),
        notes="Efficient learned string indexing (last-mile bounding)."),
    _i1("LSI", 2022, (54,), (_SP,), influences=("RadixSpline",),
        notes="Learned secondary index over unsorted data."),
    _i1("HAP", 2022, (74,), (_H,), queries=(_P,), influences=("RMI",),
        notes="Hamming-space index via augmented pigeonhole principle."),
    _i1("EHLI", 2022, (30,), (_PL,), assigned_name=True, influences=("PGM-index",),
        notes="Error-bounded space-efficient hybrid learned index."),
    _i1("ModelReuse", 2023, (72,), (_L,), assigned_name=True, influences=("RMI",),
        notes="Index learning via model reuse and fine-tuning."),
    _i1("AutoencoderHash", 2023, (70,), (_NN,), queries=(_P,), assigned_name=True,
        influences=("RMI",), notes="Hash index learned with a shallow autoencoder."),
    _h1("NeuralBF", 2019, (98,), HybridComponent.BLOOM_FILTER, (_NN,), queries=(_M,),
        influences=("LBF",), notes="Meta-learned neural Bloom filter."),
    _h1("CompressLBF-1d", 2021, (23,), HybridComponent.BLOOM_FILTER, (_NN,), queries=(_M,),
        assigned_name=True, influences=("LBF",),
        notes="Compressed learned Bloom filter (1-d variant)."),

    # ------------------------------------------------------------------
    # One-dimensional, mutable (paper §4.1: 48 indexes).
    # ------------------------------------------------------------------
    _m1("FITing-Tree", 2019, (36,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_PL,),
        influences=("RMI",), implemented="repro.onedim.fiting_tree.FITingTreeIndex", complexity=_OLOG,
        notes="Greedy error-bounded segments with per-segment buffers."),
    _m1("ASLM", 2019, (68,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_NN,),
        influences=("RMI",), notes="Adaptive single-layer model."),
    _m1("Doraemon", 2019, (115,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_NN,),
        assigned_name=True, influences=("RMI",),
        notes="Learned index for dynamic workloads."),
    _m1("AIDEL", 2019, (65,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_L,),
        assigned_name=True, influences=("RMI",),
        notes="Scalable learned index with independent linear models."),
    _m1("PGM-index", 2020, (35,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_PL,),
        influences=("FITing-Tree", "RMI"),
        implemented="repro.onedim.pgm.PGMIndex", complexity=_OLOG,
        notes="Optimal PLA segments; dynamic variant uses LSM of static PGMs."),
    _m1("ALEX", 2020, (27,), Layout.DYNAMIC, InsertStrategy.IN_PLACE, (_L,),
        influences=("RMI",), implemented="repro.onedim.alex.ALEXIndex", complexity=_OLOG,
        notes="Gapped arrays, model-based inserts, adaptive splitting."),
    _m1("XIndex", 2020, (116,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_L,),
        concurrent=True, influences=("RMI", "ALEX"),
        implemented="repro.onedim.xindex.XIndexStyleIndex", complexity=_OLOG,
        notes="Two-layer concurrent learned index with per-group deltas."),
    _m1("SIndex", 2020, (125,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_L,),
        concurrent=True, influences=("XIndex",),
        implemented="repro.onedim.string_adapter.StringIndexAdapter", complexity=_OLOG,
        notes="Scalable learned index for string keys."),
    _m1("NFL", 2022, (130,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_NN, _PL),
        influences=("PGM-index",),
        implemented="repro.onedim.nfl.NFLIndex", complexity=_OLOG,
        notes="Distribution transformation (normalizing flow) before learning."),
    _m1("LearnedHash", 2022, (102, 103), Layout.FIXED, InsertStrategy.IN_PLACE,
        (_L,), queries=(_P,), assigned_name=True, influences=("RMI",),
        implemented="repro.onedim.learned_hash.LearnedHashIndex", complexity=_O1,
        notes="CDF models replacing hash functions (Sabek et al.)."),
    _m1("LIPP", 2021, (129,), Layout.DYNAMIC, InsertStrategy.IN_PLACE, (_L,),
        influences=("ALEX",), implemented="repro.onedim.lipp.LIPPIndex", complexity=_OLOG,
        notes="Precise positions via kernelized tree; no last-mile search."),
    _m1("FINEdex", 2021, (64,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_L,),
        concurrent=True, influences=("XIndex",),
        notes="Fine-grained learned index for concurrent memory systems."),
    _m1("COLIN", 2021, (150,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_L,),
        influences=("ALEX",), notes="Cache-conscious learned index."),
    _m1("APEX", 2021, (77,), Layout.DYNAMIC, InsertStrategy.IN_PLACE, (_L,),
        concurrent=True, influences=("ALEX",),
        notes="ALEX adapted to persistent memory."),
    _m1("RUSLI", 2021, (86,), Layout.FIXED, InsertStrategy.IN_PLACE, (_SP,),
        influences=("RadixSpline",), notes="Real-time updatable spline index."),
    _m1("CARMI", 2022, (142,), Layout.DYNAMIC, InsertStrategy.IN_PLACE, (_L,),
        influences=("RMI",), notes="Cache-aware RMI with cost-based construction."),
    _m1("FILM", 2022, (80,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_L,),
        influences=("PGM-index",), notes="Learned index for larger-than-memory stores."),
    _m1("TONE", 2022, (148,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_L,),
        influences=("XIndex",), notes="Tail-latency-oriented learned index."),
    _m1("PLIN", 2022, (149,), Layout.DYNAMIC, InsertStrategy.IN_PLACE, (_PL,),
        influences=("LIPP", "APEX"), notes="Persistent learned index for NVM."),
    _m1("DiffLex", 2023, (20,), Layout.DYNAMIC, InsertStrategy.IN_PLACE, (_L,),
        concurrent=True, influences=("ALEX",),
        notes="NUMA-aware differentiated-management learned index."),
    _m1("SALI", 2023, (39,), Layout.DYNAMIC, InsertStrategy.IN_PLACE, (_L,),
        concurrent=True, influences=("LIPP",),
        notes="Scalable adaptive learned index with probability models."),
    _m1("DILI", 2023, (67,), Layout.DYNAMIC, InsertStrategy.IN_PLACE, (_L,),
        influences=("LIPP",), notes="Distribution-driven learned index tree."),
    _m1("TALI", 2022, (41,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_L,),
        influences=("XIndex",), notes="Update-distribution-aware learned index."),
    _m1("LIFOSS", 2023, (137,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_L,),
        influences=("PGM-index",), notes="Learned index for streaming scenarios."),
    _m1("FLIRT", 2023, (133,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_SP,),
        influences=("RadixSpline",), notes="Fast learned index for rolling time frames."),
    _m1("WIPE", 2023, (127,), Layout.DYNAMIC, InsertStrategy.IN_PLACE, (_L,),
        influences=("APEX",), notes="Write-optimized learned index for PMem."),
    _m1("CLI", 2022, (126,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_L,),
        concurrent=True, assigned_name=True, influences=("XIndex", "SIndex"),
        notes="Concurrent learned indexes for multicore storage."),
    _m1("DataAwareLI", 2022, (73,), Layout.FIXED, InsertStrategy.DELTA_BUFFER, (_L,),
        assigned_name=True, influences=("XIndex",),
        notes="Data-aware learned index scheme for efficient writes."),

    # One-dimensional hybrids (B-tree / LSM / skip list / Bloom / hash).
    _h1("IFB-tree", 2019, (45,), HybridComponent.BTREE, (_INT,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        influences=("RMI",),
        implemented="repro.onedim.interpolation_btree.InterpolationBTreeIndex", complexity=_OLOG,
        notes="Interpolation-friendly B-tree: per-node interpolation search."),
    _h1("BtreeML", 2019, (76,), HybridComponent.BTREE, (_L,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED, assigned_name=True,
        influences=("RMI",), notes="B+-tree search accelerated by simple models."),
    _h1("HybridBLR", 2019, (97,), HybridComponent.BTREE, (_L,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED, assigned_name=True,
        influences=("RMI",), notes="B-tree + linear regression hybrid."),
    _h1("Hadian-updates", 2019, (44,), HybridComponent.BTREE, (_L,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED, assigned_name=True,
        influences=("RMI",), notes="Update handling considerations for learned indexes."),
    _h1("MADEX", 2020, (46,), HybridComponent.BTREE, (_L,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        influences=("IFB-tree",), notes="Learning-augmented algorithmic index."),
    _h1("BOURBON", 2020, (21,), HybridComponent.LSM_TREE, (_PL,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        influences=("RMI",), implemented="repro.onedim.bourbon.BourbonLSM", complexity=_OLOG,
        notes="Learned models over LSM sstables (WiscKey lineage)."),
    _h1("TridentKV", 2021, (78,), HybridComponent.LSM_TREE, (_PL,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        influences=("BOURBON",), notes="Read-optimized learned LSM KV store."),
    _h1("SA-LSM", 2022, (146,), HybridComponent.LSM_TREE, (_CLS,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        influences=("BOURBON",), notes="Survival-analysis-driven LSM data layout."),
    _h1("Sieve", 2023, (118,), HybridComponent.LSM_TREE, (_H,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        influences=("BOURBON",), notes="Learned data-skipping index for analytics."),
    _h1("S3", 2019, (143,), HybridComponent.SKIP_LIST, (_NN,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED, concurrent=True,
        influences=("RMI",), implemented="repro.onedim.learned_skiplist.LearnedSkipList", complexity=_OLOG,
        notes="Scalable in-memory skip list guided by learned models."),
    _h1("LBF", 2018, (59,), HybridComponent.BLOOM_FILTER, (_NN, _CLS), queries=(_M,),
        influences=("RMI",), implemented="repro.onedim.learned_bloom.LearnedBloomFilter", complexity=_O1,
        notes="Learned Bloom filter from the original RMI paper."),
    _h1("Sandwiched-LBF", 2018, (87,), HybridComponent.BLOOM_FILTER, (_CLS,), queries=(_M,),
        influences=("LBF",),
        implemented="repro.onedim.learned_bloom.SandwichedLearnedBloomFilter", complexity=_O1,
        notes="Bloom filters before and after the learned model."),
    _h1("Ada-BF", 2019, (22,), HybridComponent.BLOOM_FILTER, (_CLS,), queries=(_M,),
        influences=("LBF",), notes="Score-adaptive learned Bloom filter."),
    _h1("Adaptive-LBF", 2020, (11,), HybridComponent.BLOOM_FILTER, (_CLS,), queries=(_M,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        influences=("LBF",), notes="Learned Bloom filter under incremental workloads."),
    _h1("Stable-LBF", 2020, (75,), HybridComponent.BLOOM_FILTER, (_CLS,), queries=(_M,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        influences=("LBF",), notes="Stable learned Bloom filter for data streams."),
    _h1("PLBF", 2020, (120,), HybridComponent.BLOOM_FILTER, (_CLS,), queries=(_M,),
        influences=("LBF", "Sandwiched-LBF"),
        implemented="repro.onedim.learned_bloom.PartitionedLearnedBloomFilter", complexity=_O1,
        notes="Score-partitioned learned Bloom filter."),
    _h1("FastPLBF", 2023, (106,), HybridComponent.BLOOM_FILTER, (_CLS,), queries=(_M,),
        influences=("PLBF",), notes="Faster construction for partitioned LBF."),
    _h1("TLPDBF", 2023, (141,), HybridComponent.BLOOM_FILTER, (_NN,), queries=(_M,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED, assigned_name=True,
        influences=("PLBF",), notes="Two-layer partitioned deletable deep Bloom filter."),
    _h1("SNARF", 2022, (119,), HybridComponent.BLOOM_FILTER, (_CLS,), queries=(_M, _R),
        influences=("PLBF",),
        implemented="repro.onedim.snarf.SNARFFilter", complexity=_O1,
        notes="Learning-enhanced range filter."),
    _h1("Hermit", 2019, (131,), HybridComponent.BTREE, (_L,),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        influences=("RMI",), notes="Succinct secondary indexing via column correlations."),

    # ------------------------------------------------------------------
    # Multi-dimensional, immutable pure (paper §5.2).
    # ------------------------------------------------------------------
    _pm("ZM-index", 2019, (122,), SpaceHandling.PROJECTED, (_NN, _L), (_P, _R, _K),
        influences=("RMI",), implemented="repro.multidim.zm_index.ZMIndex", complexity=_OLOG,
        notes="Z-order projection + learned 1-d model over Morton codes."),
    _pm("ML-index", 2020, (24,), SpaceHandling.PROJECTED, (_L, _CLU), (_P, _R, _K),
        influences=("RMI", "ZM-index"),
        implemented="repro.multidim.ml_index.MLIndex", complexity=_OLOG,
        notes="iDistance-style pivot projection + learned 1-d index."),
    _pm("SageDB-MDI", 2019, (58,), SpaceHandling.PROJECTED, (_L,), (_P, _R),
        assigned_name=True, influences=("RMI",),
        notes="Multi-dimensional learned index sketch in SageDB."),
    _pm("LMI-existence", 2018, (81,), SpaceHandling.NATIVE, (_NN,), (_M,),
        assigned_name=True, influences=("LBF",),
        notes="Learned existence index for multidimensional data."),
    _pm("Qd-tree", 2020, (135,), SpaceHandling.NATIVE, (_RL, _H), (_P, _R),
        influences=("RMI",), implemented="repro.multidim.qdtree.QdTreeIndex", complexity=_OLOG,
        notes="Workload-driven data-layout partitioning tree."),
    _pm("IO-Z-index", 2022, (92,), SpaceHandling.PROJECTED, (_PL,), (_P, _R),
        assigned_name=True, influences=("ZM-index",),
        notes="Towards an instance-optimal Z-index."),
    _pm("WaZI", 2023, (91,), SpaceHandling.PROJECTED, (_PL,), (_P, _R),
        influences=("IO-Z-index", "ZM-index"),
        notes="Workload-aware learned Z-index."),
    _pm("LMI-unsup", 2021, (110,), SpaceHandling.NATIVE, (_CLU, _NN), (_P, _K),
        assigned_name=True, influences=("LMI-metric",),
        notes="Data-driven (unsupervised) learned metric index."),
    _pm("SLI", 2021, (124,), SpaceHandling.PROJECTED, (_L,), (_P, _R),
        assigned_name=True, influences=("ZM-index",),
        notes="Spatial queries based on a learned (projected) index."),
    _pm("CompressLBF", 2021, (23,), SpaceHandling.PROJECTED, (_NN,), (_M,),
        influences=("LBF",),
        notes="Compressed multidimensional learned Bloom filter."),

    # ------------------------------------------------------------------
    # Multi-dimensional, immutable hybrid (paper §5.3).
    # ------------------------------------------------------------------
    _hm("Flood", 2020, (90,), HybridComponent.GRID, (_L, _H), (_P, _R),
        influences=("RMI", "SageDB-MDI"),
        implemented="repro.multidim.flood.FloodIndex", complexity=_OLOG,
        notes="Learned grid layout tuned to the query workload."),
    _hm("Tsunami", 2020, (28,), HybridComponent.GRID, (_L, _H), (_P, _R),
        influences=("Flood",), implemented="repro.multidim.tsunami.TsunamiIndex", complexity=_OLOG,
        notes="Skew- and correlation-aware regions over Flood grids."),
    _hm("SPRIG", 2021, (144,), HybridComponent.GRID, (_INT,), (_P, _R, _K),
        influences=("Flood", "ZM-index"),
        implemented="repro.multidim.sprig.SPRIGIndex", complexity=_OLOG,
        notes="Spatial interpolation function over a grid sample."),
    _hm("SPRIG-plus", 2022, (145,), HybridComponent.GRID, (_INT,), (_P, _R, _K),
        assigned_name=True, influences=("SPRIG",),
        notes="Interpolation-function learned spatial index refinement."),
    _hm("PolyFit", 2021, (69,), HybridComponent.BTREE, (_POLY,), (_R, _A),
        influences=("RMI",),
        implemented="repro.onedim.polyfit.PolyFitAggregator", complexity=_OLOG,
        notes="Polynomial models for range-aggregate queries."),
    _hm("LMI-metric", 2021, (6,), HybridComponent.METRIC_INDEX, (_NN, _CLU), (_P, _K),
        influences=("RMI",), notes="Learned metric index for unstructured data."),
    _hm("COAX", 2023, (43,), HybridComponent.GRID, (_CLS,), (_P, _R),
        influences=("Flood",), notes="Correlation-aware indexing of attributes."),
    _hm("ML-HD", 2021, (53,), HybridComponent.KDTREE, (_CLS,), (_P, _K),
        assigned_name=True, influences=("RMI",),
        notes="Case for ML-enhanced high-dimensional indexes."),
    _hm("LearnedKD", 2020, (136,), HybridComponent.KDTREE, (_L,), (_P, _R),
        influences=("RMI",), implemented="repro.multidim.learned_kd.LearnedKDIndex", complexity=_OLOG,
        notes="KD-tree construction guided by learned 1-d indexes."),
    _hm("CaseLSI", 2020, (93,), HybridComponent.RTREE, (_PL,), (_P, _R),
        assigned_name=True, influences=("RMI", "ZM-index"),
        notes="The case for learned spatial indexes (evaluation)."),
    _hm("LSearch", 2023, (94,), HybridComponent.RTREE, (_PL,), (_P, _R),
        assigned_name=True, influences=("CaseLSI",),
        notes="Learned search within in-memory spatial indexes."),
    _hm("DBSA", 2021, (138,), HybridComponent.RTREE, (_INT,), (_P, _R, _K),
        assigned_name=True, influences=("CaseLSI",),
        notes="Distance-bounded spatial approximations."),
    _hm("AI+R-tree", 2022, (2,), HybridComponent.RTREE, (_CLS,), (_P, _R),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        influences=("RMI",), implemented="repro.multidim.air_tree.AIRTreeIndex", complexity=_OLOG,
        notes="Classifier routes queries to R-tree leaf candidates."),

    # ------------------------------------------------------------------
    # Multi-dimensional, mutable, fixed layout (paper §5.4).
    # ------------------------------------------------------------------
    _pm("Period-Index", 2019, (10,), SpaceHandling.NATIVE, (_H,), (_P, _R),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        strategy=InsertStrategy.IN_PLACE,
        notes="Learned 2-d hash index for range/duration queries."),
    _pm("LSTI", 2023, (29,), SpaceHandling.PROJECTED, (_PL,), (_P, _R, _ST),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        strategy=InsertStrategy.DELTA_BUFFER, assigned_name=True,
        influences=("ZM-index",),
        notes="Learned spatial-textual index for keyword queries."),
    _hm("PerfectFit", 2020, (48,), HybridComponent.RTREE, (_L,), (_P, _R),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED, assigned_name=True,
        influences=("FITing-Tree",),
        notes="Hands-off model integration in spatial index structures."),
    _hm("GLIN", 2022, (121,), HybridComponent.BTREE, (_PL,), (_P, _R),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        space=SpaceHandling.PROJECTED, influences=("PGM-index",),
        notes="Lightweight learned index for complex geometries (z-curve + PGM)."),
    _hm("SLBRIN", 2023, (123,), HybridComponent.BRIN, (_L,), (_P, _R),
        mutability=Mutability.MUTABLE, layout=Layout.FIXED,
        space=SpaceHandling.PROJECTED, influences=("ZM-index",),
        notes="Spatial learned index based on block-range metadata."),

    # ------------------------------------------------------------------
    # Multi-dimensional, mutable, dynamic layout (paper §5.5).
    # ------------------------------------------------------------------
    _pm("LISA", 2020, (66,), SpaceHandling.PROJECTED, (_PL,), (_P, _R, _K),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        strategy=InsertStrategy.DELTA_BUFFER,
        influences=("ZM-index", "RMI"),
        implemented="repro.multidim.lisa.LISAIndex", complexity=_OLOG,
        notes="Learned mapping function + shard prediction for spatial data."),
    _pm("RSMI", 2020, (96,), SpaceHandling.PROJECTED, (_NN,), (_P, _R, _K),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        strategy=InsertStrategy.IN_PLACE,
        influences=("ZM-index",),
        implemented="repro.multidim.rsmi.RSMIIndex", complexity=_OLOG,
        notes="Recursive spatial model index over rank-space projection."),
    _pm("Waffle", 2022, (16,), SpaceHandling.NATIVE, (_RL,), (_P, _R, _K),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        strategy=InsertStrategy.IN_PLACE,
        notes="In-memory grid for moving objects, RL-tuned configuration."),
    _pm("MTO", 2021, (26,), SpaceHandling.NATIVE, (_RL, _H), (_P, _R),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        strategy=InsertStrategy.DELTA_BUFFER, assigned_name=True,
        influences=("Qd-tree",),
        notes="Instance-optimized data layouts for cloud analytics."),
    _pm("LMSFC", 2023, (37,), SpaceHandling.PROJECTED, (_L,), (_P, _R),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        strategy=InsertStrategy.DELTA_BUFFER,
        influences=("ZM-index", "BMTree"),
        notes="Learned monotonic space-filling curves."),
    _pm("BMTree", 2023, (62,), SpaceHandling.PROJECTED, (_RL,), (_P, _R),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        strategy=InsertStrategy.DELTA_BUFFER,
        influences=("ZM-index",),
        notes="Piecewise space-filling curves learned bottom-up."),
    _pm("LIMS", 2022, (117,), SpaceHandling.PROJECTED, (_CLU, _L), (_P, _K),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        strategy=InsertStrategy.DELTA_BUFFER,
        influences=("ML-index",),
        notes="Learned index for exact similarity search in metric spaces."),
    _hm("RW-Tree", 2022, (31,), HybridComponent.RTREE, (_CLS,), (_P, _R),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        influences=("RMI",), notes="Workload-aware R-tree construction."),
    _hm("RLR-Tree", 2023, (40,), HybridComponent.RTREE, (_RL,), (_P, _R, _K),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        influences=("RW-Tree",), notes="RL-driven R-tree insert/split policies."),
    _hm("ACR-Tree", 2023, (50,), HybridComponent.RTREE, (_RL,), (_P, _R),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        influences=("RLR-Tree",), notes="Deep-RL R-tree packing."),
    _hm("PLATON", 2023, (134,), HybridComponent.RTREE, (_RL,), (_P, _R),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        influences=("ACR-Tree", "Qd-tree"),
        notes="Top-down R-tree packing with learned partition policy."),
    _hm("WISK", 2023, (109,), HybridComponent.RTREE, (_H, _CLS), (_R, _ST),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        influences=("Qd-tree",),
        notes="Workload-aware learned index for spatial keyword queries."),
    _hm("HELI", 2023, (113,), HybridComponent.GRID, (_L,), (_P, _R),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC, assigned_name=True,
        influences=("LISA",),
        notes="Fast hybrid spatial index with external-memory support."),
    _hm("PA-LBF", 2023, (140,), HybridComponent.BLOOM_FILTER, (_NN,), (_M,),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        space=SpaceHandling.PROJECTED, influences=("LPBF",),
        implemented="repro.multidim.spatial_lbf.SpatialLearnedBloomFilter", complexity=_O1,
        notes="Prefix-based adaptive learned Bloom filter for spatial data."),
    _hm("LPBF", 2022, (152,), HybridComponent.BLOOM_FILTER, (_NN,), (_M,),
        mutability=Mutability.MUTABLE, layout=Layout.DYNAMIC,
        space=SpaceHandling.PROJECTED, influences=("LBF",),
        notes="Learned prefix Bloom filter for spatial data."),
)


_BY_NAME = {info.name: info for info in REGISTRY}
if len(_BY_NAME) != len(REGISTRY):  # pragma: no cover - guards data entry
    raise RuntimeError("duplicate index names in registry")


def get(name: str) -> IndexInfo:
    """Return the registry record for ``name`` (exact match)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown index {name!r}") from None


def query(**filters: object) -> list[IndexInfo]:
    """Return registry records whose attributes equal the given filters.

    Example::

        query(mutability=Mutability.MUTABLE, spectrum=Spectrum.PURE)
    """
    out = []
    for info in REGISTRY:
        if all(getattr(info, attr) == value for attr, value in filters.items()):
            out.append(info)
    return out


def counts_by(attr: str) -> dict[object, int]:
    """Histogram of registry records over one taxonomy attribute."""
    counts: dict[object, int] = {}
    for info in REGISTRY:
        key = getattr(info, attr)
        counts[key] = counts.get(key, 0) + 1
    return counts


def lineage_graph() -> nx.DiGraph:
    """Directed graph of influence edges (earlier work -> later work).

    Used to regenerate Figure 3.  Edges whose source is not itself a
    registry entry are dropped; the graph is guaranteed acyclic.
    """
    graph = nx.DiGraph()
    for info in REGISTRY:
        graph.add_node(info.name, year=info.year)
    for info in REGISTRY:
        for parent in info.influences:
            if parent in _BY_NAME:
                graph.add_edge(parent, info.name)
    if not nx.is_directed_acyclic_graph(graph):  # pragma: no cover
        raise RuntimeError("lineage graph must be acyclic")
    return graph
