"""Zero-copy on-disk index artifacts: dump built state, memmap it back.

A built learned index is a handful of large numeric arrays plus a small
pickled residue (:mod:`repro.core.state` draws exactly that line).  This
module persists an exported :class:`~repro.core.state.IndexState` as a
*directory* rather than one opaque blob:

``
artifact/
  manifest.json      format version, class + registry id, environment,
                     and per-file dtype/shape/order/nbytes/sha256
  payload.pkl        the pickled non-array residue
  arrays/0000.bin    raw little-endian C-order array bytes, one file
  arrays/0001.bin    per exported array (aliased arrays stored once)
``

Loading with ``mmap_mode="r"`` rebuilds the index via
:func:`~repro.core.state.index_from_state` over **read-only
``np.memmap`` views** — no retraining, no array copies, cold-start cost
is one unpickle plus page-cache faults on first touch.  Loading with
``mmap_mode=None`` materializes private writable arrays instead (the
right mode when the index will be mutated).

Integrity discipline (mirrors :mod:`repro.serve.shm`): every file's
sha256 is verified against the manifest **before any of its bytes are
interpreted** — arrays are digest-checked before ``np.memmap`` maps
them and the payload is digest-checked before it is ever unpickled.
The manifest itself is plain JSON, so a serving fleet can audit what it
is about to load without executing anything.

Security note: the payload is a pickle — only load artifacts produced
by code you trust, exactly like :mod:`repro.core.persistence`.
"""

from __future__ import annotations

import hashlib
import json
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.state import (
    IndexState,
    StateError,
    export_index_state,
    index_from_state,
    resolve_index_class,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "MANIFEST_NAME",
    "PAYLOAD_NAME",
    "ARRAYS_DIR",
    "ArtifactError",
    "environment_snapshot",
    "registry_name",
    "write_artifact",
    "read_manifest",
    "read_artifact",
    "save_index_artifact",
    "load_index_artifact",
]

#: Discriminator in ``manifest.json`` so foreign JSON is rejected early.
ARTIFACT_FORMAT = "repro-index-artifact"

#: Bump when the directory layout changes incompatibly.
ARTIFACT_VERSION = 1

MANIFEST_NAME = "manifest.json"
PAYLOAD_NAME = "payload.pkl"
ARRAYS_DIR = "arrays"

_CHUNK = 1 << 20


class ArtifactError(RuntimeError):
    """An artifact directory is missing, corrupt, or incompatible."""


def _sha256_file(path: Path) -> str:
    """Streaming sha256 of a file (bounded memory at any artifact size)."""
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        while True:
            chunk = fh.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def environment_snapshot() -> dict[str, str]:
    """Provenance stamped into every manifest (informational, not verified)."""
    return {
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": str(np.__version__),
        "platform": platform.platform(),
    }


def registry_name(class_path: str) -> str | None:
    """Registry id of the surveyed index a class path implements, if any.

    ``None`` for baselines and helper structures that reproduce no
    surveyed index; the manifest records it so operators can tell *what*
    an artifact is without importing its class.
    """
    from repro.core.registry import REGISTRY

    for info in REGISTRY:
        if info.implemented == class_path:
            return info.name
    return None


def _little_endian(arr: np.ndarray) -> np.ndarray:
    """C-contiguous little-endian copy/view suitable for raw file dump."""
    out = np.ascontiguousarray(arr)
    if out.dtype.str.startswith(">"):
        out = out.astype(out.dtype.newbyteorder("<"))
    return out


def write_artifact(state: IndexState, directory: str | Path) -> Path:
    """Dump an exported index state as a verifiable artifact directory.

    Arrays are written as raw little-endian C-order bytes (one file per
    exported array; aliased arrays were already deduplicated by
    :func:`~repro.core.state.export_index_state`), the payload as-is,
    and ``manifest.json`` last — a directory without a manifest is never
    a valid artifact, so an interrupted write cannot be half-loaded.
    """
    root = Path(directory)
    (root / ARRAYS_DIR).mkdir(parents=True, exist_ok=True)
    array_entries: list[dict[str, Any]] = []
    total = 0
    for i, source in enumerate(state.arrays):
        arr = _little_endian(source)
        rel = f"{ARRAYS_DIR}/{i:04d}.bin"
        target = root / ARRAYS_DIR / f"{i:04d}.bin"
        arr.tofile(target)
        array_entries.append({
            "file": rel,
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "order": "C",
            "nbytes": int(arr.nbytes),
            "sha256": _sha256_file(target),
        })
        total += int(arr.nbytes)
    payload_path = root / PAYLOAD_NAME
    payload_path.write_bytes(state.payload)
    total += len(state.payload)
    class_path = state.class_path()
    manifest = {
        "format": ARTIFACT_FORMAT,
        "format_version": ARTIFACT_VERSION,
        "class": {
            "module": state.cls_module,
            "qualname": state.cls_qualname,
            "registry": registry_name(class_path),
        },
        "arrays": array_entries,
        "payload": {
            "file": PAYLOAD_NAME,
            "nbytes": len(state.payload),
            "sha256": _sha256_file(payload_path),
        },
        "environment": environment_snapshot(),
        "total_bytes": total,
    }
    (root / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return root


def read_manifest(directory: str | Path) -> dict[str, Any]:
    """Parse and structurally validate an artifact's ``manifest.json``."""
    root = Path(directory)
    path = root / MANIFEST_NAME
    if not path.is_file():
        raise ArtifactError(f"{root}: no {MANIFEST_NAME} (not an index artifact)")
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"{path}: unreadable manifest: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(f"{path}: not a {ARTIFACT_FORMAT} manifest")
    version = manifest.get("format_version")
    if not isinstance(version, int):
        raise ArtifactError(f"{path}: missing format_version")
    if version > ARTIFACT_VERSION:
        raise ArtifactError(
            f"{path}: format version {version} newer than supported {ARTIFACT_VERSION}"
        )
    for key in ("class", "arrays", "payload"):
        if key not in manifest:
            raise ArtifactError(f"{path}: truncated manifest (missing {key!r})")
    if not isinstance(manifest["arrays"], list) or not isinstance(manifest["class"], dict):
        raise ArtifactError(f"{path}: malformed manifest")
    return manifest


def _verify_file(root: Path, entry: Mapping[str, Any], what: str) -> Path:
    """Digest-check one referenced file; nothing maps before this passes."""
    try:
        rel = str(entry["file"])
        expected_bytes = int(entry["nbytes"])
        expected_digest = str(entry["sha256"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(
            f"{root}: truncated manifest entry for {what}: {exc!r}"
        ) from exc
    path = root / rel
    if not path.is_file():
        raise ArtifactError(f"{path}: missing {what} file")
    actual_bytes = path.stat().st_size
    if actual_bytes != expected_bytes:
        raise ArtifactError(
            f"{path}: {what} holds {actual_bytes} bytes, manifest says "
            f"{expected_bytes} (truncated?)"
        )
    digest = _sha256_file(path)
    if digest != expected_digest:
        raise ArtifactError(
            f"{path}: {what} sha256 mismatch: {digest[:12]}... != "
            f"{expected_digest[:12]}... (corrupt file)"
        )
    return path


def read_artifact(directory: str | Path,
                  mmap_mode: str | None = "r") -> IndexState:
    """Reconstruct the :class:`IndexState` stored in an artifact directory.

    Args:
        directory: an artifact written by :func:`write_artifact`.
        mmap_mode: ``"r"`` (default) builds lazy **read-only**
            ``np.memmap`` views over the array files — zero copies, byte
            pages fault in on first touch; ``None`` eagerly materializes
            private writable arrays.

    Every file is sha256-verified against the manifest before any of its
    bytes are trusted: arrays before they are mapped, the payload before
    a caller can unpickle it.
    """
    if mmap_mode not in ("r", None):
        raise ArtifactError(f"mmap_mode must be 'r' or None, got {mmap_mode!r}")
    root = Path(directory)
    manifest = read_manifest(root)
    arrays: list[np.ndarray] = []
    for i, entry in enumerate(manifest["arrays"]):
        path = _verify_file(root, entry, f"array #{i}")
        try:
            dtype = np.dtype(str(entry["dtype"]))
            shape = tuple(int(x) for x in entry["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(
                f"{root}: bad dtype/shape for array #{i}: {exc!r}"
            ) from exc
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if expected != int(entry["nbytes"]):
            raise ArtifactError(
                f"{root}: array #{i} dtype/shape implies {expected} bytes, "
                f"manifest says {entry['nbytes']}"
            )
        if expected == 0:
            arr = np.empty(shape, dtype=dtype)
            if mmap_mode == "r":
                arr.flags.writeable = False
        elif mmap_mode == "r":
            arr = np.memmap(path, dtype=dtype, mode="r", shape=shape, order="C")
        else:
            arr = np.fromfile(path, dtype=dtype).reshape(shape)
        arrays.append(arr)
    payload = _verify_file(root, manifest["payload"], "payload").read_bytes()
    cls_entry = manifest["class"]
    return IndexState(
        cls_module=str(cls_entry.get("module", "")),
        cls_qualname=str(cls_entry.get("qualname", "")),
        arrays=arrays,
        payload=payload,
    )


def save_index_artifact(index: object, directory: str | Path) -> Path:
    """Export ``index`` and write it as an artifact directory.

    Goes through the index's own ``export_state`` when it has one (so
    subclass overrides run); falls back to the generic exporter for
    plain objects.
    """
    export = getattr(index, "export_state", None)
    try:
        state = export() if callable(export) else export_index_state(index)
    except StateError as exc:
        raise ArtifactError(str(exc)) from exc
    return write_artifact(state, directory)


def load_index_artifact(directory: str | Path,
                        mmap_mode: str | None = "r") -> object:
    """Load an artifact back into a queryable index, no retraining.

    The returned index is reconstructed through its class's
    ``from_state`` (so subclass overrides — e.g. linked-structure
    rebuilds — run); with the default ``mmap_mode="r"`` its numeric
    arrays are read-only memmap views over the artifact files.
    """
    state = read_artifact(directory, mmap_mode=mmap_mode)
    try:
        cls = resolve_index_class(state)
    except StateError as exc:
        raise ArtifactError(str(exc)) from exc
    from_state = getattr(cls, "from_state", None)
    if callable(from_state):
        return from_state(state)
    return index_from_state(state)
