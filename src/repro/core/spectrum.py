"""Figure 1 generator: the spectrum of learned index structures.

Figure 1 of the paper places learned indexes on a spectrum from *pure*
(ML models fully replace the traditional structure) to *hybrid* (ML models
enhance a traditional structure).  This module renders that spectrum from
the registry, grouped by dimensionality, so the figure is reproducible
as data rather than as a drawing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.registry import REGISTRY, IndexInfo
from repro.core.taxonomy import Dimensionality, HybridComponent, Spectrum

__all__ = ["SpectrumBucket", "spectrum_buckets", "render_spectrum"]


@dataclass(frozen=True)
class SpectrumBucket:
    """One cell of the Figure 1 spectrum."""

    dimensionality: Dimensionality
    spectrum: Spectrum
    members: tuple[str, ...]

    @property
    def count(self) -> int:
        return len(self.members)


def spectrum_buckets(records: tuple[IndexInfo, ...] = REGISTRY) -> list[SpectrumBucket]:
    """Partition registry records into the four Figure 1 cells."""
    buckets = []
    for dim in Dimensionality:
        for spec in Spectrum:
            members = tuple(
                sorted(
                    info.name
                    for info in records
                    if info.dimensionality is dim and info.spectrum is spec
                )
            )
            buckets.append(SpectrumBucket(dim, spec, members))
    return buckets


def _hybrid_components(records: tuple[IndexInfo, ...], dim: Dimensionality) -> list[str]:
    seen: dict[str, int] = {}
    for info in records:
        if info.dimensionality is dim and info.spectrum is Spectrum.HYBRID:
            if info.hybrid_component is not HybridComponent.NONE:
                name = info.hybrid_component.value
                seen[name] = seen.get(name, 0) + 1
    return [f"{name} ({count})" for name, count in sorted(seen.items())]


def render_spectrum(records: tuple[IndexInfo, ...] = REGISTRY) -> str:
    """Render Figure 1 as fixed-width text.

    The left pole is "pure" (traditional index fully replaced), the right
    pole is "hybrid" (ML-enhanced traditional index); each row is a
    dimensionality class with its index counts and, for hybrids, the
    traditional components in use.
    """
    buckets = {(b.dimensionality, b.spectrum): b for b in spectrum_buckets(records)}
    lines = [
        "Figure 1: Spectrum of learned index structures",
        "",
        "  pure (replace traditional index)  <" + "-" * 24 + ">  hybrid (ML-enhanced traditional index)",
        "",
    ]
    for dim, label in (
        (Dimensionality.ONE_DIMENSIONAL, "One-dimensional"),
        (Dimensionality.MULTI_DIMENSIONAL, "Multi-dimensional"),
    ):
        pure = buckets[(dim, Spectrum.PURE)]
        hybrid = buckets[(dim, Spectrum.HYBRID)]
        lines.append(f"  {label}:")
        lines.append(f"    pure   ({pure.count:3d}): e.g. {', '.join(pure.members[:6])}, ...")
        lines.append(f"    hybrid ({hybrid.count:3d}): e.g. {', '.join(hybrid.members[:6])}, ...")
        components = _hybrid_components(records, dim)
        if components:
            lines.append(f"    hybrid components: {', '.join(components)}")
        lines.append("")
    return "\n".join(lines)
