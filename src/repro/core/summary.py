"""§5.6 generator: ML techniques and supported query types per index.

The tutorial's Part 2 closes with "a summary of the various ML techniques
used for learned one- and multi-dimensional indexes" and "a summary of the
supported query types (point, range, kNN, join) for each of the 40+
learned multi-dimensional indexes".  Both tables are generated here from
the registry.
"""

from __future__ import annotations

from repro.core.registry import REGISTRY, IndexInfo
from repro.core.taxonomy import Dimensionality, MLTechnique, QueryType

__all__ = [
    "ml_technique_histogram",
    "query_support_rows",
    "render_ml_summary",
    "render_query_summary",
]


def ml_technique_histogram(
    records: tuple[IndexInfo, ...] = REGISTRY,
    dimensionality: Dimensionality | None = None,
) -> dict[MLTechnique, int]:
    """Count how many surveyed indexes use each ML technique."""
    counts: dict[MLTechnique, int] = {}
    for info in records:
        if dimensionality is not None and info.dimensionality is not dimensionality:
            continue
        for technique in info.ml:
            counts[technique] = counts.get(technique, 0) + 1
    return counts


def query_support_rows(
    records: tuple[IndexInfo, ...] = REGISTRY,
    dimensionality: Dimensionality = Dimensionality.MULTI_DIMENSIONAL,
) -> list[tuple[str, dict[QueryType, bool]]]:
    """One row per index: which query types it supports."""
    rows = []
    for info in sorted(records, key=lambda i: (i.year, i.name)):
        if info.dimensionality is not dimensionality:
            continue
        support = {qt: qt in info.queries for qt in QueryType}
        rows.append((info.name, support))
    return rows


def render_ml_summary(records: tuple[IndexInfo, ...] = REGISTRY) -> str:
    """Render the ML-technique summary for both data spaces."""
    lines = ["Summary: ML techniques used by learned indexes", ""]
    for dim, label in (
        (Dimensionality.ONE_DIMENSIONAL, "One-dimensional"),
        (Dimensionality.MULTI_DIMENSIONAL, "Multi-dimensional"),
    ):
        counts = ml_technique_histogram(records, dim)
        lines.append(f"{label}:")
        for technique, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0].value)):
            lines.append(f"  {technique.value:<24} {count:3d}")
        lines.append("")
    return "\n".join(lines)


def render_query_summary(records: tuple[IndexInfo, ...] = REGISTRY) -> str:
    """Render the query-type support matrix for multi-dimensional indexes."""
    columns = [QueryType.POINT, QueryType.RANGE, QueryType.KNN,
               QueryType.JOIN, QueryType.MEMBERSHIP, QueryType.SPATIAL_TEXTUAL]
    header = f"{'index':<16}" + "".join(f"{qt.value:>10}" for qt in columns)
    lines = [
        "Summary: supported query types of learned multi-dimensional indexes",
        "",
        header,
        "-" * len(header),
    ]
    for name, support in query_support_rows(records):
        cells = "".join(f"{'yes' if support[qt] else '-':>10}" for qt in columns)
        lines.append(f"{name:<16}{cells}")
    return "\n".join(lines)
