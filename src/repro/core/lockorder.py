"""Runtime lock-order witness: ``REPRO_SANITIZE=1`` tracks acquisition order.

The static analyzer (``repro.analysis.concurrency``, the RPR2xx rule
family) proves lock-order acyclicity from the AST; this module is the
dynamic cross-check, exactly as ``repro.core.sanitize`` is for the
numeric RPR1xx rules.  When the sanitizer is enabled, the serving
layer's locks are created through :func:`make_lock` /
:func:`make_rlock` / :func:`make_condition`, which wrap the primitive
in a tracker that:

* keeps a per-thread stack of held lock *groups* (a group is one
  logical lock family, e.g. ``"ShardedStore._locks"`` — the same node
  identity the static lock graph uses);
* records a ``held -> acquired`` edge into one process-global order
  graph every time a thread acquires a lock while holding another;
* raises :class:`LockOrderError` **before blocking** when the new edge
  would close a cycle — a potential deadlock is reported from a single
  interleaving, no hang required.

Same-group refinement: shard-indexed lock families are deadlock-free
when every thread acquires members in increasing ``rank`` order, so
in-order same-group nesting is allowed and out-of-order nesting raises
immediately (it is a cycle of length one at group granularity).
Re-entrant re-acquisition of the *same* lock (RLocks) is ignored.

The recorded graph is exported by :func:`snapshot` — CI uploads it next
to the static analyzer's graph so the two can be diffed, and the tier-1
cross-validation test asserts every runtime edge is present in the
static graph.
"""

from __future__ import annotations

import threading
from typing import Callable, Protocol

from repro.core.sanitize import SanitizeError, enabled

__all__ = [
    "LockLike",
    "LockOrderError",
    "LockOrderGraph",
    "TrackedLock",
    "TrackedCondition",
    "make_lock",
    "make_rlock",
    "make_condition",
    "order_graph",
    "snapshot",
    "reset",
]


class LockLike(Protocol):
    """Structural type shared by Lock, RLock, and :class:`TrackedLock`."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(self, exc_type: object, exc: object, tb: object) -> object: ...


class LockOrderError(SanitizeError):
    """Acquiring this lock here could deadlock against another thread.

    Raised *before* the acquisition blocks, from the first interleaving
    that completes a cycle in the process-global acquisition-order
    graph — the witness does not need two threads to actually collide.
    """


class LockOrderGraph:
    """Process-global acquisition-order graph over lock groups.

    Nodes are lock group names; a directed edge ``A -> B`` means some
    thread acquired a ``B`` lock while holding an ``A`` lock.  The graph
    is kept acyclic by construction: :meth:`record` refuses (raises) a
    cycle-forming edge instead of adding it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: dict[str, set[str]] = {}
        self._notes: dict[tuple[str, str], str] = {}

    def _path(self, start: str, goal: str) -> list[str] | None:
        """A directed path ``start -> ... -> goal`` in the current edges."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for succ in self._edges.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    def record(self, held: str, acquired: str, note: str) -> None:
        """Add edge ``held -> acquired``; raise if it would close a cycle."""
        with self._lock:
            if acquired in self._edges.get(held, ()):
                return
            back = self._path(acquired, held)
            if back is not None:
                prior = " ; ".join(
                    f"{a}->{b} ({self._notes.get((a, b), 'unrecorded')})"
                    for a, b in zip(back, back[1:])
                )
                raise LockOrderError(
                    f"lock-order inversion: acquiring {acquired!r} while "
                    f"holding {held!r} ({note}) closes a cycle with prior "
                    f"order {' -> '.join(back)} [{prior}]"
                )
            self._edges.setdefault(held, set()).add(acquired)
            self._notes[(held, acquired)] = note

    def snapshot(self) -> dict[str, list[str]]:
        """Adjacency listing ``{group: sorted successor groups}``."""
        with self._lock:
            return {src: sorted(dsts) for src, dsts in sorted(self._edges.items())}

    def edge_notes(self) -> dict[str, str]:
        """``"A -> B" -> first-observation note`` for the CI artifact."""
        with self._lock:
            return {
                f"{a} -> {b}": note for (a, b), note in sorted(self._notes.items())
            }

    def clear(self) -> None:
        """Forget every recorded edge (test isolation)."""
        with self._lock:
            self._edges.clear()
            self._notes.clear()


_GLOBAL = LockOrderGraph()
_HELD = threading.local()


def order_graph() -> LockOrderGraph:
    """The process-global order graph the tracked locks record into."""
    return _GLOBAL


def snapshot() -> dict[str, list[str]]:
    """Adjacency listing of the runtime-observed lock-order graph."""
    return _GLOBAL.snapshot()


def reset() -> None:
    """Clear the global graph (the current thread's held stack survives)."""
    _GLOBAL.clear()


def _stack() -> list[tuple[str, int]]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = []
        _HELD.stack = stack
    return stack


def _note_acquire(group: str, rank: int, graph: LockOrderGraph) -> None:
    """Record order edges for acquiring ``(group, rank)``; push it as held."""
    stack = _stack()
    if (group, rank) not in stack:
        for held_group, held_rank in reversed(stack):
            if held_group == group:
                if rank <= held_rank:
                    raise LockOrderError(
                        f"same-group lock-order inversion: acquiring "
                        f"{group}[{rank}] while holding {group}[{held_rank}]; "
                        f"members of one group must be taken in increasing "
                        f"rank order"
                    )
                break  # in-order same-group nesting: the sanctioned protocol
            graph.record(
                held_group, group,
                f"thread {threading.current_thread().name!r} acquired "
                f"{group}[{rank}] holding {held_group}[{held_rank}]",
            )
            break
    stack.append((group, rank))


def _note_release(group: str, rank: int) -> None:
    stack = _stack()
    for i in range(len(stack) - 1, -1, -1):
        if stack[i] == (group, rank):
            del stack[i]
            return


class TrackedLock:
    """A Lock/RLock wrapper recording acquisition-order edges.

    ``group`` is the static lock-graph node this lock belongs to;
    ``rank`` orders members within a group (shard index) so the
    increasing-rank protocol can be distinguished from an inversion.
    """

    def __init__(self, inner: LockLike, group: str, rank: int = 0,
                 graph: LockOrderGraph | None = None) -> None:
        self._inner = inner
        self.group = group
        self.rank = rank
        self._graph = graph if graph is not None else _GLOBAL

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _note_acquire(self.group, self.rank, self._graph)
        ok = self._inner.acquire(blocking, timeout)
        if not ok:
            _note_release(self.group, self.rank)
        return bool(ok)

    def release(self) -> None:
        self._inner.release()
        _note_release(self.group, self.rank)

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        return bool(locked()) if callable(locked) else False

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: object = None, exc: object = None,
                 tb: object = None) -> None:
        self.release()


class TrackedCondition:
    """A Condition wrapper whose lock acquisitions feed the order graph.

    ``wait``/``wait_for`` release and re-acquire the underlying lock
    internally; the tracker deliberately keeps the group on the held
    stack across a wait — the blocked thread cannot acquire anything
    else, and its order position is unchanged when it wakes.
    """

    def __init__(self, inner: threading.Condition, group: str, rank: int = 0,
                 graph: LockOrderGraph | None = None) -> None:
        self._inner = inner
        self.group = group
        self.rank = rank
        self._graph = graph if graph is not None else _GLOBAL

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _note_acquire(self.group, self.rank, self._graph)
        ok = self._inner.acquire(blocking, timeout)
        if not ok:
            _note_release(self.group, self.rank)
        return bool(ok)

    def release(self) -> None:
        self._inner.release()
        _note_release(self.group, self.rank)

    def wait(self, timeout: float | None = None) -> bool:
        return self._inner.wait(timeout)

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: float | None = None) -> bool:
        return self._inner.wait_for(predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: object = None, exc: object = None,
                 tb: object = None) -> None:
        self.release()


def make_lock(group: str, rank: int = 0) -> LockLike:
    """A ``threading.Lock``, order-tracked when the sanitizer is enabled.

    The environment is read at *creation* time (locks are created once
    per server, acquired millions of times); tests that want tracking
    must set ``REPRO_SANITIZE=1`` before constructing the store/server.
    """
    if enabled():
        return TrackedLock(threading.Lock(), group, rank)
    return threading.Lock()


def make_rlock(group: str, rank: int = 0) -> LockLike:
    """A ``threading.RLock``, order-tracked when the sanitizer is enabled."""
    if enabled():
        return TrackedLock(threading.RLock(), group, rank)
    return threading.RLock()


def make_condition(group: str, rank: int = 0) -> "threading.Condition | TrackedCondition":
    """A ``threading.Condition``, order-tracked when the sanitizer is enabled."""
    if enabled():
        return TrackedCondition(threading.Condition(), group, rank)
    return threading.Condition()
