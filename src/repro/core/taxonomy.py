"""Taxonomy axes and tree for the survey's classification of learned indexes.

The tutorial (Figure 2) classifies every learned index along these axes:

1. **Mutability** — immutable vs. mutable (supports inserts/updates).
2. **Layout** — for mutable indexes, fixed vs. dynamic data layout.
3. **Dimensionality** — one-dimensional vs. multi-dimensional space.
4. **Spectrum** — pure (replaces a traditional index) vs. hybrid
   (ML-enhanced traditional index), see Figure 1.
5. **Insert strategy** — for mutable *pure* indexes, in-place vs. delta
   buffer.
6. **Hybrid component** — for hybrid indexes, the traditional structure
   they are built on (B-tree, R-tree, Bloom filter, LSM, ...).
7. **Space handling** — for multi-dimensional indexes, projected (space
   filling curve or other projection into 1-D) vs. native space.

:class:`TaxonomyNode` builds the classification tree from a collection of
:class:`~repro.core.registry.IndexInfo` records so that Figure 2 can be
*generated* rather than hand-drawn.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # circular at runtime: registry imports taxonomy
    from repro.core.registry import IndexInfo

__all__ = [
    "Mutability",
    "Layout",
    "Dimensionality",
    "Spectrum",
    "InsertStrategy",
    "HybridComponent",
    "SpaceHandling",
    "MLTechnique",
    "QueryType",
    "ComplexityClass",
    "TaxonomyNode",
    "build_taxonomy",
    "TAXONOMY_AXES",
]


class ComplexityClass(enum.Enum):
    """Declared per-operation complexity class of an index hot path.

    The survey's asymptotic argument (§3, §6) is that a learned index
    answers a point lookup with O(1) model evaluation plus an
    error-bounded last-mile search — O(log ε), sublinear in n — while a
    scan baseline pays O(n) per query.  Every registered factory
    declares the class of its ``lookup``/``point_query`` and ``insert``
    hot paths here; the static analyzer (RPR301) and the empirical
    scaling witness (``repro.bench.scaling``) both check implementations
    against the declaration.  Classes are amortized per-operation:
    polylogarithmic work (log², B-tree descent with bounded fanout,
    bounded-run LSM probes) collapses into ``LOGARITHMIC``.
    """

    CONSTANT = "O(1)"
    LOGARITHMIC = "O(log n)"
    LINEAR = "O(n)"

    @property
    def order(self) -> int:
        """Total order used for contract comparison: O(1) < O(log n) < O(n)."""
        return ("O(1)", "O(log n)", "O(n)").index(self.value)

    def exceeds(self, declared: "ComplexityClass") -> bool:
        """True when self is asymptotically worse than ``declared``."""
        return self.order > declared.order

    @classmethod
    def from_label(cls, label: str) -> "ComplexityClass":
        """Parse the canonical ``O(...)`` label (as stored in artifacts)."""
        for member in cls:
            if member.value == label:
                return member
        raise ValueError(f"unknown complexity class label: {label!r}")


class Mutability(enum.Enum):
    """Whether an index supports dynamic inserts/updates."""

    IMMUTABLE = "immutable"
    MUTABLE = "mutable"


class Layout(enum.Enum):
    """Data layout of a mutable index during construction.

    ``FIXED`` layouts are decided before index construction; ``DYNAMIC``
    layouts are re-arranged by the ML models during construction (e.g. the
    gapped arrays of ALEX, the kernelised tree of LIPP).
    """

    FIXED = "fixed"
    DYNAMIC = "dynamic"
    NOT_APPLICABLE = "n/a"


class Dimensionality(enum.Enum):
    """Underlying data space of the index."""

    ONE_DIMENSIONAL = "1-d"
    MULTI_DIMENSIONAL = "multi-d"


class Spectrum(enum.Enum):
    """Position on the pure <-> hybrid spectrum of Figure 1."""

    PURE = "pure"
    HYBRID = "hybrid"


class InsertStrategy(enum.Enum):
    """How a mutable pure index absorbs new data."""

    IN_PLACE = "in-place"
    DELTA_BUFFER = "delta-buffer"
    NOT_APPLICABLE = "n/a"


class HybridComponent(enum.Enum):
    """Traditional structure a hybrid learned index is built on."""

    BTREE = "B-tree"
    RTREE = "R-tree"
    KDTREE = "KD-tree"
    QUADTREE = "Quad-tree"
    GRID = "Grid"
    BLOOM_FILTER = "Bloom filter"
    LSM_TREE = "LSM-tree"
    SKIP_LIST = "Skip list"
    HASH = "Hash"
    TRIE = "Trie"
    BRIN = "BRIN"
    INVERTED_INDEX = "Inverted index"
    METRIC_INDEX = "Metric index"
    NONE = "none"


class SpaceHandling(enum.Enum):
    """Multi-dimensional indexes: projected into 1-D vs. native space."""

    PROJECTED = "projected"
    NATIVE = "native"
    NOT_APPLICABLE = "n/a"


class MLTechnique(enum.Enum):
    """ML model families used by learned indexes (§5.6 summary)."""

    LINEAR = "linear model"
    PIECEWISE_LINEAR = "piecewise linear"
    SPLINE = "spline"
    POLYNOMIAL = "polynomial"
    NEURAL_NETWORK = "neural network"
    DECISION_TREE = "decision tree"
    REINFORCEMENT_LEARNING = "reinforcement learning"
    CLASSIFIER = "classifier"
    CLUSTERING = "clustering"
    HISTOGRAM = "histogram"
    INTERPOLATION = "interpolation"
    OTHER = "other"


class QueryType(enum.Enum):
    """Query types surveyed in the §5.6 summary."""

    POINT = "point"
    RANGE = "range"
    KNN = "kNN"
    JOIN = "join"
    MEMBERSHIP = "membership"
    AGGREGATE = "aggregate"
    SPATIAL_TEXTUAL = "spatial-textual"


#: Ordered axes used to build the Figure 2 tree, with display labels.
TAXONOMY_AXES: list[tuple[str, str]] = [
    ("mutability", "Mutability"),
    ("layout", "Data layout"),
    ("dimensionality", "Data space"),
    ("spectrum", "Pure vs. hybrid"),
    ("detail", "Insert strategy / hybrid component"),
    ("space", "Projected vs. native"),
]


@dataclass
class TaxonomyNode:
    """A node of the generated Figure 2 classification tree."""

    label: str
    depth: int = 0
    children: list["TaxonomyNode"] = field(default_factory=list)
    members: list[object] = field(default_factory=list)

    def add_child(self, label: str) -> "TaxonomyNode":
        """Return the child named ``label``, creating it if necessary."""
        for child in self.children:
            if child.label == label:
                return child
        child = TaxonomyNode(label=label, depth=self.depth + 1)
        self.children.append(child)
        return child

    def count(self) -> int:
        """Number of index records in this subtree."""
        return len(self.members) + sum(child.count() for child in self.children)

    def walk(self) -> Iterable["TaxonomyNode"]:
        """Yield this node and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, *labels: str) -> "TaxonomyNode | None":
        """Descend through children matching ``labels`` in order."""
        node: TaxonomyNode | None = self
        for label in labels:
            if node is None:
                return None
            node = next((c for c in node.children if c.label == label), None)
        return node


def _detail_label(info: "IndexInfo") -> str | None:
    """The 5th-level label: insert strategy (pure) or component (hybrid)."""
    if info.spectrum is Spectrum.HYBRID:
        return f"on {info.hybrid_component.value}"
    if info.mutability is Mutability.MUTABLE:
        if info.insert_strategy is InsertStrategy.NOT_APPLICABLE:
            return None
        return info.insert_strategy.value
    return None


def build_taxonomy(records: Sequence[object]) -> TaxonomyNode:
    """Build the Figure 2 tree from :class:`IndexInfo` records.

    The tree mirrors the paper's axis order: mutability -> (layout, for
    mutable) -> dimensionality -> pure/hybrid -> (insert strategy or hybrid
    component) -> (projected/native, for multi-dimensional pure indexes).
    """
    root = TaxonomyNode(label="Learned indexes")
    for info in records:
        node = root.add_child(info.mutability.value)
        if info.mutability is Mutability.MUTABLE and info.layout is not Layout.NOT_APPLICABLE:
            node = node.add_child(f"{info.layout.value} layout")
        node = node.add_child(info.dimensionality.value)
        node = node.add_child(info.spectrum.value)
        detail = _detail_label(info)
        if detail is not None:
            node = node.add_child(detail)
        if (
            info.dimensionality is Dimensionality.MULTI_DIMENSIONAL
            and info.space is not SpaceHandling.NOT_APPLICABLE
        ):
            node = node.add_child(f"{info.space.value} space")
        node.members.append(info)
    return root
