"""Per-method complexity contracts for every registered index class.

The survey's asymptotic claim — learned indexes answer point queries
with O(1) model evaluation plus an error-bounded last-mile search,
while scan baselines pay O(n) — is only a claim until something
enforces it.  This module is the single authoritative table mapping
each concrete index class (by qualname) to the
:class:`~repro.core.taxonomy.ComplexityClass` its hot paths are
*allowed* to cost per operation:

* ``lookup`` — the 1-d point-lookup path (``point_query`` for
  multi-dimensional indexes, ``contains`` for membership filters);
* ``insert`` — the mutable write path, amortized per operation
  (gapped-array expansions, LSM compactions and segment splits are
  amortized over the inserts that triggered them).

Two independent checkers consume the table.  The static analyzer
(RPR301 in :mod:`repro.analysis.complexity`) derives a conservative
complexity class from the AST of each hot path and flags methods whose
derived class *exceeds* the contract.  The runtime witness
(:mod:`repro.bench.scaling`) builds every registered factory across a
geometric n-sweep and fits the scaling of counted work per operation
against the declaration.  Baselines may honestly declare ``LINEAR``
(the sorted-array insert shifts half the array; the linear-scan control
scans everything); learned indexes must stay sublinear — that is the
paper's thesis, stated as a checkable contract.

Classes are amortized and polylog-collapsed: O(log² n) descent and
bounded-run LSM probes count as ``LOGARITHMIC``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.taxonomy import ComplexityClass

__all__ = [
    "ComplexityContract",
    "CONTRACTS",
    "contract_for",
    "hot_method_for_family",
    "HOT_METHODS",
]

_O1 = ComplexityClass.CONSTANT
_OLOG = ComplexityClass.LOGARITHMIC
_ON = ComplexityClass.LINEAR


@dataclass(frozen=True)
class ComplexityContract:
    """Declared per-operation cost bounds for one index class."""

    #: Point-lookup hot path: ``lookup`` / ``point_query`` / ``contains``.
    lookup: ComplexityClass
    #: Amortized insert hot path; ``None`` for immutable classes.
    insert: ComplexityClass | None = None
    #: True for classes the paper's thesis does NOT bound (traditional
    #: baselines and deliberate scan controls); learned indexes must
    #: keep this False so a ``LINEAR`` lookup contract on them is
    #: rejected by the completeness test.
    baseline: bool = False


#: The hot method name the contract's ``lookup`` bound refers to,
#: per ``core.interfaces`` family.
HOT_METHODS: dict[str, str] = {
    "OneDimIndex": "lookup",
    "MultiDimIndex": "point_query",
    "MembershipFilter": "might_contain",
}


def hot_method_for_family(family: str) -> str:
    """Lookup-side hot-path method name for an interface family."""
    return HOT_METHODS[family]


#: qualname -> contract, for every concrete class reachable from the
#: bench factory dicts (plus the two registry-implemented adapters that
#: live outside the interface hierarchy).  The registry-completeness
#: test asserts this table covers the live registry view exactly, so a
#: new factory cannot land without declaring its class here.
CONTRACTS: dict[str, ComplexityContract] = {
    # -- 1-d learned -----------------------------------------------------
    "repro.onedim.rmi.RMIIndex": ComplexityContract(_OLOG),
    "repro.onedim.hybrid_rmi.HybridRMIIndex": ComplexityContract(_OLOG),
    "repro.onedim.radix_spline.RadixSplineIndex": ComplexityContract(_OLOG),
    "repro.onedim.hist_tree.HistTreeIndex": ComplexityContract(_OLOG),
    "repro.onedim.pgm.PGMIndex": ComplexityContract(_OLOG),
    "repro.onedim.pgm.DynamicPGMIndex": ComplexityContract(_OLOG, _OLOG),
    "repro.onedim.fiting_tree.FITingTreeIndex": ComplexityContract(_OLOG, _OLOG),
    "repro.onedim.alex.ALEXIndex": ComplexityContract(_OLOG, _OLOG),
    "repro.onedim.lipp.LIPPIndex": ComplexityContract(_OLOG, _OLOG),
    "repro.onedim.xindex.XIndexStyleIndex": ComplexityContract(_OLOG, _OLOG),
    "repro.onedim.nfl.NFLIndex": ComplexityContract(_OLOG, _OLOG),
    "repro.onedim.interpolation_btree.InterpolationBTreeIndex":
        ComplexityContract(_OLOG, _OLOG),
    "repro.onedim.bourbon.BourbonLSM": ComplexityContract(_OLOG, _OLOG),
    "repro.onedim.learned_skiplist.LearnedSkipList": ComplexityContract(_OLOG, _OLOG),
    "repro.onedim.learned_hash.LearnedHashIndex": ComplexityContract(_O1, _O1),
    "repro.onedim.string_adapter.StringIndexAdapter": ComplexityContract(_OLOG),
    "repro.onedim.polyfit.PolyFitAggregator": ComplexityContract(_OLOG),
    # -- 1-d membership filters -----------------------------------------
    "repro.onedim.learned_bloom.LearnedBloomFilter": ComplexityContract(_O1),
    "repro.onedim.learned_bloom.SandwichedLearnedBloomFilter": ComplexityContract(_O1),
    "repro.onedim.learned_bloom.PartitionedLearnedBloomFilter": ComplexityContract(_O1),
    "repro.onedim.snarf.SNARFFilter": ComplexityContract(_O1),
    "repro.multidim.spatial_lbf.SpatialLearnedBloomFilter": ComplexityContract(_O1),
    # -- multi-d learned -------------------------------------------------
    "repro.multidim.zm_index.ZMIndex": ComplexityContract(_OLOG),
    "repro.multidim.ml_index.MLIndex": ComplexityContract(_OLOG),
    "repro.multidim.qdtree.QdTreeIndex": ComplexityContract(_OLOG),
    "repro.multidim.flood.FloodIndex": ComplexityContract(_OLOG),
    "repro.multidim.tsunami.TsunamiIndex": ComplexityContract(_OLOG),
    "repro.multidim.sprig.SPRIGIndex": ComplexityContract(_OLOG),
    "repro.multidim.learned_kd.LearnedKDIndex": ComplexityContract(_OLOG),
    "repro.multidim.air_tree.AIRTreeIndex": ComplexityContract(_OLOG, _OLOG),
    "repro.multidim.lisa.LISAIndex": ComplexityContract(_OLOG, _OLOG),
    "repro.multidim.rsmi.RSMIIndex": ComplexityContract(_OLOG, _OLOG),
    # -- traditional baselines (honest O(n) where the structure scans) ---
    "repro.baselines.sorted_array.SortedArrayIndex":
        ComplexityContract(_OLOG, _ON, baseline=True),
    "repro.baselines.linear_scan.LinearScanIndex":
        ComplexityContract(_ON, _ON, baseline=True),
    "repro.baselines.btree.BPlusTreeIndex":
        ComplexityContract(_OLOG, _OLOG, baseline=True),
    "repro.baselines.skiplist.SkipListIndex":
        ComplexityContract(_OLOG, _OLOG, baseline=True),
    "repro.baselines.hash_index.HashIndex":
        ComplexityContract(_O1, _O1, baseline=True),
    "repro.baselines.lsm.LSMTreeIndex":
        ComplexityContract(_OLOG, _OLOG, baseline=True),
    "repro.baselines.bloom.BloomFilter": ComplexityContract(_O1, baseline=True),
    "repro.baselines.rtree.RTreeIndex":
        ComplexityContract(_OLOG, _OLOG, baseline=True),
    "repro.baselines.kdtree.KDTreeIndex":
        ComplexityContract(_OLOG, _OLOG, baseline=True),
    "repro.baselines.quadtree.QuadTreeIndex":
        ComplexityContract(_OLOG, _OLOG, baseline=True),
    # The grid file keeps a fixed cell count, so per-cell occupancy —
    # and therefore both point_query and the insert's duplicate scan —
    # grows linearly with n.  It is the multi-d scan control the
    # witness must report as O(n).
    "repro.baselines.gridfile.GridIndex":
        ComplexityContract(_ON, _ON, baseline=True),
}


def contract_for(qualname: str) -> ComplexityContract | None:
    """Contract declared for a class qualname, if any."""
    return CONTRACTS.get(qualname)
