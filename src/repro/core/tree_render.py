"""Figure 2 generator: render the taxonomy tree of learned indexes.

The paper's Figure 2 is a large classification tree.  Here the tree is
*built* from the registry by :func:`repro.core.taxonomy.build_taxonomy`
and rendered as indented text.  Following the paper's conventions:

* a wedge marker ``^`` follows names the survey authors assigned
  themselves (the original paper did not name the index);
* an asterisk ``*`` follows indexes that natively support concurrency;
* branches that exist in the axis product but contain no surveyed paper
  are shown as ``(no papers yet)``, matching the paper's note that "the
  end of a branch indicates that there are no papers in that category".
"""

from __future__ import annotations

from repro.core.registry import REGISTRY, IndexInfo
from repro.core.taxonomy import (
    Dimensionality,
    InsertStrategy,
    Layout,
    Mutability,
    Spectrum,
    TaxonomyNode,
    build_taxonomy,
)

__all__ = ["render_taxonomy", "taxonomy_counts", "empty_branches"]


def _decorate(info: IndexInfo) -> str:
    name = info.name
    if info.assigned_name:
        name += "^"
    if info.concurrent:
        name += "*"
    return name


def _render_node(node: TaxonomyNode, lines: list[str], prefix: str = "") -> None:
    members = ", ".join(_decorate(m) for m in sorted(node.members, key=lambda m: (m.year, m.name)))
    suffix = f"  [{node.count()}]"
    lines.append(f"{prefix}{node.label}{suffix}")
    if members:
        lines.append(f"{prefix}  -> {members}")
    for child in node.children:
        _render_node(child, lines, prefix + "    ")


def render_taxonomy(records: tuple[IndexInfo, ...] = REGISTRY) -> str:
    """Render Figure 2 as indented text with per-branch counts."""
    root = build_taxonomy(records)
    lines = [
        "Figure 2: Taxonomy of learned indexes",
        "(^ = name assigned by the survey; * = native concurrency support)",
        "",
    ]
    _render_node(root, lines)
    empties = empty_branches(records)
    if empties:
        lines.append("")
        lines.append("Open branches (no papers yet):")
        for branch in empties:
            lines.append(f"  - {branch}")
    return "\n".join(lines)


def taxonomy_counts(records: tuple[IndexInfo, ...] = REGISTRY) -> dict[str, int]:
    """Count records per top-level class, for checking against the paper."""
    root = build_taxonomy(records)
    counts = {}
    for child in root.children:
        counts[child.label] = child.count()
    return counts


#: Branch combinations the paper's figure marks as open (no papers).
_CANDIDATE_BRANCHES = [
    (Mutability.MUTABLE, Layout.FIXED, Dimensionality.ONE_DIMENSIONAL,
     Spectrum.PURE, InsertStrategy.IN_PLACE),
    (Mutability.MUTABLE, Layout.FIXED, Dimensionality.ONE_DIMENSIONAL,
     Spectrum.PURE, InsertStrategy.DELTA_BUFFER),
    (Mutability.MUTABLE, Layout.DYNAMIC, Dimensionality.ONE_DIMENSIONAL,
     Spectrum.PURE, InsertStrategy.IN_PLACE),
    (Mutability.MUTABLE, Layout.DYNAMIC, Dimensionality.ONE_DIMENSIONAL,
     Spectrum.PURE, InsertStrategy.DELTA_BUFFER),
    (Mutability.MUTABLE, Layout.FIXED, Dimensionality.MULTI_DIMENSIONAL,
     Spectrum.PURE, InsertStrategy.IN_PLACE),
    (Mutability.MUTABLE, Layout.FIXED, Dimensionality.MULTI_DIMENSIONAL,
     Spectrum.PURE, InsertStrategy.DELTA_BUFFER),
    (Mutability.MUTABLE, Layout.DYNAMIC, Dimensionality.MULTI_DIMENSIONAL,
     Spectrum.PURE, InsertStrategy.IN_PLACE),
    (Mutability.MUTABLE, Layout.DYNAMIC, Dimensionality.MULTI_DIMENSIONAL,
     Spectrum.PURE, InsertStrategy.DELTA_BUFFER),
]


def empty_branches(records: tuple[IndexInfo, ...] = REGISTRY) -> list[str]:
    """Return the candidate taxonomy branches with no surveyed paper."""
    out = []
    for mut, layout, dim, spec, strat in _CANDIDATE_BRANCHES:
        found = any(
            info.mutability is mut
            and info.layout is layout
            and info.dimensionality is dim
            and info.spectrum is spec
            and info.insert_strategy is strat
            for info in records
        )
        if not found:
            out.append(
                f"{mut.value} / {layout.value} layout / {dim.value} / "
                f"{spec.value} / {strat.value}"
            )
    return out
