"""Core package: index interfaces and the paper's taxonomy artifacts."""

from repro.core.interfaces import (
    IndexStats,
    MembershipFilter,
    MultiDimIndex,
    MutableMultiDimIndex,
    MutableOneDimIndex,
    NotBuiltError,
    OneDimIndex,
)
from repro.core.registry import REGISTRY, IndexInfo, get, lineage_graph, query
from repro.core.taxonomy import (
    Dimensionality,
    HybridComponent,
    InsertStrategy,
    Layout,
    MLTechnique,
    Mutability,
    QueryType,
    SpaceHandling,
    Spectrum,
    TaxonomyNode,
    build_taxonomy,
)

__all__ = [
    "IndexStats",
    "MembershipFilter",
    "MultiDimIndex",
    "MutableMultiDimIndex",
    "MutableOneDimIndex",
    "NotBuiltError",
    "OneDimIndex",
    "REGISTRY",
    "IndexInfo",
    "get",
    "lineage_graph",
    "query",
    "Dimensionality",
    "HybridComponent",
    "InsertStrategy",
    "Layout",
    "MLTechnique",
    "Mutability",
    "QueryType",
    "SpaceHandling",
    "Spectrum",
    "TaxonomyNode",
    "build_taxonomy",
]
