"""Core package: index interfaces and the paper's taxonomy artifacts."""

from repro.core import sanitize
from repro.core.artifact import (
    ArtifactError,
    load_index_artifact,
    read_artifact,
    save_index_artifact,
    write_artifact,
)
from repro.core.interfaces import (
    IndexStats,
    MembershipFilter,
    MultiDimIndex,
    MutableMultiDimIndex,
    MutableOneDimIndex,
    NotBuiltError,
    OneDimIndex,
)
from repro.core.numeric import FLOAT64_EXACT_BITS, FLOAT64_EXACT_MAX, exact_float64
from repro.core.registry import REGISTRY, IndexInfo, get, lineage_graph, query
from repro.core.sanitize import SanitizeError
from repro.core.state import (
    IndexState,
    StateError,
    export_index_state,
    index_from_state,
    resolve_index_class,
)
from repro.core.taxonomy import (
    Dimensionality,
    HybridComponent,
    InsertStrategy,
    Layout,
    MLTechnique,
    Mutability,
    QueryType,
    SpaceHandling,
    Spectrum,
    TaxonomyNode,
    build_taxonomy,
)

__all__ = [
    "ArtifactError",
    "load_index_artifact",
    "read_artifact",
    "save_index_artifact",
    "write_artifact",
    "FLOAT64_EXACT_BITS",
    "FLOAT64_EXACT_MAX",
    "SanitizeError",
    "exact_float64",
    "sanitize",
    "IndexState",
    "IndexStats",
    "MembershipFilter",
    "MultiDimIndex",
    "MutableMultiDimIndex",
    "MutableOneDimIndex",
    "NotBuiltError",
    "OneDimIndex",
    "StateError",
    "export_index_state",
    "index_from_state",
    "resolve_index_class",
    "REGISTRY",
    "IndexInfo",
    "get",
    "lineage_graph",
    "query",
    "Dimensionality",
    "HybridComponent",
    "InsertStrategy",
    "Layout",
    "MLTechnique",
    "Mutability",
    "QueryType",
    "SpaceHandling",
    "Spectrum",
    "TaxonomyNode",
    "build_taxonomy",
]
