"""Runtime sanitizer: ``REPRO_SANITIZE=1`` turns on kernel invariant asserts.

The ``RPR1xx`` dataflow rules check dtype/bit-width discipline
*statically*; this module is the dynamic cross-check.  When the
``REPRO_SANITIZE`` environment variable is truthy, the curve kernels and
model builders verify at runtime the same invariants the analyzer
reasons about:

* **overflow headroom** — interleaved codes stay non-negative after the
  uint64 -> int64 round-trip (the top bit was never set);
* **lattice-coordinate range** — quantised coordinates lie in
  ``[0, 2**bits)`` before bit-spreading, so magic-mask truncation can
  never silently alter a code;
* **epsilon-bound containment** — freshly built PLA segments are
  re-verified against the keys they model.

Checks are cheap (one or two vectorised comparisons per kernel call,
one O(n) pass per model build) but not free, so they default to off;
CI runs the tier-1 suite once with the sanitizer enabled.  The
environment variable is read on every call — tests can monkeypatch it.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "ENV_VAR",
    "SanitizeError",
    "enabled",
    "check",
    "check_lattice_coords",
    "check_code_headroom",
]

#: Environment variable gating the runtime checks.
ENV_VAR = "REPRO_SANITIZE"

_FALSY = {"", "0", "false", "off", "no"}


class SanitizeError(AssertionError):
    """A runtime invariant check failed under ``REPRO_SANITIZE=1``."""


def enabled() -> bool:
    """Whether sanitizer checks are active (re-read from the environment)."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


def check(condition: bool, message: str) -> None:
    """Raise :class:`SanitizeError` if ``condition`` is false.

    No-op while the sanitizer is disabled, so callers may invoke it
    unguarded; hot paths still pre-check :func:`enabled` to skip the
    cost of *computing* the condition.
    """
    if not condition and enabled():
        raise SanitizeError(message)


def check_lattice_coords(coords: np.ndarray, bits: int, *, what: str) -> None:
    """Assert integer lattice coordinates lie in ``[0, 2**bits)``.

    Out-of-range coordinates are the one input class the magic-mask
    bit-spreading fast paths silently truncate (scalar encoders raise or
    keep full precision instead), so this is checked before spreading.
    """
    arr = np.asarray(coords)
    if arr.size == 0:
        return
    lo = arr.min()
    hi = arr.max()
    check(
        bool(lo >= 0) and bool(hi < (1 << bits)),
        f"{what}: lattice coordinates out of range [0, 2^{bits}) "
        f"(observed min={lo}, max={hi})",
    )


def check_code_headroom(codes: np.ndarray, *, what: str) -> None:
    """Assert int64 curve codes are non-negative (top bit never set).

    A negative code means the uint64 spreading pipeline produced a value
    with bit 63 set — the budget guard or a mask table is wrong.
    """
    arr = np.asarray(codes)
    if arr.size == 0 or arr.dtype == object:
        return
    check(
        bool(arr.min() >= 0),
        f"{what}: interleaved code has its sign bit set (uint64 value "
        "overflowed the int64 headroom)",
    )
