"""Built-state export / reconstruct: the shared-state contract.

A built index is, at heart, a handful of large numeric arrays (sorted
keys, Morton codes, segment tables, model parameter columns) plus a
small amount of Python object state (configuration, value payloads,
model objects).  :func:`export_index_state` splits a built index along
exactly that line:

* every non-object ndarray reachable through plain containers in the
  instance ``__dict__`` is collected *by reference* into
  :attr:`IndexState.arrays` (deduplicated on identity, so aliased
  arrays — e.g. a PGM level-key array that *is* the data array — are
  exported once),
* everything else is pickled into :attr:`IndexState.payload`, with each
  extracted array replaced by a positional :class:`_SharedArrayRef`
  placeholder.

:func:`index_from_state` inverts the split: it re-creates the instance
without calling ``__init__`` (and therefore without retraining), splices
the arrays back into the restored ``__dict__``, and returns a queryable
index.  Passing substitute ``arrays`` — for example zero-copy views of a
``multiprocessing.shared_memory`` buffer — reconstructs the same index
over memory owned by someone else; that is how the multi-process serving
backend maps a shard without rebuilding it (see :mod:`repro.serve.shm`).

Security note: like :mod:`repro.core.persistence`, the payload is a
pickle — only reconstruct states produced by code you trust.
"""

from __future__ import annotations

import importlib
import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "IndexState",
    "StateError",
    "export_index_state",
    "index_from_state",
    "resolve_index_class",
]


class StateError(RuntimeError):
    """Raised when an index state cannot be exported or reconstructed."""


@dataclass(frozen=True)
class _SharedArrayRef:
    """Placeholder left in the pickled payload for an extracted array."""

    index: int


@dataclass(frozen=True)
class _RefBranch:
    """A container rebuilt because an array ref lives somewhere beneath it.

    Ref-free subtrees are left in the payload as their original objects,
    so reconstruction only walks the (small) spine that actually carries
    refs — a million-entry value list costs O(1) to splice back, not a
    million recursive visits.
    """

    items: Any


@dataclass
class IndexState:
    """One built index, split into shareable arrays and pickled residue.

    Attributes:
        cls_module: module holding the index class.
        cls_qualname: qualified class name inside that module.
        arrays: the extracted numeric ndarrays, positionally referenced
            by :class:`_SharedArrayRef` placeholders in ``payload``.
        payload: pickle of the instance ``__dict__`` with placeholders.
    """

    cls_module: str
    cls_qualname: str
    arrays: list[np.ndarray]
    payload: bytes

    @property
    def nbytes(self) -> int:
        """Total exported size: array bytes plus payload bytes."""
        return sum(int(a.nbytes) for a in self.arrays) + len(self.payload)

    def class_path(self) -> str:
        return f"{self.cls_module}.{self.cls_qualname}"


def _shareable(value: object) -> bool:
    """Whether ``value`` is an ndarray that can live in a flat buffer."""
    return isinstance(value, np.ndarray) and not value.dtype.hasobject


def _decompose(value: Any, arrays: list[np.ndarray],
               memo: dict[int, int]) -> Any:
    """Replace shareable arrays in a plain-container tree with refs.

    Only exact ``list`` / ``tuple`` / ``dict`` instances are descended
    into; anything else (model objects, dataclasses, subclassed
    containers) is left for the pickle, which keeps the traversal free
    of surprises at the cost of copying any arrays those objects hold —
    in this library that is only small model-parameter state.
    """
    if _shareable(value):
        key = id(value)
        if key not in memo:
            memo[key] = len(arrays)
            arrays.append(value)
        return _SharedArrayRef(memo[key])
    if type(value) is list:
        out = [_decompose(item, arrays, memo) for item in value]
        if all(a is b for a, b in zip(out, value)):
            return value  # ref-free: keep the original, recompose skips it
        return _RefBranch(out)
    if type(value) is tuple:
        out_t = tuple(_decompose(item, arrays, memo) for item in value)
        if all(a is b for a, b in zip(out_t, value)):
            return value
        return _RefBranch(out_t)
    if type(value) is dict:
        out_d = {k: _decompose(v, arrays, memo) for k, v in value.items()}
        if all(out_d[k] is v for k, v in value.items()):
            return value
        return _RefBranch(out_d)
    return value


def _recompose(value: Any, arrays: list[np.ndarray]) -> Any:
    """Inverse of :func:`_decompose`: splice ``arrays`` back in.

    Only :class:`_SharedArrayRef` leaves and :class:`_RefBranch` spines
    are visited; everything else is already its final object.
    """
    if isinstance(value, _SharedArrayRef):
        try:
            return arrays[value.index]
        except IndexError:
            raise StateError(
                f"state references array #{value.index} but only "
                f"{len(arrays)} arrays were provided"
            ) from None
    if isinstance(value, _RefBranch):
        items = value.items
        if type(items) is list:
            return [_recompose(item, arrays) for item in items]
        if type(items) is tuple:
            return tuple(_recompose(item, arrays) for item in items)
        if type(items) is dict:
            return {k: _recompose(v, arrays) for k, v in items.items()}
        raise StateError(
            f"malformed ref branch of type {type(items).__name__}"
        )
    return value


def export_index_state(index: object) -> IndexState:
    """Export a built index's state for sharing or reconstruction.

    The returned arrays are the index's *own* arrays (no copy is taken);
    treat the state as an immutable snapshot and do not mutate the
    source index while others hold it.
    """
    cls = type(index)
    arrays: list[np.ndarray] = []
    memo: dict[int, int] = {}
    tree = {
        name: _decompose(value, arrays, memo)
        for name, value in vars(index).items()
    }
    try:
        payload = pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise StateError(
            f"{cls.__name__} state is not exportable: {exc!r}"
        ) from exc
    return IndexState(
        cls_module=cls.__module__,
        cls_qualname=cls.__qualname__,
        arrays=arrays,
        payload=payload,
    )


def _resolve_class(module: str, qualname: str) -> type:
    try:
        obj: Any = importlib.import_module(module)
    except ImportError as exc:
        raise StateError(f"cannot import {module!r} to reconstruct index") from exc
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError:
            raise StateError(
                f"{module}.{qualname} no longer exists; cannot reconstruct"
            ) from None
    if not isinstance(obj, type):
        raise StateError(f"{module}.{qualname} is not a class")
    return obj


def resolve_index_class(state: IndexState) -> type:
    """The class a state reconstructs into, resolved by import path.

    Reconstruction should normally go through ``cls.from_state`` (which
    base interfaces provide and some classes override to rebuild linked
    structures); this resolver is how generic callers find that ``cls``.
    """
    return _resolve_class(state.cls_module, state.cls_qualname)


def index_from_state(state: IndexState,
                     arrays: list[np.ndarray] | None = None) -> object:
    """Reconstruct an index from an exported state without retraining.

    Args:
        state: the exported state.
        arrays: optional substitutes for ``state.arrays`` (must align
            positionally) — pass shared-memory views here to build a
            zero-copy read-only view of the original index.

    The instance is created with ``cls.__new__`` (``__init__`` is never
    run), so reconstruction costs one unpickle plus attribute splicing.
    """
    source = state.arrays if arrays is None else arrays
    if len(source) != len(state.arrays):
        raise StateError(
            f"array count mismatch: state exported {len(state.arrays)} "
            f"arrays, got {len(source)} substitutes"
        )
    cls = _resolve_class(state.cls_module, state.cls_qualname)
    try:
        tree = pickle.loads(state.payload)
    except Exception as exc:
        raise StateError(f"corrupt state payload: {exc!r}") from exc
    if not isinstance(tree, dict):
        raise StateError("state payload did not decode to an attribute dict")
    instance = cls.__new__(cls)
    instance.__dict__.update(
        {name: _recompose(value, source) for name, value in tree.items()}
    )
    return instance
