"""Figure 3 generator: the evolution timeline of learned indexes.

Figure 3 of the paper groups learned-index papers by publication year and
draws lineage arrows from earlier work to the later work that builds on
it.  This module regenerates that figure from the registry's ``influences``
edges: :func:`timeline_rows` yields per-year groups and
:func:`render_timeline` prints them with their lineage, using the paper's
square/triangle convention for one- vs. multi-dimensional indexes.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.registry import REGISTRY, IndexInfo, lineage_graph
from repro.core.taxonomy import Dimensionality

__all__ = ["TimelineRow", "timeline_rows", "render_timeline", "roots", "descendants"]

#: Marker convention from the paper: [] = one-dimensional, <> = multi-dim
#: (stand-ins for the square and triangle glyphs).
_MARKERS = {
    Dimensionality.ONE_DIMENSIONAL: "[]",
    Dimensionality.MULTI_DIMENSIONAL: "<>",
}


@dataclass(frozen=True)
class TimelineRow:
    """All surveyed indexes published in one year."""

    year: int
    entries: tuple[IndexInfo, ...]


def timeline_rows(records: tuple[IndexInfo, ...] = REGISTRY) -> list[TimelineRow]:
    """Group registry records by year, ascending."""
    by_year: dict[int, list[IndexInfo]] = {}
    for info in records:
        by_year.setdefault(info.year, []).append(info)
    return [
        TimelineRow(year=year, entries=tuple(sorted(group, key=lambda i: i.name)))
        for year, group in sorted(by_year.items())
    ]


def render_timeline(records: tuple[IndexInfo, ...] = REGISTRY) -> str:
    """Render Figure 3 as text: one block per year, with lineage arrows."""
    lines = [
        "Figure 3: Evolution of learned indexes",
        "([] = one-dimensional, <> = multi-dimensional; 'x <- y' means x builds on y)",
        "",
    ]
    for row in timeline_rows(records):
        lines.append(f"{row.year}:")
        for info in row.entries:
            marker = _MARKERS[info.dimensionality]
            parents = ", ".join(info.influences) if info.influences else "-"
            lines.append(f"  {marker} {info.name:<18} <- {parents}")
        lines.append("")
    return "\n".join(lines)


def roots(graph: nx.DiGraph | None = None) -> list[str]:
    """Indexes with no surveyed ancestor (the field's origin points)."""
    g = graph if graph is not None else lineage_graph()
    return sorted(node for node in g.nodes if g.in_degree(node) == 0 and g.out_degree(node) > 0)


def descendants(name: str, graph: nx.DiGraph | None = None) -> list[str]:
    """All surveyed indexes that transitively build on ``name``."""
    g = graph if graph is not None else lineage_graph()
    return sorted(nx.descendants(g, name))
