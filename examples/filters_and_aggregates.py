"""Beyond lookups: learned range filters and approximate aggregates.

Two query types classic structures handle poorly, answered by learned
components:

* **Range membership** (SNARF): "could any key lie in [a, b]?" — a
  Bloom filter cannot answer this; SNARF's monotone model + bit array
  can, with zero false negatives.
* **Approximate aggregates** (PolyFit): COUNT/SUM over a key range in
  O(1) from piecewise polynomials, with a guaranteed error bound —
  thousands of times less work than scanning when estimates suffice.

Run:  python examples/filters_and_aggregates.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import render_table
from repro.data import load_1d
from repro.onedim import PolyFitAggregator, SNARFFilter


def main() -> None:
    n = 100_000
    keys = load_1d("lognormal", n, seed=31)
    sk = np.sort(keys)

    print("=== SNARF: learned range filtering ===\n")
    rows = []
    rng = np.random.default_rng(32)
    # Empty ranges centred in inter-key gaps; non-empty ranges around keys.
    empty = []
    for _ in range(2000):
        i = int(rng.integers(0, n - 1))
        mid = (sk[i] + sk[i + 1]) / 2
        eps = (sk[i + 1] - sk[i]) * 0.2
        empty.append((float(mid - eps), float(mid + eps)))
    full = [(float(k) - 1e-9, float(k) + 1e-9) for k in sk[rng.integers(0, n, 2000)]]
    for bpk in (2, 4, 8, 16):
        flt = SNARFFilter(bits_per_key=bpk, num_quantiles=2048).build(keys)
        fn = sum(1 for lo, hi in full if not flt.might_contain_range(lo, hi))
        fpr = sum(1 for lo, hi in empty if flt.might_contain_range(lo, hi)) / len(empty)
        rows.append({
            "bits/key": bpk,
            "empty-range FPR": fpr,
            "false negatives": fn,
            "filter bytes": flt.stats.size_bytes,
        })
    print(render_table(rows, title=f"SNARF over {n:,} lognormal keys"))
    print()

    print("=== PolyFit: O(1) approximate COUNT/SUM ===\n")
    weights = np.random.default_rng(33).uniform(0, 100, n)
    agg = PolyFitAggregator(degree=2, piece_size=1024).build(keys, weights)
    queries = [tuple(sorted(rng.uniform(sk[0], sk[-1], 2))) for _ in range(200)]

    start = time.perf_counter()
    estimates = [agg.count(a, b) for a, b in queries]
    model_time = time.perf_counter() - start
    start = time.perf_counter()
    exact = [agg.exact_count(a, b) for a, b in queries]
    scan_time = time.perf_counter() - start

    worst = max(abs(e - x) for e, x in zip(estimates, exact))
    print(f"200 COUNT queries: model {model_time * 1e3:.2f} ms, "
          f"binary-search oracle {scan_time * 1e3:.2f} ms")
    print(f"worst absolute error: {worst:.1f} "
          f"(guaranteed bound: {agg.count_error_bound:.1f}) over n={n:,}")
    s_est = agg.sum(float(sk[n // 4]), float(sk[3 * n // 4]))
    s_exact = agg.exact_sum(float(sk[n // 4]), float(sk[3 * n // 4]))
    print(f"SUM over the middle half: estimate {s_est:,.0f} vs exact {s_exact:,.0f} "
          f"(bound {agg.sum_error_bound:,.0f})")
    print(f"aggregator size: {agg.stats.size_bytes:,} bytes for {n:,} keys")


if __name__ == "__main__":
    main()
