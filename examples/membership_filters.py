"""Learned Bloom filters for a blocklist-style membership workload.

The original learned-index paper's second contribution: when the member
set has learnable structure (here: cluster-structured ids, as in a URL
blocklist), a classifier can absorb most of the membership decisions and
the backup Bloom filter shrinks.  Compares all four filter designs at
equal bit budgets and shows the learned variants' advantage growing as
the budget tightens.

Run:  python examples/membership_filters.py
"""

from __future__ import annotations

from repro.baselines import BloomFilter
from repro.bench import render_table
from repro.data import load_1d, negative_lookups
from repro.onedim import (
    LearnedBloomFilter,
    PartitionedLearnedBloomFilter,
    SandwichedLearnedBloomFilter,
)


def main() -> None:
    n = 50_000
    print(f"building a blocklist of {n:,} cluster-structured ids ...")
    keys = load_1d("osm", n, seed=21)
    negatives = negative_lookups(keys, n, seed=22)

    rows = []
    for bits_per_key in (4, 6, 8, 10, 14):
        budget = bits_per_key * n
        for name, make in (
            ("bloom", lambda b: BloomFilter(bits=b)),
            ("learned", lambda b: LearnedBloomFilter(bits_budget=b)),
            ("sandwiched", lambda b: SandwichedLearnedBloomFilter(bits_budget=b)),
            ("partitioned", lambda b: PartitionedLearnedBloomFilter(bits_budget=b)),
        ):
            flt = make(budget)
            flt.build(keys)
            missing = sum(1 for k in keys[::97] if not flt.might_contain(float(k)))
            assert missing == 0, "membership filters must never lose a member"
            rows.append({
                "bits/key": bits_per_key,
                "filter": name,
                "fpr": flt.false_positive_rate(negatives[:5000]),
            })

    print()
    print(render_table(rows, title="Membership filters at equal bit budgets"))
    print()
    print("Zero false negatives everywhere (checked above); the learned")
    print("variants trade classifier bits for a much smaller backup filter")
    print("on this clustered key set.")


if __name__ == "__main__":
    main()
