"""Adversarial robustness of learned indexes (open challenges §6.3, §6.7).

Two scenarios from the tutorial's open-challenges section:

1. **Poisoning** — an attacker inserts keys crafted to wreck the index's
   models.  Watch the RMI's error bound explode while the PGM, whose
   epsilon is a worst-case guarantee, does not move.
2. **Distribution drift** — the workload shifts after deployment; stale
   models degrade until a re-training pass rebuilds them.

Run:  python examples/adversarial.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import render_table
from repro.bench.extensions import poison_keys, run_e13, run_e14
from repro.data import load_1d
from repro.onedim import PGMIndex, RMIIndex


def main() -> None:
    print("=== scenario 1: poisoning attack (survey §6.7) ===\n")
    rows = run_e13(n=20000, lookups=300)
    print(render_table(rows, title="RMI vs PGM under increasing poison volume"))
    print()
    print("The attacker packs keys into a near-zero-width interval; the")
    print("RMI's victim leaf now has a near-vertical CDF its linear model")
    print("cannot follow, so its max error explodes.  The PGM simply cuts")
    print("more segments and its epsilon guarantee holds unchanged.\n")

    # Show the mechanism directly.
    clean = load_1d("uniform", 20000, seed=1)
    poisoned = np.sort(np.concatenate([clean, poison_keys(clean, 0.3, seed=2)]))
    rmi = RMIIndex(num_models=64).build(poisoned)
    pgm = PGMIndex(epsilon=32).build(poisoned)
    print(f"after a 30% poison injection: RMI max leaf error = "
          f"{rmi.stats.extra['max_leaf_error']}, PGM guarantee = 32 "
          f"({pgm.num_segments} segments)\n")

    print("=== scenario 2: distribution drift (survey §6.3) ===\n")
    rows = run_e14(n=10000, drift_inserts=10000, lookups=300)
    print(render_table(rows, title="Lookup cost: initial -> drifted -> rebuilt"))
    print()
    print("After ingesting an equal volume of keys from a shifted regime,")
    print("stale models pay on every lookup; rebuilding (re-training) the")
    print("index recovers it — the re-training trigger the survey calls for.")


if __name__ == "__main__":
    main()
