"""Explore the survey's registry of 100+ learned indexes.

Shows how to query the machine-readable taxonomy: filter by axes, walk
an index's lineage, and list what this library implements.

Run:  python examples/taxonomy_explorer.py
"""

from __future__ import annotations

from repro.bench import render_table
from repro.core import (
    Dimensionality,
    InsertStrategy,
    Layout,
    Mutability,
    REGISTRY,
    Spectrum,
    get,
    lineage_graph,
    query,
)
from repro.core.timeline import descendants, roots


def main() -> None:
    print(f"registry covers {len(REGISTRY)} surveyed learned indexes\n")

    print("Mutable pure 1-d indexes with dynamic layouts and in-place inserts:")
    for info in query(
        mutability=Mutability.MUTABLE,
        layout=Layout.DYNAMIC,
        dimensionality=Dimensionality.ONE_DIMENSIONAL,
        spectrum=Spectrum.PURE,
        insert_strategy=InsertStrategy.IN_PLACE,
    ):
        mark = " [implemented here]" if info.implemented else ""
        print(f"  {info.year}  {info.name:<12} {info.notes}{mark}")
    print()

    print("Lineage roots (the field's origin points):", ", ".join(roots()))
    print(f"Everything descending from RMI: {len(descendants('RMI'))} indexes")
    print("Flood's descendants:", ", ".join(descendants("Flood")))
    print()

    graph = lineage_graph()
    most_influential = sorted(graph.nodes, key=lambda n: -graph.out_degree(n))[:8]
    rows = [
        {
            "index": name,
            "year": get(name).year,
            "direct_successors": graph.out_degree(name),
            "total_descendants": len(descendants(name)),
        }
        for name in most_influential
    ]
    print(render_table(rows, title="Most influential surveyed indexes"))
    print()

    implemented = [info for info in REGISTRY if info.implemented]
    print(f"{len(implemented)} surveyed indexes are implemented in this library:")
    for info in implemented:
        print(f"  {info.name:<14} -> {info.implemented}")


if __name__ == "__main__":
    main()
