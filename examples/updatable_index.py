"""Updatable learned indexes under a time-series ingest workload.

The scenario behind the survey's in-place vs delta-buffer distinction: a
monitoring store preloads history, then ingests append-heavy timestamps
while serving point reads.  Compares ALEX and LIPP (in-place), the
dynamic PGM, FITing-Tree, and XIndex (delta buffer), BOURBON (learned
LSM), and the B+-tree baseline across three phases: ingest, read, mixed.

Run:  python examples/updatable_index.py
"""

from __future__ import annotations

import time

from repro.baselines import BPlusTreeIndex
from repro.bench import render_table
from repro.data import insert_stream, load_1d, mixed_workload, point_lookups
from repro.onedim import (
    ALEXIndex,
    BourbonLSM,
    DynamicPGMIndex,
    FITingTreeIndex,
    LIPPIndex,
    XIndexStyleIndex,
)


def main() -> None:
    preload = 50_000
    ingest = 25_000
    print(f"preloading {preload:,} wiki-style timestamps ...")
    history = load_1d("wiki", preload, seed=3)
    stream = insert_stream(history, ingest, seed=4, mode="append")

    contenders = {
        "b+tree": BPlusTreeIndex(fanout=64),
        "alex (in-place)": ALEXIndex(),
        "lipp (in-place)": LIPPIndex(),
        "dynamic-pgm (delta)": DynamicPGMIndex(epsilon=64),
        "fiting-tree (delta)": FITingTreeIndex(epsilon=64),
        "xindex (delta)": XIndexStyleIndex(),
        "bourbon (lsm)": BourbonLSM(),
    }

    rows = []
    for name, index in contenders.items():
        index.build(history)

        start = time.perf_counter()
        for i, key in enumerate(stream):
            index.insert(float(key), i)
        ingest_s = time.perf_counter() - start

        reads = point_lookups(stream, 2000, seed=5)
        start = time.perf_counter()
        for q in reads:
            index.lookup(float(q))
        read_us = (time.perf_counter() - start) / len(reads) * 1e6

        ops = list(mixed_workload(stream, 5000, 0.9, seed=6))
        start = time.perf_counter()
        for op in ops:
            if op.kind == "read":
                index.lookup(op.key)
            else:
                index.insert(op.key, None)
        mixed_s = time.perf_counter() - start

        rows.append({
            "index": name,
            "ingest_ops_s": ingest / ingest_s,
            "read_us_after": read_us,
            "mixed_ops_s": len(ops) / mixed_s,
        })

    print()
    print(render_table(rows, title=f"Append ingest of {ingest:,} keys, then reads"))
    print()
    print("The classic trade-off: delta-buffer designs take inserts cheaply")
    print("but pay on reads (buffers to check); in-place designs keep reads")
    print("fast at the cost of occasional node splits during ingest.")


if __name__ == "__main__":
    main()
