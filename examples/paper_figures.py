"""Regenerate the paper's figures and summary tables from the registry.

Figure 1 (spectrum), Figure 2 (taxonomy), Figure 3 (evolution timeline),
and the §5.6 summaries are all *generated* from
:mod:`repro.core.registry` — run this to print them all.

Run:  python examples/paper_figures.py
"""

from __future__ import annotations

from repro.bench import run_experiment


def main() -> None:
    for fid in ("F1", "F2", "F3", "T1"):
        print("=" * 78)
        print(run_experiment(fid))
        print()


if __name__ == "__main__":
    main()
