"""Spatial analytics scenario: learned multi-dimensional indexes.

Simulates the workload that motivates learned spatial indexes: a
city-scale point dataset (dense clusters + road-like lines + noise),
range-heavy analytics queries, and nearest-neighbour lookups.  Compares
the learned family (ZM-index, Flood, Tsunami, Qd-tree, LISA) against the
R-tree and quadtree, including workload tuning for Flood.

Run:  python examples/spatial_workload.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import QuadTreeIndex, RTreeIndex
from repro.bench import render_table
from repro.data import knn_queries, load_nd, range_queries_nd
from repro.multidim import FloodIndex, LISAIndex, QdTreeIndex, TsunamiIndex, ZMIndex


def measure(index, boxes, knn_points) -> dict:
    index.stats.reset_counters()
    start = time.perf_counter()
    total = 0
    for lo, hi in boxes:
        total += len(index.range_query(lo, hi))
    range_us = (time.perf_counter() - start) / len(boxes) * 1e6

    start = time.perf_counter()
    for q in knn_points:
        index.knn_query(q, 10)
    knn_us = (time.perf_counter() - start) / len(knn_points) * 1e6
    return {
        "index": index.name,
        "range_us": range_us,
        "knn_us": knn_us,
        "scanned/op": index.stats.keys_scanned / (len(boxes) + len(knn_points)),
        "size_bytes": index.stats.size_bytes,
        "results": total,
    }


def main() -> None:
    n = 100_000
    print(f"generating {n:,} OSM-like points (clusters + roads + noise) ...")
    points = load_nd("osm-like", n, seed=11)
    boxes = range_queries_nd(points, 100, 0.001, seed=12)
    knn_points = knn_queries(points, 30, seed=13)

    # A training workload for the learned layouts (disjoint from the
    # evaluation queries).
    train_boxes = range_queries_nd(points, 50, 0.001, seed=14)

    rows = []
    for make in (
        lambda: RTreeIndex(max_entries=32),
        lambda: QuadTreeIndex(capacity=32),
        lambda: ZMIndex(bits=14),
        lambda: FloodIndex(columns_per_dim=32),
        lambda: TsunamiIndex(region_depth=3, columns_per_dim=16),
        lambda: QdTreeIndex(min_block=512, workload=train_boxes),
        lambda: LISAIndex(cells_per_dim=24, shard_size=512),
    ):
        index = make()
        start = time.perf_counter()
        index.build(points)
        build_s = time.perf_counter() - start
        if isinstance(index, (FloodIndex, TsunamiIndex)):
            index.tune(train_boxes)
        row = measure(index, boxes, knn_points)
        row["build_s"] = build_s
        rows.append(row)

    print()
    print(render_table(rows, title="Spatial workload: 100 range + 30 kNN queries"))
    print()
    print("Note the learned grid family (flood/tsunami) scanning far fewer")
    print("keys per query than the R-tree on this clustered workload, and")
    print("the qd-tree matching it by cutting blocks along the workload.")


if __name__ == "__main__":
    main()
