"""Quickstart: learned one-dimensional indexes in five minutes.

Builds the classic learned indexes over a million skewed keys, compares
them against binary search and a B+-tree, and prints the two headline
results of the learned-index literature: comparable-or-better lookup
effort at a fraction of the index size.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import BPlusTreeIndex, SortedArrayIndex
from repro.bench import render_table
from repro.data import load_1d, point_lookups
from repro.onedim import PGMIndex, RadixSplineIndex, RMIIndex


def main() -> None:
    n = 1_000_000
    print(f"generating {n:,} lognormal keys ...")
    keys = load_1d("lognormal", n, seed=7)
    queries = point_lookups(keys, 2000, seed=8)

    contenders = {
        "binary-search": SortedArrayIndex(),
        "b+tree": BPlusTreeIndex(fanout=64),
        "rmi (256 leaves)": RMIIndex(num_models=256),
        "pgm (eps=64)": PGMIndex(epsilon=64),
        "radix-spline": RadixSplineIndex(max_error=64),
    }

    rows = []
    for name, index in contenders.items():
        start = time.perf_counter()
        index.build(keys)
        build_s = time.perf_counter() - start

        index.stats.reset_counters()
        start = time.perf_counter()
        for q in queries:
            index.lookup(float(q))
        lookup_us = (time.perf_counter() - start) / len(queries) * 1e6

        rows.append({
            "index": name,
            "build_s": build_s,
            "lookup_us": lookup_us,
            "cmp/op": index.stats.comparisons / len(queries),
            "index_bytes": index.stats.size_bytes,
        })

    print()
    print(render_table(rows, title="Learned vs traditional 1-d indexes (1M lognormal keys)"))
    print()

    pgm = contenders["pgm (eps=64)"]
    btree = contenders["b+tree"]
    ratio = btree.stats.size_bytes / max(pgm.stats.size_bytes, 1)
    print(f"PGM index structure is {ratio:,.0f}x smaller than the B+-tree")
    print(f"PGM: {pgm.num_segments} segments in {pgm.num_levels} levels for {n:,} keys")

    # Range queries work identically everywhere.
    sk = np.sort(keys)
    lo, hi = float(sk[1000]), float(sk[1100])
    assert [v for _, v in pgm.range_query(lo, hi)] == list(range(1000, 1101))
    print(f"range_query({lo:.1f}, {hi:.1f}) -> 101 keys, as expected")


if __name__ == "__main__":
    main()
