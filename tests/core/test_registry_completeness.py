"""Registry completeness: no concrete index module escapes the contract.

Every module under ``onedim/``, ``multidim/``, ``baselines/`` that
defines a concrete ``core.interfaces`` subclass must contribute at least
one class that is constructible from a bench factory dict or claimed by
the survey registry (``implemented=``).  This is the dynamic twin of the
linter's RPR001 rule: the linter proves it statically per class, this
test proves the live import graph agrees.
"""

from __future__ import annotations

import pytest

from repro.analysis.registry_view import build_registry_view
from repro.bench import runner
from repro.core import registry


@pytest.fixture(scope="module")
def view():
    return build_registry_view()


def test_every_concrete_class_is_registered(view):
    unregistered = [
        info.qualname
        for info in view.classes
        if not info.in_registry and not info.factory_names
    ]
    assert unregistered == [], (
        f"concrete index classes outside both core.registry and the bench "
        f"factories: {unregistered}"
    )


def test_every_impl_module_contributes_a_registered_factory(view):
    by_module: dict[str, list] = {}
    for info in view.classes:
        by_module.setdefault(info.module, []).append(info)
    assert by_module, "registry view found no implementation modules"
    for module, classes in sorted(by_module.items()):
        assert any(c.in_registry or c.factory_names for c in classes), (
            f"{module} defines concrete index classes but none is registered"
        )


def test_no_class_leaves_abstract_surface_open(view):
    incomplete = {
        info.qualname: info.missing_abstract
        for info in view.classes
        if info.missing_abstract
    }
    assert incomplete == {}


def test_registry_implemented_targets_resolve(view):
    """Every ``implemented=`` path in the survey registry imports."""
    import importlib

    for info in registry.REGISTRY:
        if info.implemented is None:
            continue
        module_name, _, cls_name = info.implemented.rpartition(".")
        module = importlib.import_module(module_name)
        assert hasattr(module, cls_name), info.implemented


def test_filter_factories_cover_all_membership_filters(view):
    filter_classes = {
        info.qualname for info in view.classes if info.family == "MembershipFilter"
    }
    covered = view.factory_members["FILTER_FACTORIES"]
    assert filter_classes <= covered, filter_classes - covered


def test_batch_overrides_inside_parity_factories(view):
    """Dynamic twin of RPR002: overrides must be parity-parametrized."""
    for info in view.classes:
        for meth in info.batch_overrides:
            dict_name = (
                "ONE_DIM_FACTORIES"
                if meth in ("lookup_batch", "contains_batch")
                else "MULTI_DIM_FACTORIES"
            )
            assert info.qualname in view.factory_members[dict_name], (
                f"{info.qualname}.{meth} escapes the batch-parity suite"
            )


def test_factory_dicts_construct_fresh_instances():
    for name, factory in {
        **runner.ONE_DIM_FACTORIES,
        **runner.MULTI_DIM_FACTORIES,
        **runner.FILTER_FACTORIES,
    }.items():
        a, b = factory(), factory()
        assert a is not b, f"{name} factory must build fresh instances"
