"""Tests for the taxonomy tree construction."""

from repro.core.registry import REGISTRY
from repro.core.taxonomy import TaxonomyNode, build_taxonomy


class TestTaxonomyNode:
    def test_add_child_is_idempotent(self):
        root = TaxonomyNode("root")
        a1 = root.add_child("a")
        a2 = root.add_child("a")
        assert a1 is a2
        assert len(root.children) == 1

    def test_count_includes_descendants(self):
        root = TaxonomyNode("root")
        child = root.add_child("a")
        child.members.append("x")
        grand = child.add_child("b")
        grand.members.extend(["y", "z"])
        assert root.count() == 3
        assert child.count() == 3
        assert grand.count() == 2

    def test_walk_visits_all_nodes(self):
        root = TaxonomyNode("root")
        root.add_child("a").add_child("b")
        root.add_child("c")
        labels = [n.label for n in root.walk()]
        assert labels == ["root", "a", "b", "c"]

    def test_find_descends_by_labels(self):
        root = TaxonomyNode("root")
        root.add_child("a").add_child("b")
        assert root.find("a", "b") is not None
        assert root.find("a", "nope") is None


class TestBuildTaxonomy:
    def test_root_covers_all_records(self):
        root = build_taxonomy(REGISTRY)
        assert root.count() == len(REGISTRY)

    def test_top_level_split_is_mutability(self):
        root = build_taxonomy(REGISTRY)
        labels = {c.label for c in root.children}
        assert labels == {"immutable", "mutable"}

    def test_mutable_branch_splits_by_layout(self):
        root = build_taxonomy(REGISTRY)
        mutable = root.find("mutable")
        labels = {c.label for c in mutable.children}
        assert "fixed layout" in labels
        assert "dynamic layout" in labels

    def test_rmi_lands_in_the_immutable_pure_1d_branch(self):
        root = build_taxonomy(REGISTRY)
        node = root.find("immutable", "1-d", "pure")
        names = {m.name for m in node.members}
        assert "RMI" in names

    def test_alex_lands_in_dynamic_inplace_branch(self):
        root = build_taxonomy(REGISTRY)
        node = root.find("mutable", "dynamic layout", "1-d", "pure", "in-place")
        names = {m.name for m in node.members}
        assert "ALEX" in names
        assert "LIPP" in names

    def test_multi_dim_pure_projected_branch_contains_zm(self):
        root = build_taxonomy(REGISTRY)
        node = root.find("immutable", "multi-d", "pure")
        projected = node.find("projected space")
        names = {m.name for m in projected.members}
        assert "ZM-index" in names

    def test_counts_by_space_partition_the_tree(self):
        root = build_taxonomy(REGISTRY)
        one_d = sum(
            n.count() for n in root.walk()
            if n.label == "1-d" and not any(c.label == "1-d" for c in n.children)
        )
        # Each record appears in exactly one leaf path.
        total = root.count()
        multi = sum(n.count() for n in root.walk() if n.label == "multi-d")
        assert one_d + multi == total
