"""Round-trip tests for export_state/from_state and shm snapshot packing.

Every registered factory (1-d and multi-d) must survive
``export_state -> from_state`` with query-for-query parity: the process
backend ships exactly this state through shared memory, so a factory
that reconstructs incorrectly here would serve wrong answers from a
worker there.  The shm section packs states into real
``multiprocessing.shared_memory`` segments and attaches zero-copy views
the way a worker does.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES
from repro.core import NotBuiltError
from repro.core.state import StateError, index_from_state, resolve_index_class
from repro.data import load_1d, load_nd
from repro.serve.shm import (
    SEGMENT_PREFIX,
    SnapshotIntegrityError,
    attach_view,
    list_repro_segments,
    pack_state,
    release_segment,
)

N_1D = 600
N_ND = 400

#: Indexes whose snapshots the serving layer actually ships; these also
#: get the full shared-memory pack/attach treatment.
SHM_HOT_1D = ["rmi", "pgm", "alex", "b+tree", "learned-skiplist"]
SHM_HOT_ND = ["zm-index", "flood", "r-tree"]


@pytest.fixture(scope="module")
def keys_1d():
    return load_1d("lognormal", N_1D, seed=11)


@pytest.fixture(scope="module")
def points_nd():
    return load_nd("clusters", N_ND, seed=12)


def _assert_1d_parity(original, restored, keys):
    sk = np.sort(keys)
    for i in range(0, len(sk), 53):
        key = float(sk[i])
        assert restored.lookup(key) == original.lookup(key)
        assert restored.contains(key) == original.contains(key)
    assert restored.range_query(float(sk[5]), float(sk[60])) == \
        original.range_query(float(sk[5]), float(sk[60]))
    assert restored.lookup(float(sk[-1]) + 1e6) is None


def _assert_nd_parity(original, restored, points):
    for i in range(0, len(points), 71):
        assert restored.point_query(points[i]) == original.point_query(points[i])


class TestRoundTripEveryFactory:
    @pytest.mark.parametrize("name", sorted(ONE_DIM_FACTORIES))
    def test_one_dim_roundtrip(self, name, keys_1d):
        original = ONE_DIM_FACTORIES[name]().build(keys_1d)
        state = original.export_state()
        cls = resolve_index_class(state)
        assert cls is type(original)
        restored = cls.from_state(state)
        _assert_1d_parity(original, restored, keys_1d)

    @pytest.mark.parametrize("name", sorted(MULTI_DIM_FACTORIES))
    def test_multi_dim_roundtrip(self, name, points_nd):
        original = MULTI_DIM_FACTORIES[name]().build(points_nd)
        state = original.export_state()
        restored = resolve_index_class(state).from_state(state)
        _assert_nd_parity(original, restored, points_nd)

    def test_unbuilt_index_refuses_export(self):
        with pytest.raises(NotBuiltError):
            ONE_DIM_FACTORIES["pgm"]().export_state()

    def test_restored_index_reports_built(self, keys_1d):
        original = ONE_DIM_FACTORIES["rmi"]().build(keys_1d)
        restored = type(original).from_state(original.export_state())
        # A view must answer queries without tripping _require_built.
        restored._require_built()

    def test_generic_from_state_matches_helper(self, keys_1d):
        original = ONE_DIM_FACTORIES["binary-search"]().build(keys_1d)
        state = original.export_state()
        via_cls = type(original).from_state(state)
        via_helper = index_from_state(state)
        sk = np.sort(keys_1d)
        assert via_cls.lookup(float(sk[7])) == via_helper.lookup(float(sk[7]))

    def test_array_substitution_count_checked(self, keys_1d):
        state = ONE_DIM_FACTORIES["pgm"]().build(keys_1d).export_state()
        with pytest.raises(StateError, match="array count mismatch"):
            index_from_state(state, arrays=state.arrays[:-1])


class TestSharedMemoryRoundTrip:
    @pytest.mark.parametrize("name", SHM_HOT_1D)
    def test_one_dim_pack_attach(self, name, keys_1d):
        original = ONE_DIM_FACTORIES[name]().build(keys_1d)
        manifest, shm = pack_state(original.export_state(), generation=3)
        try:
            assert manifest.shm_name.startswith(SEGMENT_PREFIX)
            assert manifest.generation == 3
            view, attached = attach_view(manifest)
            _assert_1d_parity(original, view, keys_1d)
            del view
            attached.close()
        finally:
            release_segment(shm)

    @pytest.mark.parametrize("name", SHM_HOT_ND)
    def test_multi_dim_pack_attach(self, name, points_nd):
        original = MULTI_DIM_FACTORIES[name]().build(points_nd)
        manifest, shm = pack_state(original.export_state())
        try:
            view, attached = attach_view(manifest)
            _assert_nd_parity(original, view, points_nd)
            del view
            attached.close()
        finally:
            release_segment(shm)

    def test_attached_arrays_are_read_only_views(self, keys_1d):
        original = ONE_DIM_FACTORIES["binary-search"]().build(keys_1d)
        manifest, shm = pack_state(original.export_state())
        try:
            view, attached = attach_view(manifest)
            # Object-dtype arrays travel through the pickled payload;
            # only numeric arrays are zero-copy views over the segment.
            shared = [a for a in vars(view).values()
                      if isinstance(a, np.ndarray) and a.size
                      and a.dtype != object]
            assert shared, "expected at least one shared array view"
            for arr in shared:
                assert not arr.flags.writeable
                assert not arr.flags.owndata
                with pytest.raises(ValueError):
                    arr[0] = 0.0
            del view, shared
            attached.close()
        finally:
            release_segment(shm)

    def test_corrupt_buffer_fails_digest(self, keys_1d):
        original = ONE_DIM_FACTORIES["pgm"]().build(keys_1d)
        manifest, shm = pack_state(original.export_state())
        try:
            shm.buf[manifest.total_bytes // 2] ^= 0xFF
            with pytest.raises(SnapshotIntegrityError, match="sha256 mismatch"):
                attach_view(manifest)
        finally:
            release_segment(shm)

    def test_missing_segment_is_integrity_error(self, keys_1d):
        original = ONE_DIM_FACTORIES["pgm"]().build(keys_1d)
        manifest, shm = pack_state(original.export_state())
        release_segment(shm)
        with pytest.raises(SnapshotIntegrityError, match="does not exist"):
            attach_view(manifest)

    def test_release_segment_unlinks_and_tolerates_repeat(self, keys_1d):
        original = ONE_DIM_FACTORIES["rmi"]().build(keys_1d)
        manifest, shm = pack_state(original.export_state())
        assert manifest.shm_name in list_repro_segments()
        release_segment(shm)
        assert manifest.shm_name not in list_repro_segments()

    def test_empty_payload_only_state_packs(self):
        # An index whose state has a zero-length array still round-trips.
        keys = np.array([1.0, 2.0, 3.0])
        original = ONE_DIM_FACTORIES["hash"]().build(keys)
        manifest, shm = pack_state(original.export_state())
        try:
            view, attached = attach_view(manifest)
            assert view.lookup(2.0) == original.lookup(2.0)
            del view
            attached.close()
        finally:
            release_segment(shm)
