"""Tests for the survey registry: counts, structure, lineage."""

import networkx as nx
import pytest

from repro.core.registry import REGISTRY, get, lineage_graph, query, counts_by
from repro.core.taxonomy import (
    Dimensionality,
    HybridComponent,
    InsertStrategy,
    Layout,
    Mutability,
    Spectrum,
)


class TestRegistryShape:
    def test_registry_covers_over_100_indexes(self):
        assert len(REGISTRY) >= 100

    def test_names_are_unique(self):
        names = [info.name for info in REGISTRY]
        assert len(names) == len(set(names))

    def test_years_span_the_survey_period(self):
        years = {info.year for info in REGISTRY}
        assert min(years) == 2018  # RMI
        assert max(years) >= 2023

    def test_every_record_has_refs(self):
        assert all(info.refs for info in REGISTRY)

    def test_multi_dim_count_matches_paper_claim(self):
        # The tutorial covers "over 40 learned multi-dimensional indexes".
        multi = query(dimensionality=Dimensionality.MULTI_DIMENSIONAL)
        assert len(multi) >= 40

    def test_one_dim_immutable_count_matches_paper(self):
        # Paper §4.1 counts 18 immutable one-dimensional indexes from its
        # reference list; our registry additionally classifies the
        # immutable Bloom-filter hybrids here, so >= 18.
        immutable = query(
            dimensionality=Dimensionality.ONE_DIMENSIONAL,
            mutability=Mutability.IMMUTABLE,
        )
        assert len(immutable) >= 18

    def test_one_dim_mutable_count_matches_paper(self):
        # Paper §4.1 counts 48 mutable one-dimensional indexes; we cover
        # the representative majority of them.
        mutable = query(
            dimensionality=Dimensionality.ONE_DIMENSIONAL,
            mutability=Mutability.MUTABLE,
        )
        assert len(mutable) >= 35

    def test_mutable_indexes_have_layouts(self):
        for info in query(mutability=Mutability.MUTABLE, spectrum=Spectrum.PURE):
            assert info.layout in (Layout.FIXED, Layout.DYNAMIC)

    def test_pure_indexes_have_no_hybrid_component(self):
        for info in query(spectrum=Spectrum.PURE):
            assert info.hybrid_component is HybridComponent.NONE

    def test_hybrid_indexes_name_their_component(self):
        for info in query(spectrum=Spectrum.HYBRID):
            assert info.hybrid_component is not HybridComponent.NONE


class TestRegistryLookups:
    def test_get_known_index(self):
        rmi = get("RMI")
        assert rmi.year == 2018
        assert rmi.refs == (59,)

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get("definitely-not-an-index")

    def test_query_by_multiple_attributes(self):
        results = query(
            mutability=Mutability.MUTABLE,
            layout=Layout.DYNAMIC,
            dimensionality=Dimensionality.ONE_DIMENSIONAL,
            spectrum=Spectrum.PURE,
            insert_strategy=InsertStrategy.IN_PLACE,
        )
        names = {info.name for info in results}
        assert "ALEX" in names
        assert "LIPP" in names

    def test_counts_by_mutability(self):
        counts = counts_by("mutability")
        assert counts[Mutability.MUTABLE] > counts[Mutability.IMMUTABLE]

    def test_key_representatives_are_implemented(self):
        for name in ("RMI", "PGM-index", "ALEX", "LIPP", "RadixSpline",
                     "ZM-index", "Flood", "Qd-tree", "LISA", "BOURBON"):
            assert get(name).implemented is not None, name


class TestLineage:
    def test_lineage_is_acyclic(self):
        graph = lineage_graph()
        assert nx.is_directed_acyclic_graph(graph)

    def test_rmi_is_the_great_ancestor(self):
        graph = lineage_graph()
        descendants = nx.descendants(graph, "RMI")
        # The survey's Figure 3 shows nearly everything descending from RMI.
        assert len(descendants) >= 50

    def test_edges_respect_chronology(self):
        graph = lineage_graph()
        for parent, child in graph.edges:
            assert get(parent).year <= get(child).year, (parent, child)

    def test_known_lineage_edges(self):
        graph = lineage_graph()
        assert graph.has_edge("RMI", "ALEX")
        assert graph.has_edge("Flood", "Tsunami")
        assert graph.has_edge("ALEX", "LIPP")
