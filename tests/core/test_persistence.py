"""Tests for index persistence (save/load round-trips)."""

import numpy as np
import pytest

from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES
from repro.core.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    load_index,
    save_index,
)
from repro.data import load_1d, load_nd

ROUNDTRIP_1D = ["pgm", "rmi", "alex", "lipp", "radix-spline", "b+tree",
                "fiting-tree", "hist-tree", "nfl"]
ROUNDTRIP_ND = ["flood", "zm-index", "r-tree", "lisa", "qd-tree", "rsmi"]


class TestRoundTrip:
    @pytest.mark.parametrize("name", ROUNDTRIP_1D)
    def test_one_dim_roundtrip(self, name, tmp_path):
        keys = load_1d("lognormal", 1000, seed=5)
        sk = np.sort(keys)
        original = ONE_DIM_FACTORIES[name]().build(keys)
        path = tmp_path / f"{name}.lidx"
        written = save_index(original, path)
        assert written == path.stat().st_size
        restored = load_index(path)
        for i in range(0, 1000, 97):
            assert restored.lookup(float(sk[i])) == i
        assert restored.range_query(float(sk[10]), float(sk[20])) == \
            original.range_query(float(sk[10]), float(sk[20]))

    @pytest.mark.parametrize("name", ROUNDTRIP_ND)
    def test_multi_dim_roundtrip(self, name, tmp_path):
        pts = load_nd("clusters", 800, seed=6)
        original = MULTI_DIM_FACTORIES[name]().build(pts)
        path = tmp_path / f"{name}.lidx"
        save_index(original, path)
        restored = load_index(path)
        for i in range(0, 800, 111):
            assert restored.point_query(pts[i]) == i

    def test_mutable_index_usable_after_load(self, tmp_path):
        keys = load_1d("uniform", 500, seed=7)
        index = ONE_DIM_FACTORIES["alex"]().build(keys)
        path = tmp_path / "alex.lidx"
        save_index(index, path)
        restored = load_index(path)
        restored.insert(-42.0, "post-load")
        assert restored.lookup(-42.0) == "post-load"
        assert restored.delete(-42.0)


class TestFormatSafety:
    def test_rejects_non_index_file(self, tmp_path):
        path = tmp_path / "garbage.lidx"
        path.write_bytes(b"definitely not an index")
        with pytest.raises(PersistenceError, match="not a learned-index"):
            load_index(path)

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "short.lidx"
        path.write_bytes(b"LIDX")
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_detects_corruption(self, tmp_path):
        keys = load_1d("uniform", 100, seed=8)
        index = ONE_DIM_FACTORIES["pgm"]().build(keys)
        path = tmp_path / "pgm.lidx"
        save_index(index, path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError, match="digest mismatch"):
            load_index(path)

    def test_rejects_future_version(self, tmp_path):
        keys = load_1d("uniform", 100, seed=9)
        index = ONE_DIM_FACTORIES["pgm"]().build(keys)
        path = tmp_path / "pgm.lidx"
        save_index(index, path)
        blob = bytearray(path.read_bytes())
        blob[4:6] = (FORMAT_VERSION + 1).to_bytes(2, "big")
        path.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError, match="newer than supported"):
            load_index(path)


class AliasedHolder:
    """Module-level stand-in with aliased arrays (reconstructable by path)."""


class TestV2Layout:
    def test_header_shape_and_manifest(self, tmp_path):
        import hashlib
        import json

        keys = load_1d("uniform", 200, seed=21)
        index = ONE_DIM_FACTORIES["pgm"]().build(keys)
        path = tmp_path / "pgm.lidx"
        save_index(index, path)
        blob = path.read_bytes()
        assert blob[:4] == b"LIDX"
        assert int.from_bytes(blob[4:6], "big") == FORMAT_VERSION == 2
        manifest_len = int.from_bytes(blob[38:42], "big")
        manifest_bytes = blob[42:42 + manifest_len]
        assert hashlib.sha256(manifest_bytes).digest() == blob[6:38]
        manifest = json.loads(manifest_bytes)
        assert manifest["built"] is True
        assert manifest["class"]["qualname"].endswith("PGMIndex")
        for entry in manifest["arrays"]:
            assert {"dtype", "shape", "offset", "nbytes", "sha256"} <= set(entry)
        assert {"offset", "nbytes", "sha256"} <= set(manifest["payload"])

    def test_aliased_arrays_stored_once(self, tmp_path):
        import json

        shared = np.arange(512, dtype=np.float64)
        obj = AliasedHolder()
        obj.first = shared
        obj.second = shared
        path = tmp_path / "alias.lidx"
        written = save_index(obj, path)
        # One block for the alias pair: far smaller than two copies.
        assert written < 2 * shared.nbytes
        blob = path.read_bytes()
        manifest_len = int.from_bytes(blob[38:42], "big")
        manifest = json.loads(blob[42:42 + manifest_len])
        assert len(manifest["arrays"]) == 1
        restored = load_index(path)
        assert restored.first is restored.second
        np.testing.assert_array_equal(restored.first, shared)

    def test_unbuilt_index_roundtrip(self, tmp_path):
        index = ONE_DIM_FACTORIES["pgm"]()
        path = tmp_path / "unbuilt.lidx"
        save_index(index, path)
        restored = load_index(path)
        keys = load_1d("uniform", 300, seed=22)
        restored.build(keys)
        sk = np.sort(keys)
        assert restored.lookup(float(sk[5])) == 5

    def test_corrupt_manifest_detected(self, tmp_path):
        keys = load_1d("uniform", 100, seed=23)
        index = ONE_DIM_FACTORIES["pgm"]().build(keys)
        path = tmp_path / "pgm.lidx"
        save_index(index, path)
        blob = bytearray(path.read_bytes())
        blob[50] ^= 0xFF  # inside the manifest JSON
        path.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError, match="manifest digest mismatch"):
            load_index(path)

    def test_version1_file_still_loads(self, tmp_path):
        import hashlib
        import pickle

        keys = load_1d("uniform", 200, seed=24)
        index = ONE_DIM_FACTORIES["pgm"]().build(keys)
        payload = pickle.dumps(index)
        blob = (b"LIDX" + (1).to_bytes(2, "big")
                + hashlib.sha256(payload).digest() + payload)
        path = tmp_path / "legacy.lidx"
        path.write_bytes(blob)
        restored = load_index(path)
        sk = np.sort(keys)
        assert restored.lookup(float(sk[11])) == 11

    def test_version1_corruption_detected(self, tmp_path):
        import hashlib
        import pickle

        payload = pickle.dumps({"not": "an index"})
        blob = bytearray(b"LIDX" + (1).to_bytes(2, "big")
                         + hashlib.sha256(payload).digest() + payload)
        blob[-1] ^= 0xFF
        path = tmp_path / "legacy.lidx"
        path.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError, match="digest mismatch"):
            load_index(path)
