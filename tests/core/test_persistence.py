"""Tests for index persistence (save/load round-trips)."""

import numpy as np
import pytest

from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES
from repro.core.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    load_index,
    save_index,
)
from repro.data import load_1d, load_nd

ROUNDTRIP_1D = ["pgm", "rmi", "alex", "lipp", "radix-spline", "b+tree",
                "fiting-tree", "hist-tree", "nfl"]
ROUNDTRIP_ND = ["flood", "zm-index", "r-tree", "lisa", "qd-tree", "rsmi"]


class TestRoundTrip:
    @pytest.mark.parametrize("name", ROUNDTRIP_1D)
    def test_one_dim_roundtrip(self, name, tmp_path):
        keys = load_1d("lognormal", 1000, seed=5)
        sk = np.sort(keys)
        original = ONE_DIM_FACTORIES[name]().build(keys)
        path = tmp_path / f"{name}.lidx"
        written = save_index(original, path)
        assert written == path.stat().st_size
        restored = load_index(path)
        for i in range(0, 1000, 97):
            assert restored.lookup(float(sk[i])) == i
        assert restored.range_query(float(sk[10]), float(sk[20])) == \
            original.range_query(float(sk[10]), float(sk[20]))

    @pytest.mark.parametrize("name", ROUNDTRIP_ND)
    def test_multi_dim_roundtrip(self, name, tmp_path):
        pts = load_nd("clusters", 800, seed=6)
        original = MULTI_DIM_FACTORIES[name]().build(pts)
        path = tmp_path / f"{name}.lidx"
        save_index(original, path)
        restored = load_index(path)
        for i in range(0, 800, 111):
            assert restored.point_query(pts[i]) == i

    def test_mutable_index_usable_after_load(self, tmp_path):
        keys = load_1d("uniform", 500, seed=7)
        index = ONE_DIM_FACTORIES["alex"]().build(keys)
        path = tmp_path / "alex.lidx"
        save_index(index, path)
        restored = load_index(path)
        restored.insert(-42.0, "post-load")
        assert restored.lookup(-42.0) == "post-load"
        assert restored.delete(-42.0)


class TestFormatSafety:
    def test_rejects_non_index_file(self, tmp_path):
        path = tmp_path / "garbage.lidx"
        path.write_bytes(b"definitely not an index")
        with pytest.raises(PersistenceError, match="not a learned-index"):
            load_index(path)

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "short.lidx"
        path.write_bytes(b"LIDX")
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_detects_corruption(self, tmp_path):
        keys = load_1d("uniform", 100, seed=8)
        index = ONE_DIM_FACTORIES["pgm"]().build(keys)
        path = tmp_path / "pgm.lidx"
        save_index(index, path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError, match="digest mismatch"):
            load_index(path)

    def test_rejects_future_version(self, tmp_path):
        keys = load_1d("uniform", 100, seed=9)
        index = ONE_DIM_FACTORIES["pgm"]().build(keys)
        path = tmp_path / "pgm.lidx"
        save_index(index, path)
        blob = bytearray(path.read_bytes())
        blob[4:6] = (FORMAT_VERSION + 1).to_bytes(2, "big")
        path.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError, match="newer than supported"):
            load_index(path)
