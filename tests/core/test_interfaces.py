"""Tests for the shared index interfaces and IndexStats."""

import numpy as np
import pytest

from repro.baselines import SortedArrayIndex
from repro.core.interfaces import IndexStats, NotBuiltError, OneDimIndex


class TestIndexStats:
    def test_counters_start_at_zero(self):
        stats = IndexStats()
        assert stats.comparisons == 0
        assert stats.keys_scanned == 0
        assert stats.size_bytes == 0

    def test_reset_counters_keeps_build_info(self):
        stats = IndexStats(comparisons=5, build_seconds=1.5, size_bytes=100)
        stats.reset_counters()
        assert stats.comparisons == 0
        assert stats.build_seconds == 1.5
        assert stats.size_bytes == 100

    def test_snapshot_is_plain_dict(self):
        stats = IndexStats(comparisons=3, nodes_visited=2)
        snap = stats.snapshot()
        assert snap["comparisons"] == 3
        assert snap["nodes_visited"] == 2
        snap["comparisons"] = 99
        assert stats.comparisons == 3


class TestPrepare:
    def test_sorts_keys_and_assigns_rank_values(self):
        keys, values = OneDimIndex._prepare([3.0, 1.0, 2.0], None)
        assert list(keys) == [1.0, 2.0, 3.0]
        assert values == [0, 1, 2]

    def test_aligns_explicit_values_with_sorted_keys(self):
        keys, values = OneDimIndex._prepare([3.0, 1.0], ["c", "a"])
        assert list(keys) == [1.0, 3.0]
        assert values == ["a", "c"]

    def test_rejects_mismatched_values(self):
        with pytest.raises(ValueError):
            OneDimIndex._prepare([1.0, 2.0], ["only-one"])

    def test_rejects_non_finite_keys(self):
        with pytest.raises(ValueError):
            OneDimIndex._prepare([1.0, np.nan], None)
        with pytest.raises(ValueError):
            OneDimIndex._prepare([1.0, np.inf], None)

    def test_rejects_2d_keys(self):
        with pytest.raises(ValueError):
            OneDimIndex._prepare(np.zeros((3, 2)), None)

    def test_empty_keys_allowed(self):
        keys, values = OneDimIndex._prepare([], None)
        assert keys.size == 0
        assert values == []


class TestNotBuilt:
    def test_query_before_build_raises(self):
        index = SortedArrayIndex()
        with pytest.raises(NotBuiltError):
            index.lookup(1.0)

    def test_range_before_build_raises(self):
        index = SortedArrayIndex()
        with pytest.raises(NotBuiltError):
            index.range_query(0.0, 1.0)

    def test_insert_before_build_raises(self):
        index = SortedArrayIndex()
        with pytest.raises(NotBuiltError):
            index.insert(1.0)


class TestBuildReturnsSelf:
    def test_fluent_construction(self):
        index = SortedArrayIndex().build([1.0, 2.0, 3.0])
        assert index.lookup(2.0) == 1

    def test_contains(self):
        index = SortedArrayIndex().build([1.0, 2.0])
        assert index.contains(1.0)
        assert not index.contains(9.0)
