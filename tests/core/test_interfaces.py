"""Tests for the shared index interfaces and IndexStats."""

import numpy as np
import pytest

from repro.baselines import SortedArrayIndex
from repro.core.interfaces import IndexStats, MultiDimIndex, NotBuiltError, OneDimIndex


class TestIndexStats:
    def test_counters_start_at_zero(self):
        stats = IndexStats()
        assert stats.comparisons == 0
        assert stats.keys_scanned == 0
        assert stats.size_bytes == 0

    def test_reset_counters_keeps_build_info(self):
        stats = IndexStats(comparisons=5, build_seconds=1.5, size_bytes=100)
        stats.reset_counters()
        assert stats.comparisons == 0
        assert stats.build_seconds == 1.5
        assert stats.size_bytes == 100

    def test_snapshot_is_plain_dict(self):
        stats = IndexStats(comparisons=3, nodes_visited=2)
        snap = stats.snapshot()
        assert snap["comparisons"] == 3
        assert snap["nodes_visited"] == 2
        snap["comparisons"] = 99
        assert stats.comparisons == 3


class TestPrepare:
    def test_sorts_keys_and_assigns_rank_values(self):
        keys, values = OneDimIndex._prepare([3.0, 1.0, 2.0], None)
        assert list(keys) == [1.0, 2.0, 3.0]
        assert values == [0, 1, 2]

    def test_aligns_explicit_values_with_sorted_keys(self):
        keys, values = OneDimIndex._prepare([3.0, 1.0], ["c", "a"])
        assert list(keys) == [1.0, 3.0]
        assert values == ["a", "c"]

    def test_rejects_mismatched_values(self):
        with pytest.raises(ValueError):
            OneDimIndex._prepare([1.0, 2.0], ["only-one"])

    def test_rejects_non_finite_keys(self):
        with pytest.raises(ValueError):
            OneDimIndex._prepare([1.0, np.nan], None)
        with pytest.raises(ValueError):
            OneDimIndex._prepare([1.0, np.inf], None)

    def test_rejects_2d_keys(self):
        with pytest.raises(ValueError):
            OneDimIndex._prepare(np.zeros((3, 2)), None)

    def test_empty_keys_allowed(self):
        keys, values = OneDimIndex._prepare([], None)
        assert keys.size == 0
        assert values == []


class TestNotBuilt:
    def test_query_before_build_raises(self):
        index = SortedArrayIndex()
        with pytest.raises(NotBuiltError):
            index.lookup(1.0)

    def test_range_before_build_raises(self):
        index = SortedArrayIndex()
        with pytest.raises(NotBuiltError):
            index.range_query(0.0, 1.0)

    def test_insert_before_build_raises(self):
        index = SortedArrayIndex()
        with pytest.raises(NotBuiltError):
            index.insert(1.0)


class TestBuildReturnsSelf:
    def test_fluent_construction(self):
        index = SortedArrayIndex().build([1.0, 2.0, 3.0])
        assert index.lookup(2.0) == 1

    def test_contains(self):
        index = SortedArrayIndex().build([1.0, 2.0])
        assert index.contains(1.0)
        assert not index.contains(9.0)


class TestIndexStatsMerge:
    def test_merge_sums_every_counter(self):
        a = IndexStats(comparisons=3, keys_scanned=10, nodes_visited=2,
                       model_predictions=5, corrections=1,
                       build_seconds=0.5, size_bytes=100)
        b = IndexStats(comparisons=4, keys_scanned=1, nodes_visited=7,
                       model_predictions=2, corrections=9,
                       build_seconds=1.5, size_bytes=50)
        merged = a.merge(b)
        assert merged.comparisons == 7
        assert merged.keys_scanned == 11
        assert merged.nodes_visited == 9
        assert merged.model_predictions == 7
        assert merged.corrections == 10
        assert merged.build_seconds == 2.0
        assert merged.size_bytes == 150

    def test_merge_is_commutative_on_snapshots(self):
        a = IndexStats(comparisons=3, build_seconds=0.25, size_bytes=64)
        b = IndexStats(keys_scanned=8, corrections=2, size_bytes=32)
        assert a.merge(b).snapshot() == b.merge(a).snapshot()

    def test_merge_does_not_mutate_operands(self):
        a = IndexStats(comparisons=1)
        b = IndexStats(comparisons=2)
        a.merge(b)
        assert a.comparisons == 1
        assert b.comparisons == 2

    def test_merge_identity_snapshot_round_trip(self):
        a = IndexStats(comparisons=5, keys_scanned=3, build_seconds=0.1)
        merged = a.merge(IndexStats())
        assert merged.snapshot() == a.snapshot()

    def test_merge_combines_extra_annotations(self):
        a = IndexStats()
        a.extra["epsilon"] = 64
        b = IndexStats()
        b.extra["stages"] = 2
        merged = a.merge(b)
        assert merged.extra == {"epsilon": 64, "stages": 2}


class _CountingMultiDim(MultiDimIndex):
    """Minimal multi-d index counting _require_built invocations.

    ``range_query`` deliberately does not re-check the built flag, so the
    counter isolates the validations performed by the batch fallback
    itself.
    """

    def __init__(self):
        super().__init__()
        self.require_built_calls = 0

    def build(self, points, values=None):
        self._points = np.asarray(points, dtype=np.float64)
        self._values = list(values) if values is not None else list(range(len(self._points)))
        self._built = True
        return self

    def _require_built(self):
        self.require_built_calls += 1
        super()._require_built()

    def point_query(self, point):
        q = np.asarray(point, dtype=np.float64)
        for row, value in zip(self._points, self._values):
            if np.array_equal(row, q):
                return value
        return None

    def range_query(self, low, high):
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        out = []
        for row, value in zip(self._points, self._values):
            if np.all(row >= lo) and np.all(row <= hi):
                out.append((tuple(float(x) for x in row), value))
        return out


class TestRangeQueryBatchFallback:
    def test_validates_exactly_once_per_batch_call(self):
        index = _CountingMultiDim().build(np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]))
        lows = np.array([[0.0, 0.0], [1.5, 1.5], [2.5, 2.5], [9.0, 9.0]])
        highs = lows + 1.0
        index.require_built_calls = 0
        index.range_query_batch(lows, highs)
        assert index.require_built_calls == 1

    def test_matches_scalar_loop(self):
        index = _CountingMultiDim().build(np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]))
        lows = np.array([[0.0, 0.0], [1.5, 1.5], [9.0, 9.0]])
        highs = lows + 1.0
        batched = index.range_query_batch(lows, highs)
        assert batched == [index.range_query(lo, hi) for lo, hi in zip(lows, highs)]

    def test_rejects_mismatched_corner_shapes(self):
        index = _CountingMultiDim().build(np.array([[1.0, 1.0]]))
        with pytest.raises(ValueError):
            index.range_query_batch(np.zeros((2, 2)), np.zeros((3, 2)))
