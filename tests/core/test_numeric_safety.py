"""Tests for the float64-exactness guard and the runtime sanitizer.

``exact_float64`` is the sanctioned int -> float64 cast: it must pass
exactly-representable integers through bit-for-bit and refuse casts that
would merge distinct keys.  The sanitizer (``REPRO_SANITIZE=1``) is the
dynamic complement of the static RPR1xx rules, so its enable/disable
semantics and its checks are contracts of their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sanitize
from repro.core.numeric import FLOAT64_EXACT_BITS, FLOAT64_EXACT_MAX, exact_float64
from repro.core.sanitize import SanitizeError
from repro.curves.zorder import interleave_array
from repro.models.pla import segment_stream
from repro.multidim.zm_index import ZMIndex


class TestExactFloat64:
    def test_float_input_passes_through(self):
        arr = np.array([1.5, -2.25, 1e300])
        out = exact_float64(arr, what="keys")
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == np.float64

    def test_small_ints_cast_exactly(self):
        arr = np.array([0, 1, -5, 2**52], dtype=np.int64)
        out = exact_float64(arr, what="keys")
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out.astype(np.int64), arr)

    def test_boundary_value_is_exact(self):
        out = exact_float64(np.array([FLOAT64_EXACT_MAX], dtype=np.int64), what="keys")
        assert int(out[0]) == 2**FLOAT64_EXACT_BITS

    def test_representable_values_beyond_2_53_pass(self):
        # Even integers just past 2^53 are exactly representable.
        arr = np.array([2**53 + 2, 2**53 + 4, 2**54], dtype=np.int64)
        out = exact_float64(arr, what="keys")
        np.testing.assert_array_equal(out.astype(np.int64), arr)

    def test_unrepresentable_value_raises(self):
        with pytest.raises(ValueError, match="exact range"):
            exact_float64(np.array([2**53 + 1], dtype=np.int64), what="keys")

    def test_error_names_the_operand(self):
        with pytest.raises(ValueError, match="zm-index code keys"):
            exact_float64(np.array([2**53 + 1], dtype=np.int64),
                          what="zm-index code keys")

    def test_object_dtype_wide_ints_raise(self):
        arr = np.array([2**80 + 1], dtype=object)
        with pytest.raises(ValueError, match="exact range"):
            exact_float64(arr, what="keys")

    def test_object_dtype_safe_ints_pass(self):
        arr = np.array([3, 2**20], dtype=object)
        out = exact_float64(arr, what="keys")
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [3.0, float(2**20)])


class TestSanitizeToggle:
    def test_disabled_by_default_values(self, monkeypatch):
        for value in ("", "0", "false", "off", "no", "FALSE", " 0 "):
            monkeypatch.setenv(sanitize.ENV_VAR, value)
            assert not sanitize.enabled()
        monkeypatch.delenv(sanitize.ENV_VAR)
        assert not sanitize.enabled()

    def test_enabled_by_truthy_values(self, monkeypatch):
        for value in ("1", "true", "on", "yes"):
            monkeypatch.setenv(sanitize.ENV_VAR, value)
            assert sanitize.enabled()

    def test_check_raises_only_when_enabled(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_VAR, "0")
        sanitize.check(False, "ignored while disabled")
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        with pytest.raises(SanitizeError, match="boom"):
            sanitize.check(False, "boom")
        sanitize.check(True, "fine")


class TestSanitizeChecks:
    @pytest.fixture(autouse=True)
    def _enable(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_VAR, "1")

    def test_lattice_coords_in_range_pass(self):
        coords = np.array([[0, 1], [3, 2]], dtype=np.int64)
        sanitize.check_lattice_coords(coords, 2, what="test")

    def test_lattice_coords_too_large_raise(self):
        coords = np.array([[0, 4]], dtype=np.int64)  # 4 >= 2^2
        with pytest.raises(SanitizeError, match="test"):
            sanitize.check_lattice_coords(coords, 2, what="test")

    def test_lattice_coords_negative_raise(self):
        with pytest.raises(SanitizeError):
            sanitize.check_lattice_coords(np.array([[-1, 0]]), 4, what="test")

    def test_code_headroom_rejects_negative_codes(self):
        with pytest.raises(SanitizeError):
            sanitize.check_code_headroom(np.array([-1], dtype=np.int64), what="test")

    def test_code_headroom_skips_object_dtype(self):
        sanitize.check_code_headroom(np.array([2**70], dtype=object), what="test")


class TestSanitizeWiring:
    """End-to-end: the kernels actually consult the sanitizer."""

    def test_interleave_rejects_out_of_range_coords(self, monkeypatch):
        coords = np.array([[1 << 10, 0]], dtype=np.int64)  # needs 11 bits
        monkeypatch.setenv(sanitize.ENV_VAR, "0")
        interleave_array(coords, 8)  # silently truncates when disabled
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        with pytest.raises(SanitizeError, match="interleave_array"):
            interleave_array(coords, 8)

    def test_segment_stream_verifies_epsilon_bound(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        keys = np.sort(np.random.default_rng(7).uniform(0, 1e6, 500))
        segments = segment_stream(keys, 16.0)
        assert segments  # the built-in epsilon audit did not raise


class TestZMIndexKeyGuard:
    def test_wide_codes_are_refused_not_merged(self):
        rng = np.random.default_rng(11)
        points = rng.uniform(0, 1, (500, 3))
        index = ZMIndex(bits=20, epsilon=16)
        with pytest.raises(ValueError, match="exact range"):
            index.build(points)

    def test_in_budget_codes_still_build(self):
        rng = np.random.default_rng(12)
        points = rng.uniform(0, 1, (500, 2))
        index = ZMIndex(bits=16, epsilon=16).build(points)
        assert index.point_query(points[123]) == 123
