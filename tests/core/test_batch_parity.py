"""Batch/scalar parity: ``lookup_batch`` must equal a loop of ``lookup``.

The contract of the batch query API (the vectorized overrides in the hot
indexes as much as the generic loop fallback) is strict element-wise
equality with the scalar path — including misses, duplicate keys at the
array boundary, and empty indexes.  These tests enforce it for every
registered factory so a future vectorized override cannot silently
diverge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES

RNG = np.random.default_rng(7)

#: 1-d build keys with duplicate runs at both boundaries and in the middle.
KEYS_1D = np.sort(RNG.uniform(0.0, 1000.0, 400))
KEYS_1D[:3] = KEYS_1D[0]
KEYS_1D[-3:] = KEYS_1D[-1]
KEYS_1D[200:203] = KEYS_1D[200]

#: Queries covering hits, duplicated keys, misses inside and outside range.
QUERIES_1D = np.concatenate([
    KEYS_1D[[0, 1, 2, 199, 200, 201, 202, 397, 398, 399]],
    RNG.choice(KEYS_1D, 30),
    RNG.uniform(-50.0, 1050.0, 30),
    [KEYS_1D[0] - 1.0, KEYS_1D[-1] + 1.0],
])

POINTS_ND = RNG.uniform(0.0, 100.0, (250, 2))
# Duplicate coordinates: same point indexed twice (last value wins on some
# indexes, first on others — parity only requires batch == scalar).
POINTS_ND[40] = POINTS_ND[41]
POINTS_ND[120] = POINTS_ND[121]
QUERIES_ND = np.vstack([
    POINTS_ND[RNG.integers(0, POINTS_ND.shape[0], 30)],
    RNG.uniform(-10.0, 110.0, (15, 2)),
    POINTS_ND[[40, 41, 120, 121]],          # duplicate-coordinate probes
    RNG.uniform(-500.0, -400.0, (4, 2)),    # far out-of-domain
    np.repeat(POINTS_ND[[7]], 3, axis=0),   # repeated identical query
])

#: Range boxes: tight around data points, a whole-domain box, a
#: fully-outside box, and an inverted (lo > hi) box.
BOXES_ND = (
    np.vstack([
        POINTS_ND[:6] - 2.0,
        [[-10.0, -10.0]],
        [[200.0, 200.0]],
        [[50.0, 50.0]],
    ]),
    np.vstack([
        POINTS_ND[:6] + 2.0,
        [[110.0, 110.0]],
        [[210.0, 210.0]],
        [[40.0, 40.0]],  # inverted: hi < lo
    ]),
)


@pytest.mark.parametrize("name", sorted(ONE_DIM_FACTORIES))
class TestOneDimBatchParity:
    def test_lookup_batch_matches_scalar_loop(self, name):
        index = ONE_DIM_FACTORIES[name]().build(KEYS_1D)
        batch = index.lookup_batch(QUERIES_1D)
        scalar = [index.lookup(float(q)) for q in QUERIES_1D]
        assert batch.dtype == object
        assert batch.shape == (QUERIES_1D.size,)
        for i, (b, s) in enumerate(zip(batch, scalar)):
            assert b == s, f"{name}: query {QUERIES_1D[i]} -> batch {b!r}, scalar {s!r}"

    def test_contains_batch_matches_scalar(self, name):
        index = ONE_DIM_FACTORIES[name]().build(KEYS_1D)
        got = index.contains_batch(QUERIES_1D)
        expect = [index.contains(float(q)) for q in QUERIES_1D]
        assert got.dtype == bool
        assert list(got) == expect

    def test_empty_index_all_misses(self, name):
        index = ONE_DIM_FACTORIES[name]().build([])
        batch = index.lookup_batch(QUERIES_1D[:5])
        assert all(r is None for r in batch)
        assert index.lookup_batch([]).shape == (0,)

    def test_rejects_2d_query_array(self, name):
        index = ONE_DIM_FACTORIES[name]().build(KEYS_1D[:20])
        with pytest.raises(ValueError):
            index.lookup_batch(np.ones((3, 3)))


@pytest.mark.parametrize("name", sorted(MULTI_DIM_FACTORIES))
class TestMultiDimBatchParity:
    def test_point_query_batch_matches_scalar_loop(self, name):
        index = MULTI_DIM_FACTORIES[name]().build(POINTS_ND)
        batch = index.point_query_batch(QUERIES_ND)
        scalar = [index.point_query(q) for q in QUERIES_ND]
        assert batch.dtype == object
        assert batch.shape == (QUERIES_ND.shape[0],)
        for i, (b, s) in enumerate(zip(batch, scalar)):
            assert b == s, f"{name}: query {QUERIES_ND[i]} -> batch {b!r}, scalar {s!r}"

    def test_rejects_1d_query_array(self, name):
        index = MULTI_DIM_FACTORIES[name]().build(POINTS_ND)
        with pytest.raises(ValueError):
            index.point_query_batch(QUERIES_ND[0])

    def test_empty_batch_and_empty_index(self, name):
        index = MULTI_DIM_FACTORIES[name]().build(POINTS_ND)
        assert index.point_query_batch(np.empty((0, 2))).shape == (0,)
        empty = MULTI_DIM_FACTORIES[name]().build(np.empty((0, 2)))
        batch = empty.point_query_batch(QUERIES_ND[:5])
        assert all(r is None for r in batch)

    def test_out_of_domain_queries_all_miss(self, name):
        index = MULTI_DIM_FACTORIES[name]().build(POINTS_ND)
        far = np.vstack([
            RNG.uniform(-500.0, -400.0, (6, 2)),
            RNG.uniform(400.0, 500.0, (6, 2)),
        ])
        batch = index.point_query_batch(far)
        scalar = [index.point_query(q) for q in far]
        assert all(r is None for r in scalar)
        assert list(batch) == scalar

    def test_range_query_batch_matches_scalar_loop(self, name):
        index = MULTI_DIM_FACTORIES[name]().build(POINTS_ND)
        lows, highs = BOXES_ND
        batch = index.range_query_batch(lows, highs)
        assert len(batch) == lows.shape[0]
        for i in range(lows.shape[0]):
            scalar = index.range_query(lows[i], highs[i])
            assert batch[i] == scalar, (
                f"{name}: box {i} -> batch {batch[i]!r}, scalar {scalar!r}")

    def test_range_query_batch_rejects_mismatched_shapes(self, name):
        index = MULTI_DIM_FACTORIES[name]().build(POINTS_ND)
        with pytest.raises(ValueError):
            index.range_query_batch(np.zeros((3, 2)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            index.range_query_batch(np.zeros(2), np.zeros(2))


class TestVectorizedOverridesStayVectorized:
    """Guard: the hot indexes must not fall back to the scalar loop."""

    @pytest.mark.parametrize("name", ["binary-search", "rmi", "pgm", "radix-spline"])
    def test_override_defined_on_class(self, name):
        from repro.core.interfaces import OneDimIndex

        cls = type(ONE_DIM_FACTORIES[name]())
        assert cls.lookup_batch is not OneDimIndex.lookup_batch

    @pytest.mark.parametrize("name", ["rmi", "pgm", "radix-spline"])
    def test_batch_counters_aggregate(self, name):
        index = ONE_DIM_FACTORIES[name]().build(KEYS_1D)
        index.stats.reset_counters()
        index.lookup_batch(QUERIES_1D)
        assert index.stats.model_predictions >= QUERIES_1D.size
        assert index.stats.corrections > 0

    @pytest.mark.parametrize("name", ["zm-index", "flood", "grid", "lisa"])
    def test_multi_dim_point_override_defined_on_class(self, name):
        from repro.core.interfaces import MultiDimIndex

        cls = type(MULTI_DIM_FACTORIES[name]())
        assert cls.point_query_batch is not MultiDimIndex.point_query_batch

    @pytest.mark.parametrize("name", ["flood", "grid"])
    def test_multi_dim_range_override_defined_on_class(self, name):
        from repro.core.interfaces import MultiDimIndex

        cls = type(MULTI_DIM_FACTORIES[name]())
        assert cls.range_query_batch is not MultiDimIndex.range_query_batch
