"""Batch/scalar parity: ``lookup_batch`` must equal a loop of ``lookup``.

The contract of the batch query API (the vectorized overrides in the hot
indexes as much as the generic loop fallback) is strict element-wise
equality with the scalar path — including misses, duplicate keys at the
array boundary, and empty indexes.  These tests enforce it for every
registered factory so a future vectorized override cannot silently
diverge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES

RNG = np.random.default_rng(7)

#: 1-d build keys with duplicate runs at both boundaries and in the middle.
KEYS_1D = np.sort(RNG.uniform(0.0, 1000.0, 400))
KEYS_1D[:3] = KEYS_1D[0]
KEYS_1D[-3:] = KEYS_1D[-1]
KEYS_1D[200:203] = KEYS_1D[200]

#: Queries covering hits, duplicated keys, misses inside and outside range.
QUERIES_1D = np.concatenate([
    KEYS_1D[[0, 1, 2, 199, 200, 201, 202, 397, 398, 399]],
    RNG.choice(KEYS_1D, 30),
    RNG.uniform(-50.0, 1050.0, 30),
    [KEYS_1D[0] - 1.0, KEYS_1D[-1] + 1.0],
])

POINTS_ND = RNG.uniform(0.0, 100.0, (250, 2))
QUERIES_ND = np.vstack([
    POINTS_ND[RNG.integers(0, POINTS_ND.shape[0], 30)],
    RNG.uniform(-10.0, 110.0, (15, 2)),
])


@pytest.mark.parametrize("name", sorted(ONE_DIM_FACTORIES))
class TestOneDimBatchParity:
    def test_lookup_batch_matches_scalar_loop(self, name):
        index = ONE_DIM_FACTORIES[name]().build(KEYS_1D)
        batch = index.lookup_batch(QUERIES_1D)
        scalar = [index.lookup(float(q)) for q in QUERIES_1D]
        assert batch.dtype == object
        assert batch.shape == (QUERIES_1D.size,)
        for i, (b, s) in enumerate(zip(batch, scalar)):
            assert b == s, f"{name}: query {QUERIES_1D[i]} -> batch {b!r}, scalar {s!r}"

    def test_contains_batch_matches_scalar(self, name):
        index = ONE_DIM_FACTORIES[name]().build(KEYS_1D)
        got = index.contains_batch(QUERIES_1D)
        expect = [index.contains(float(q)) for q in QUERIES_1D]
        assert got.dtype == bool
        assert list(got) == expect

    def test_empty_index_all_misses(self, name):
        index = ONE_DIM_FACTORIES[name]().build([])
        batch = index.lookup_batch(QUERIES_1D[:5])
        assert all(r is None for r in batch)
        assert index.lookup_batch([]).shape == (0,)

    def test_rejects_2d_query_array(self, name):
        index = ONE_DIM_FACTORIES[name]().build(KEYS_1D[:20])
        with pytest.raises(ValueError):
            index.lookup_batch(np.ones((3, 3)))


@pytest.mark.parametrize("name", sorted(MULTI_DIM_FACTORIES))
class TestMultiDimBatchParity:
    def test_point_query_batch_matches_scalar_loop(self, name):
        index = MULTI_DIM_FACTORIES[name]().build(POINTS_ND)
        batch = index.point_query_batch(QUERIES_ND)
        scalar = [index.point_query(q) for q in QUERIES_ND]
        assert batch.dtype == object
        assert batch.shape == (QUERIES_ND.shape[0],)
        for i, (b, s) in enumerate(zip(batch, scalar)):
            assert b == s, f"{name}: query {QUERIES_ND[i]} -> batch {b!r}, scalar {s!r}"

    def test_rejects_1d_query_array(self, name):
        index = MULTI_DIM_FACTORIES[name]().build(POINTS_ND)
        with pytest.raises(ValueError):
            index.point_query_batch(QUERIES_ND[0])


class TestVectorizedOverridesStayVectorized:
    """Guard: the hot indexes must not fall back to the scalar loop."""

    @pytest.mark.parametrize("name", ["binary-search", "rmi", "pgm", "radix-spline"])
    def test_override_defined_on_class(self, name):
        from repro.core.interfaces import OneDimIndex

        cls = type(ONE_DIM_FACTORIES[name]())
        assert cls.lookup_batch is not OneDimIndex.lookup_batch

    @pytest.mark.parametrize("name", ["rmi", "pgm", "radix-spline"])
    def test_batch_counters_aggregate(self, name):
        index = ONE_DIM_FACTORIES[name]().build(KEYS_1D)
        index.stats.reset_counters()
        index.lookup_batch(QUERIES_1D)
        assert index.stats.model_predictions >= QUERIES_1D.size
        assert index.stats.corrections > 0
