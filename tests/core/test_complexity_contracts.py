"""Completeness of the per-method complexity contract table.

``repro.core.complexity.CONTRACTS`` is the single authority both
checkers consume — the RPR301 static cost model and the E22 scaling
witness.  These tests pin the table to the live code: every factory
class is declared, every declared qualname resolves, the declarations
agree with the survey registry's ``complexity=`` annotations, and the
paper's thesis (learned indexes stay sublinear) holds for every
non-baseline contract.
"""

from __future__ import annotations

import importlib

import pytest

from repro.bench import runner
from repro.core import interfaces, registry
from repro.core.complexity import (
    CONTRACTS,
    HOT_METHODS,
    ComplexityContract,
    contract_for,
    hot_method_for_family,
)
from repro.core.taxonomy import ComplexityClass

ALL_FACTORY_DICTS = {
    "ONE_DIM_FACTORIES": runner.ONE_DIM_FACTORIES,
    "MUTABLE_ONE_DIM_FACTORIES": runner.MUTABLE_ONE_DIM_FACTORIES,
    "MULTI_DIM_FACTORIES": runner.MULTI_DIM_FACTORIES,
    "MUTABLE_MULTI_DIM_FACTORIES": runner.MUTABLE_MULTI_DIM_FACTORIES,
    "FILTER_FACTORIES": runner.FILTER_FACTORIES,
}


def _qualname(obj: object) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def _factory_qualnames() -> dict[str, set[str]]:
    """dict-name -> set of class qualnames its factories construct."""
    out: dict[str, set[str]] = {}
    for dict_name, factories in ALL_FACTORY_DICTS.items():
        out[dict_name] = {_qualname(factory()) for factory in factories.values()}
    return out


def test_every_factory_class_declares_a_contract():
    missing = {
        f"{dict_name}: {qualname}"
        for dict_name, qualnames in _factory_qualnames().items()
        for qualname in qualnames
        if contract_for(qualname) is None
    }
    assert missing == set(), (
        f"factory classes without a CONTRACTS entry: {sorted(missing)}"
    )


def test_every_contract_qualname_resolves():
    for qualname in CONTRACTS:
        module_name, _, cls_name = qualname.rpartition(".")
        module = importlib.import_module(module_name)
        assert hasattr(module, cls_name), qualname


def test_contract_table_covers_exactly_the_live_surface():
    """CONTRACTS == factory classes ∪ registry ``implemented=`` classes.

    Exact equality both ways: a new factory cannot land without a
    declaration, and a declaration cannot outlive the class it bounds.
    """
    live: set[str] = set()
    for qualnames in _factory_qualnames().values():
        live |= qualnames
    for info in registry.REGISTRY:
        if info.implemented is not None:
            live.add(info.implemented)
    assert set(CONTRACTS) == live, (
        f"only in CONTRACTS: {sorted(set(CONTRACTS) - live)}; "
        f"only live: {sorted(live - set(CONTRACTS))}"
    )


def test_mutable_factories_declare_an_insert_bound():
    mutable = (
        _factory_qualnames()["MUTABLE_ONE_DIM_FACTORIES"]
        | _factory_qualnames()["MUTABLE_MULTI_DIM_FACTORIES"]
    )
    unbounded = {q for q in mutable if CONTRACTS[q].insert is None}
    assert unbounded == set(), (
        f"mutable classes without a declared insert bound: {sorted(unbounded)}"
    )


def test_learned_indexes_declare_sublinear_lookup():
    """The paper's thesis as a table invariant: only ``baseline=True``
    entries (traditional structures and deliberate scan controls) may
    declare an O(n) lookup."""
    linear_learned = {
        qualname
        for qualname, contract in CONTRACTS.items()
        if not contract.baseline and contract.lookup is ComplexityClass.LINEAR
    }
    assert linear_learned == set()


def test_registry_complexity_matches_contract_lookup():
    """``complexity=`` on every implemented survey entry equals the
    contract's lookup bound — one declaration, two views, no drift."""
    for info in registry.REGISTRY:
        if info.implemented is None:
            continue
        contract = contract_for(info.implemented)
        assert contract is not None, info.implemented
        assert info.complexity is contract.lookup, (
            f"{info.name}: registry says {info.complexity}, "
            f"contract says {contract.lookup}"
        )


def test_every_implemented_registry_entry_declares_complexity():
    undeclared = [
        info.name
        for info in registry.REGISTRY
        if info.implemented is not None and info.complexity is None
    ]
    assert undeclared == []


def test_hot_methods_exist_on_their_interfaces():
    families = {
        "OneDimIndex": interfaces.OneDimIndex,
        "MultiDimIndex": interfaces.MultiDimIndex,
        "MembershipFilter": interfaces.MembershipFilter,
    }
    assert set(HOT_METHODS) == set(families)
    for family, iface in families.items():
        assert hasattr(iface, hot_method_for_family(family))


def test_unknown_family_is_a_key_error():
    with pytest.raises(KeyError):
        hot_method_for_family("NoSuchFamily")


def test_contract_for_unknown_qualname_is_none():
    assert contract_for("repro.nowhere.Ghost") is None


def test_contracts_are_frozen():
    contract = next(iter(CONTRACTS.values()))
    assert isinstance(contract, ComplexityContract)
    with pytest.raises(AttributeError):
        contract.lookup = ComplexityClass.LINEAR
