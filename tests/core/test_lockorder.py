"""Runtime lock-order witness: inversion detection + static cross-check.

The witness must raise :class:`LockOrderError` on an injected inversion
from a *single* interleaving (no actual two-thread collision), stay
silent on the sanctioned increasing-rank protocol and RLock re-entry,
and — the cross-validation contract — every edge it observes while the
sanitized serving stack runs must already be present in the static lock
graph computed by ``repro.analysis.concurrency``.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core import lockorder, sanitize
from repro.core.lockorder import (
    LockOrderError,
    LockOrderGraph,
    TrackedCondition,
    TrackedLock,
    make_condition,
    make_lock,
    make_rlock,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def graph():
    """A private graph so tests never pollute the process-global one."""
    return LockOrderGraph()


def tracked(name, graph, rank=0, inner=None):
    return TrackedLock(inner or threading.Lock(), name, rank=rank, graph=graph)


class TestOrderGraph:
    def test_record_and_snapshot(self, graph):
        graph.record("A", "B", "t0")
        graph.record("B", "C", "t1")
        assert graph.snapshot() == {"A": ["B"], "B": ["C"]}
        assert graph.edge_notes() == {"A -> B": "t0", "B -> C": "t1"}

    def test_duplicate_edge_keeps_first_note(self, graph):
        graph.record("A", "B", "first")
        graph.record("A", "B", "second")
        assert graph.edge_notes() == {"A -> B": "first"}

    def test_cycle_edge_raises_with_provenance(self, graph):
        graph.record("A", "B", "leg one")
        graph.record("B", "C", "leg two")
        with pytest.raises(LockOrderError, match="A -> B -> C"):
            graph.record("C", "A", "closing leg")
        # The refused edge is not recorded.
        assert graph.snapshot() == {"A": ["B"], "B": ["C"]}

    def test_clear_forgets_edges(self, graph):
        graph.record("A", "B", "t")
        graph.clear()
        assert graph.snapshot() == {}


class TestTrackedLocks:
    def test_nested_acquisition_records_edge(self, graph):
        a, b = tracked("A", graph), tracked("B", graph)
        with a:
            with b:
                pass
        assert graph.snapshot() == {"A": ["B"]}

    def test_injected_inversion_raises_before_blocking(self, graph):
        """One thread establishing A->B then trying B->A raises, no hang."""
        a, b = tracked("A", graph), tracked("B", graph)
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError, match="lock-order inversion"):
                a.acquire()
        # The failed acquire left nothing on the held stack: A is free.
        with a:
            pass

    def test_cross_thread_inversion_detected_without_collision(self, graph):
        """Thread one runs A->B to completion; thread two's B->A still raises."""
        a, b = tracked("A", graph), tracked("B", graph)

        def leg_one():
            with a:
                with b:
                    pass

        t = threading.Thread(target=leg_one)
        t.start()
        t.join()

        caught: list[Exception] = []

        def leg_two():
            try:
                with b:
                    with a:
                        pass
            except LockOrderError as exc:
                caught.append(exc)

        t2 = threading.Thread(target=leg_two)
        t2.start()
        t2.join(timeout=10.0)
        assert not t2.is_alive()
        assert len(caught) == 1

    def test_increasing_rank_protocol_allowed(self, graph):
        shards = [tracked("S", graph, rank=i) for i in range(4)]
        with shards[0]:
            with shards[1]:
                with shards[3]:
                    pass
        # Same-group nesting records no group-level self-edge.
        assert graph.snapshot() == {}

    def test_decreasing_rank_raises(self, graph):
        shards = [tracked("S", graph, rank=i) for i in range(4)]
        with shards[2]:
            with pytest.raises(LockOrderError, match="same-group"):
                shards[1].acquire()

    def test_rlock_reentry_is_ignored(self, graph):
        lock = tracked("R", graph, inner=threading.RLock())
        with lock:
            with lock:
                pass
        assert graph.snapshot() == {}

    def test_condition_participates_in_ordering(self, graph):
        cond = TrackedCondition(threading.Condition(), "C", graph=graph)
        inner = tracked("L", graph)
        with cond:
            cond.notify_all()
            with inner:
                pass
        assert graph.snapshot() == {"C": ["L"]}


class TestFactories:
    def test_untracked_without_sanitizer(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        assert isinstance(make_lock("G"), type(threading.Lock()))
        assert isinstance(make_condition("G"), threading.Condition)

    def test_tracked_under_sanitizer(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        assert isinstance(make_lock("G"), TrackedLock)
        assert isinstance(make_rlock("G"), TrackedLock)
        assert isinstance(make_condition("G"), TrackedCondition)


class TestStaticRuntimeCrossValidation:
    """Every runtime-observed edge must exist in the static lock graph."""

    def test_serving_stack_edges_subset_of_static_graph(self, monkeypatch):
        from repro.analysis.concurrency import static_lock_graph
        from repro.analysis.engine import build_context
        from repro.bench.runner import ONE_DIM_FACTORIES
        from repro.serve.coalescer import Coalescer
        from repro.serve.requests import Op, Overloaded, Request
        from repro.serve.server import IndexServer
        from repro.serve.sharding import ShardedStore
        from repro.serve.stats import ServerStats

        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        lockorder.reset()
        data = np.sort(np.random.default_rng(7).uniform(0.0, 1e6, 512))
        try:
            # A normal sanitized workload must run to completion silently.
            server = IndexServer(ONE_DIM_FACTORIES["b+tree"], num_shards=2,
                                 max_batch=8, max_delay=0.001, cache_size=16)
            server.build(data)
            try:
                for key in data[:64]:
                    server.lookup(float(key))
                server.insert(float(data[0]) + 0.5, "v")
                futures = [
                    server.submit(Request(op=Op.LOOKUP, key=float(k)))
                    for k in data[64:128]
                ]
                for fut in futures:
                    fut.result(timeout=10.0)
            finally:
                server.close()

            # Force the one thread-backend nesting deterministically: with
            # the workers never started the queue cannot drain, so the
            # second submit sheds — record_shed() runs under the shard
            # condition, the Coalescer._conds -> ServerStats._lock edge.
            store = ShardedStore(ONE_DIM_FACTORIES["b+tree"], num_shards=1)
            store.build(data)
            stats = ServerStats(1)
            coalescer = Coalescer(store, stats, max_batch=4,
                                  max_delay=0.001, capacity=1)
            first = coalescer.submit(Request(op=Op.LOOKUP, key=float(data[0])))
            second = coalescer.submit(Request(op=Op.LOOKUP, key=float(data[0])))
            assert isinstance(second.result(timeout=5.0), Overloaded)
            coalescer.close()  # drains the queued request synchronously
            first.result(timeout=5.0)
            assert stats.shed == 1

            runtime_edges = {
                (src, dst)
                for src, dsts in lockorder.snapshot().items()
                for dst in dsts
            }
            assert ("Coalescer._conds", "ServerStats._lock") in runtime_edges

            ctx = build_context(REPO_ROOT, use_registry=False)
            static_edges = {
                (e["from"], e["to"]) for e in static_lock_graph(ctx)["edges"]
            }
            assert runtime_edges <= static_edges, (
                f"runtime edges {runtime_edges - static_edges} missing from "
                f"the static lock graph {static_edges}"
            )
        finally:
            lockorder.reset()
