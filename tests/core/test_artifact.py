"""Tests for the zero-copy memmap artifact store (repro.core.artifact)."""

import hashlib
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES
from repro.core.artifact import (
    ARTIFACT_VERSION,
    MANIFEST_NAME,
    ArtifactError,
    load_index_artifact,
    read_artifact,
    read_manifest,
    registry_name,
    save_index_artifact,
    write_artifact,
)
from repro.data import load_1d, load_nd

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


class Holder:
    """Module-level stand-in so index_from_state can re-import it."""


def _dir_digests(root: Path) -> dict[str, str]:
    """sha256 of every file under an artifact directory, by relative path."""
    return {
        str(p.relative_to(root)): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(root.rglob("*")) if p.is_file()
    }


class TestRoundTripParity:
    """Every registered factory survives save -> load in both modes."""

    @pytest.mark.parametrize("mmap_mode", ["r", None])
    @pytest.mark.parametrize("name", sorted(ONE_DIM_FACTORIES))
    def test_one_dim_parity(self, name, mmap_mode, tmp_path):
        keys = load_1d("lognormal", 600, seed=11)
        sk = np.sort(keys)
        original = ONE_DIM_FACTORIES[name]().build(keys)
        save_index_artifact(original, tmp_path / name)
        restored = load_index_artifact(tmp_path / name, mmap_mode=mmap_mode)
        for i in range(0, 600, 61):
            assert restored.lookup(float(sk[i])) == i
            assert restored.contains(float(sk[i]))
        assert restored.range_query(float(sk[30]), float(sk[60])) == \
            original.range_query(float(sk[30]), float(sk[60]))

    @pytest.mark.parametrize("mmap_mode", ["r", None])
    @pytest.mark.parametrize("name", sorted(MULTI_DIM_FACTORIES))
    def test_multi_dim_parity(self, name, mmap_mode, tmp_path):
        pts = load_nd("clusters", 400, seed=12)
        original = MULTI_DIM_FACTORIES[name]().build(pts)
        save_index_artifact(original, tmp_path / name)
        restored = load_index_artifact(tmp_path / name, mmap_mode=mmap_mode)
        for i in range(0, 400, 57):
            assert restored.point_query(pts[i]) == original.point_query(pts[i])
        lo, hi = pts.min(axis=0), pts.mean(axis=0)
        assert sorted(restored.range_query(lo, hi), key=repr) == \
            sorted(original.range_query(lo, hi), key=repr)
        assert restored.knn_query(pts.mean(axis=0), 5) == \
            original.knn_query(pts.mean(axis=0), 5)

    def test_save_load_methods_on_index(self, tmp_path):
        keys = load_1d("uniform", 300, seed=13)
        index = ONE_DIM_FACTORIES["rmi"]().build(keys)
        returned = index.save(tmp_path / "rmi")
        assert returned == tmp_path / "rmi"
        restored = type(index).load(tmp_path / "rmi")
        sk = np.sort(keys)
        assert restored.lookup(float(sk[7])) == 7


class TestManifest:
    def test_manifest_schema(self, tmp_path):
        keys = load_1d("uniform", 200, seed=14)
        index = ONE_DIM_FACTORIES["pgm"]().build(keys)
        root = save_index_artifact(index, tmp_path / "pgm")
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["format"] == "repro-index-artifact"
        assert manifest["format_version"] == ARTIFACT_VERSION
        assert manifest["class"]["qualname"].endswith("PGMIndex")
        assert manifest["class"]["registry"] == registry_name(
            f"{manifest['class']['module']}.{manifest['class']['qualname']}"
        )
        assert {"python", "numpy", "created_utc", "platform"} <= \
            set(manifest["environment"])
        for entry in manifest["arrays"]:
            assert {"file", "dtype", "shape", "order", "nbytes", "sha256"} <= \
                set(entry)
            target = root / entry["file"]
            assert target.stat().st_size == entry["nbytes"]
            assert hashlib.sha256(target.read_bytes()).hexdigest() == \
                entry["sha256"]
        payload = root / manifest["payload"]["file"]
        assert hashlib.sha256(payload.read_bytes()).hexdigest() == \
            manifest["payload"]["sha256"]

    def test_registry_name_resolution(self):
        assert registry_name("repro.onedim.rmi.RMIIndex") == "RMI"
        assert registry_name("no.such.module.Nothing") is None


class TestRejection:
    """Corruption, truncation, and version skew all fail closed."""

    @pytest.fixture()
    def artifact(self, tmp_path):
        keys = load_1d("uniform", 300, seed=15)
        index = ONE_DIM_FACTORIES["rmi"]().build(keys)
        return save_index_artifact(index, tmp_path / "rmi")

    def test_corrupt_array_file_rejected(self, artifact):
        manifest = json.loads((artifact / MANIFEST_NAME).read_text())
        target = artifact / manifest["arrays"][0]["file"]
        blob = bytearray(target.read_bytes())
        blob[0] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="corrupt file"):
            read_artifact(artifact)

    def test_corrupt_payload_rejected_before_unpickling(self, artifact):
        target = artifact / "payload.pkl"
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="corrupt file"):
            read_artifact(artifact)

    def test_truncated_array_file_rejected(self, artifact):
        manifest = json.loads((artifact / MANIFEST_NAME).read_text())
        target = artifact / manifest["arrays"][0]["file"]
        target.write_bytes(target.read_bytes()[:-8])
        with pytest.raises(ArtifactError, match="truncated"):
            read_artifact(artifact)

    def test_missing_array_file_rejected(self, artifact):
        manifest = json.loads((artifact / MANIFEST_NAME).read_text())
        (artifact / manifest["arrays"][0]["file"]).unlink()
        with pytest.raises(ArtifactError, match="missing"):
            read_artifact(artifact)

    def test_truncated_manifest_rejected(self, artifact):
        manifest = json.loads((artifact / MANIFEST_NAME).read_text())
        del manifest["payload"]
        (artifact / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="truncated manifest"):
            read_manifest(artifact)

    def test_unparseable_manifest_rejected(self, artifact):
        (artifact / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ArtifactError):
            read_manifest(artifact)

    def test_future_version_rejected(self, artifact):
        manifest = json.loads((artifact / MANIFEST_NAME).read_text())
        manifest["format_version"] = ARTIFACT_VERSION + 1
        (artifact / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="newer than supported"):
            read_manifest(artifact)

    def test_wrong_format_discriminator_rejected(self, artifact):
        manifest = json.loads((artifact / MANIFEST_NAME).read_text())
        manifest["format"] = "something-else"
        (artifact / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="not a .*artifact"):
            read_manifest(artifact)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ArtifactError):
            read_manifest(tmp_path / "nowhere")

    def test_invalid_mmap_mode_rejected(self, artifact):
        with pytest.raises(ArtifactError, match="mmap_mode"):
            read_artifact(artifact, mmap_mode="r+")


class TestMemmapDiscipline:
    """mmap-loaded indexes serve without mutating their backing files."""

    def test_readonly_views_and_pristine_files(self, tmp_path):
        keys = load_1d("uniform", 500, seed=16)
        index = ONE_DIM_FACTORIES["pgm"]().build(keys)
        root = save_index_artifact(index, tmp_path / "pgm")
        before = _dir_digests(root)
        view = load_index_artifact(root, mmap_mode="r")
        state = read_artifact(root, mmap_mode="r")
        for arr in state.arrays:
            if arr.size:
                assert not arr.flags.writeable
        sk = np.sort(keys)
        for i in range(0, 500, 41):
            assert view.lookup(float(sk[i])) == i
        view.range_query(float(sk[5]), float(sk[50]))
        assert _dir_digests(root) == before

    def test_mutable_index_writes_leave_backing_file_pristine(self, tmp_path):
        keys = load_1d("uniform", 500, seed=17)
        index = ONE_DIM_FACTORIES["alex"]().build(keys)
        root = save_index_artifact(index, tmp_path / "alex")
        before = _dir_digests(root)
        view = load_index_artifact(root, mmap_mode="r")
        view.insert(-1.5, "fresh")
        assert view.lookup(-1.5) == "fresh"
        assert view.delete(-1.5)
        sk = np.sort(keys)
        assert view.lookup(float(sk[3])) == 3
        assert _dir_digests(root) == before

    def test_thaw_copies_readonly_arrays(self, tmp_path):
        keys = load_1d("uniform", 200, seed=18)
        index = ONE_DIM_FACTORIES["rmi"]().build(keys)
        root = save_index_artifact(index, tmp_path / "rmi")
        view = load_index_artifact(root, mmap_mode="r")
        frozen = [
            name for name, val in vars(view).items()
            if isinstance(val, np.ndarray) and val.size and not val.flags.writeable
        ]
        assert frozen  # the memmap path must actually produce frozen arrays
        target = frozen[0]
        view._thaw(target)
        thawed = getattr(view, target)
        assert thawed.flags.writeable
        assert isinstance(thawed, np.ndarray)
        # _thaw on an already-writable attribute is a no-op.
        view._thaw(target)
        assert getattr(view, target) is thawed

    def test_eager_mode_loads_writable_private_arrays(self, tmp_path):
        keys = load_1d("uniform", 200, seed=19)
        index = ONE_DIM_FACTORIES["pgm"]().build(keys)
        root = save_index_artifact(index, tmp_path / "pgm")
        state = read_artifact(root, mmap_mode=None)
        for arr in state.arrays:
            assert arr.flags.writeable
            assert not isinstance(arr, np.memmap)


class TestCrossProcess:
    def test_artifact_loads_in_fresh_process(self, tmp_path):
        keys = load_1d("uniform", 400, seed=20)
        index = ONE_DIM_FACTORIES["rmi"]().build(keys)
        root = save_index_artifact(index, tmp_path / "rmi")
        sk = np.sort(keys)
        script = (
            "import sys\n"
            f"sys.path.insert(0, {str(REPO_SRC)!r})\n"
            "from repro.core.artifact import load_index_artifact\n"
            f"view = load_index_artifact({str(root)!r}, mmap_mode='r')\n"
            f"print(view.lookup({float(sk[9])!r}))\n"
        )
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "9"


class TestWriteArtifact:
    def test_aliased_arrays_stored_once(self, tmp_path):
        shared = np.arange(64, dtype=np.float64)
        obj = Holder()
        obj.first = shared
        obj.second = shared  # alias: must not be duplicated on disk
        obj.tag = "aliased"
        from repro.core.state import export_index_state

        root = write_artifact(export_index_state(obj), tmp_path / "alias")
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert len(manifest["arrays"]) == 1
        state = read_artifact(root, mmap_mode=None)
        from repro.core.state import index_from_state

        back = index_from_state(state)
        assert back.first is back.second
        assert back.tag == "aliased"

    def test_big_endian_arrays_written_little_endian(self, tmp_path):
        obj = Holder()
        obj.data = np.arange(16, dtype=">f8")
        from repro.core.state import export_index_state

        root = write_artifact(export_index_state(obj), tmp_path / "be")
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["arrays"][0]["dtype"] == "<f8"
        state = read_artifact(root, mmap_mode="r")
        np.testing.assert_array_equal(np.asarray(state.arrays[0]),
                                      np.arange(16, dtype="<f8"))
