"""Tests for the generated paper artifacts (Figures 1-3, §5.6 summary)."""

from repro.core.registry import REGISTRY, get
from repro.core.spectrum import render_spectrum, spectrum_buckets
from repro.core.summary import (
    ml_technique_histogram,
    query_support_rows,
    render_ml_summary,
    render_query_summary,
)
from repro.core.taxonomy import Dimensionality, MLTechnique, QueryType, Spectrum
from repro.core.timeline import descendants, render_timeline, roots, timeline_rows
from repro.core.tree_render import empty_branches, render_taxonomy, taxonomy_counts


class TestFigure1Spectrum:
    def test_four_buckets(self):
        buckets = spectrum_buckets()
        assert len(buckets) == 4
        assert sum(b.count for b in buckets) == len(REGISTRY)

    def test_rmi_is_pure_one_dimensional(self):
        buckets = {(b.dimensionality, b.spectrum): b for b in spectrum_buckets()}
        bucket = buckets[(Dimensionality.ONE_DIMENSIONAL, Spectrum.PURE)]
        assert "RMI" in bucket.members

    def test_render_mentions_both_poles(self):
        text = render_spectrum()
        assert "pure" in text
        assert "hybrid" in text
        assert "One-dimensional" in text
        assert "Multi-dimensional" in text

    def test_render_lists_hybrid_components(self):
        text = render_spectrum()
        assert "B-tree" in text
        assert "R-tree" in text
        assert "Bloom filter" in text


class TestFigure2Taxonomy:
    def test_counts_cover_registry(self):
        counts = taxonomy_counts()
        assert sum(counts.values()) == len(REGISTRY)

    def test_render_marks_assigned_names(self):
        text = render_taxonomy()
        assert "^" in text  # wedge convention
        # Google-LI is a survey-assigned name.
        assert "Google-LI^" in text

    def test_render_marks_concurrency(self):
        text = render_taxonomy()
        assert "XIndex*" in text

    def test_open_branches_reported(self):
        # The survey notes some taxonomy branches have no papers yet; the
        # function must at least run and return a list (possibly empty).
        branches = empty_branches()
        assert isinstance(branches, list)

    def test_render_contains_all_top_level_classes(self):
        text = render_taxonomy()
        assert "immutable" in text
        assert "mutable" in text
        assert "delta-buffer" in text
        assert "in-place" in text


class TestFigure3Timeline:
    def test_rows_are_chronological(self):
        rows = timeline_rows()
        years = [r.year for r in rows]
        assert years == sorted(years)

    def test_2018_row_contains_rmi(self):
        rows = {r.year: r for r in timeline_rows()}
        names = {e.name for e in rows[2018].entries}
        assert "RMI" in names

    def test_render_uses_dimension_markers(self):
        text = render_timeline()
        assert "[]" in text  # one-dimensional marker
        assert "<>" in text  # multi-dimensional marker

    def test_roots_include_rmi(self):
        assert "RMI" in roots()

    def test_descendants_of_flood(self):
        assert "Tsunami" in descendants("Flood")


class TestSummaryTables:
    def test_linear_models_dominate(self):
        counts = ml_technique_histogram()
        linear_family = counts.get(MLTechnique.LINEAR, 0) + counts.get(
            MLTechnique.PIECEWISE_LINEAR, 0
        )
        nn = counts.get(MLTechnique.NEURAL_NETWORK, 0)
        # Survey §6.2: simple models are preferred whenever possible.
        assert linear_family > nn

    def test_query_rows_cover_multi_dim_indexes(self):
        rows = query_support_rows()
        assert len(rows) >= 40
        names = {name for name, _ in rows}
        assert "Flood" in names and "LISA" in names

    def test_point_support_is_common_join_is_rare(self):
        rows = query_support_rows()
        point = sum(1 for _, s in rows if s[QueryType.POINT])
        join = sum(1 for _, s in rows if s[QueryType.JOIN])
        assert point > join

    def test_render_ml_summary_sections(self):
        text = render_ml_summary()
        assert "One-dimensional" in text
        assert "Multi-dimensional" in text

    def test_render_query_summary_has_all_columns(self):
        text = render_query_summary()
        for col in ("point", "range", "kNN", "join"):
            assert col in text

    def test_knn_supported_by_spatial_indexes(self):
        assert QueryType.KNN in get("LISA").queries
        assert QueryType.KNN in get("ML-index").queries
