"""Shared fixtures: small deterministic datasets and index factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_1d, load_nd


@pytest.fixture(scope="session")
def uniform_keys() -> np.ndarray:
    return load_1d("uniform", 5000, seed=1)


@pytest.fixture(scope="session")
def lognormal_keys() -> np.ndarray:
    return load_1d("lognormal", 5000, seed=2)


@pytest.fixture(scope="session")
def hard_keys() -> np.ndarray:
    """Heavy-tailed keys (the fb analogue): the adversarial 1-d case."""
    return load_1d("fb", 5000, seed=3)


@pytest.fixture(scope="session")
def uniform_points() -> np.ndarray:
    return load_nd("uniform", 3000, seed=1)


@pytest.fixture(scope="session")
def clustered_points() -> np.ndarray:
    return load_nd("clusters", 3000, seed=2)


def brute_force_range_1d(keys: np.ndarray, low: float, high: float) -> list[int]:
    """Oracle: sorted positions of keys in [low, high]."""
    sk = np.sort(keys)
    return [int(i) for i in np.nonzero((sk >= low) & (sk <= high))[0]]


def brute_force_range_nd(points: np.ndarray, lo, hi) -> list[int]:
    """Oracle: row ids of points inside the closed box [lo, hi]."""
    mask = np.all((points >= np.asarray(lo)) & (points <= np.asarray(hi)), axis=1)
    return [int(i) for i in np.nonzero(mask)[0]]


def brute_force_knn(points: np.ndarray, q, k: int) -> set[int]:
    """Oracle: row ids of the k nearest neighbours of q."""
    d = np.sum((points - np.asarray(q)) ** 2, axis=1)
    return {int(i) for i in np.argsort(d, kind="stable")[:k]}
