"""Tests for the 1-d baseline structures, parameterised over all of them."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BPlusTreeIndex,
    HashIndex,
    LSMTreeIndex,
    SkipListIndex,
    SortedArrayIndex,
)

FACTORIES = {
    "sorted-array": SortedArrayIndex,
    "b+tree": BPlusTreeIndex,
    "skiplist": SkipListIndex,
    "hash": HashIndex,
    "lsm": lambda: LSMTreeIndex(memtable_limit=128, max_runs=3),
}


@pytest.fixture(params=list(FACTORIES), ids=list(FACTORIES))
def factory(request):
    return FACTORIES[request.param]


class TestBaselineContract:
    def test_build_and_lookup_all_keys(self, factory, uniform_keys):
        index = factory().build(uniform_keys)
        sk = np.sort(uniform_keys)
        for i in range(0, sk.size, 271):
            assert index.lookup(float(sk[i])) == i

    def test_negative_lookup(self, factory, uniform_keys):
        index = factory().build(uniform_keys)
        assert index.lookup(-1e18) is None
        assert index.lookup(1e18) is None

    def test_range_query_matches_oracle(self, factory, uniform_keys):
        index = factory().build(uniform_keys)
        sk = np.sort(uniform_keys)
        result = index.range_query(float(sk[100]), float(sk[200]))
        assert [v for _, v in result] == list(range(100, 201))
        assert [k for k, _ in result] == [float(k) for k in sk[100:201]]

    def test_empty_range(self, factory, uniform_keys):
        index = factory().build(uniform_keys)
        assert index.range_query(5.0, 4.0) == []

    def test_insert_then_lookup(self, factory, uniform_keys):
        index = factory().build(uniform_keys)
        index.insert(-123.5, "payload")
        assert index.lookup(-123.5) == "payload"

    def test_insert_replaces_value(self, factory, uniform_keys):
        index = factory().build(uniform_keys)
        index.insert(7.25, "a")
        index.insert(7.25, "b")
        assert index.lookup(7.25) == "b"

    def test_delete(self, factory, uniform_keys):
        index = factory().build(uniform_keys)
        sk = np.sort(uniform_keys)
        assert index.delete(float(sk[10]))
        assert index.lookup(float(sk[10])) is None
        assert not index.delete(float(sk[10]))

    def test_len_tracks_mutations(self, factory):
        index = factory().build([1.0, 2.0, 3.0])
        assert len(index) == 3
        index.insert(4.0)
        assert len(index) == 4
        index.delete(1.0)
        assert len(index) == 3

    def test_build_empty(self, factory):
        index = factory().build([])
        assert index.lookup(1.0) is None
        assert index.range_query(0.0, 1.0) == []

    def test_build_single_key(self, factory):
        index = factory().build([42.0])
        assert index.lookup(42.0) == 0
        assert index.range_query(0.0, 100.0) == [(42.0, 0)]

    # The factory fixture is a stateless constructor, so sharing it across
    # generated examples is safe.
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        keys=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                      max_size=60, unique=True),
        probe=st.floats(-1e6, 1e6, allow_nan=False),
    )
    def test_property_lookup_matches_dict(self, factory, keys, probe):
        index = factory().build(keys)
        oracle = {k: i for i, k in enumerate(sorted(keys))}
        assert index.lookup(probe) == oracle.get(probe)


class TestBPlusTreeSpecific:
    def test_bulk_load_exhaustive(self):
        keys = np.sort(np.random.default_rng(0).uniform(0, 1e9, 3000))
        tree = BPlusTreeIndex(fanout=16).build(keys)
        assert all(tree.lookup(float(k)) == i for i, k in enumerate(keys))

    def test_height_grows_logarithmically(self):
        small = BPlusTreeIndex(fanout=8).build(np.arange(10.0))
        big = BPlusTreeIndex(fanout=8).build(np.arange(5000.0))
        assert big.height > small.height
        assert big.height <= 6

    def test_splits_keep_order(self):
        tree = BPlusTreeIndex(fanout=4).build([])
        rng = np.random.default_rng(1)
        keys = rng.permutation(500).astype(float)
        for k in keys:
            tree.insert(float(k), int(k))
        items = list(tree.items())
        assert [k for k, _ in items] == sorted(k for k in keys)

    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            BPlusTreeIndex(fanout=2)

    def test_iteration_via_leaf_chain(self):
        tree = BPlusTreeIndex(fanout=8).build(np.arange(100.0))
        assert [k for k, _ in tree.items()] == list(np.arange(100.0))


class TestSkipListSpecific:
    def test_deterministic_given_seed(self):
        a = SkipListIndex(seed=3).build(np.arange(100.0))
        b = SkipListIndex(seed=3).build(np.arange(100.0))
        assert list(a.items()) == list(b.items())

    def test_items_sorted_after_random_inserts(self):
        index = SkipListIndex().build([])
        rng = np.random.default_rng(2)
        for k in rng.permutation(300).astype(float):
            index.insert(float(k))
        keys = [k for k, _ in index.items()]
        assert keys == sorted(keys)


class TestLSMSpecific:
    def test_memtable_flush_creates_runs(self):
        index = LSMTreeIndex(memtable_limit=10, max_runs=100).build([])
        for i in range(35):
            index.insert(float(i), i)
        assert index.num_runs == 3

    def test_compaction_caps_runs(self):
        index = LSMTreeIndex(memtable_limit=10, max_runs=2).build([])
        for i in range(100):
            index.insert(float(i), i)
        assert index.num_runs <= 3

    def test_newer_run_wins(self):
        index = LSMTreeIndex(memtable_limit=4, max_runs=100).build([])
        index.insert(1.0, "old")
        index.flush()
        index.insert(1.0, "new")
        index.flush()
        assert index.lookup(1.0) == "new"

    def test_tombstone_survives_compaction(self):
        index = LSMTreeIndex(memtable_limit=4, max_runs=2).build(np.arange(20.0))
        index.delete(5.0)
        for i in range(100, 140):
            index.insert(float(i), i)
        assert index.lookup(5.0) is None

    def test_range_merges_runs_and_memtable(self):
        index = LSMTreeIndex(memtable_limit=5, max_runs=100).build([])
        for i in range(12):
            index.insert(float(i), i)
        result = index.range_query(3.0, 8.0)
        assert [k for k, _ in result] == [3.0, 4.0, 5.0, 6.0, 7.0, 8.0]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LSMTreeIndex(memtable_limit=0)
        with pytest.raises(ValueError):
            LSMTreeIndex(max_runs=0)
