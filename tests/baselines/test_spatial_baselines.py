"""Tests for the spatial baseline structures (R-tree, KD-tree, quadtree, grid)."""

import numpy as np
import pytest

from repro.baselines import GridIndex, KDTreeIndex, QuadTreeIndex, RTreeIndex
from tests.conftest import brute_force_knn, brute_force_range_nd

FACTORIES = {
    "r-tree": lambda: RTreeIndex(max_entries=16),
    "kd-tree": KDTreeIndex,
    "quadtree": lambda: QuadTreeIndex(capacity=8),
    "grid": lambda: GridIndex(cells_per_dim=8),
}


@pytest.fixture(params=list(FACTORIES), ids=list(FACTORIES))
def factory(request):
    return FACTORIES[request.param]


class TestSpatialContract:
    def test_point_query_finds_every_point(self, factory, clustered_points):
        index = factory().build(clustered_points)
        for i in range(0, clustered_points.shape[0], 173):
            assert index.point_query(clustered_points[i]) == i

    def test_point_query_misses_absent(self, factory, clustered_points):
        index = factory().build(clustered_points)
        assert index.point_query([1e9, 1e9]) is None

    def test_range_matches_brute_force(self, factory, clustered_points):
        index = factory().build(clustered_points)
        rng = np.random.default_rng(0)
        for _ in range(5):
            centre = clustered_points[rng.integers(0, clustered_points.shape[0])]
            lo = centre - 40
            hi = centre + 40
            got = sorted(v for _, v in index.range_query(lo, hi))
            assert got == brute_force_range_nd(clustered_points, lo, hi)

    def test_range_with_no_hits(self, factory, clustered_points):
        index = factory().build(clustered_points)
        assert index.range_query([1e8, 1e8], [1e8 + 1, 1e8 + 1]) == []

    def test_knn_matches_brute_force(self, factory, clustered_points):
        index = factory().build(clustered_points)
        rng = np.random.default_rng(1)
        for _ in range(5):
            q = clustered_points[rng.integers(0, clustered_points.shape[0])] + 0.5
            got = {v for _, v in index.knn_query(q, 7)}
            assert got == brute_force_knn(clustered_points, q, 7)

    def test_knn_k_zero(self, factory, clustered_points):
        index = factory().build(clustered_points)
        assert index.knn_query([0.0, 0.0], 0) == []

    def test_knn_k_exceeds_size(self, factory):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        index = factory().build(pts)
        assert len(index.knn_query([0.0, 0.0], 10)) == 3

    def test_insert_and_delete(self, factory, clustered_points):
        index = factory().build(clustered_points)
        index.insert([-500.0, -500.0], "new")
        assert index.point_query([-500.0, -500.0]) == "new"
        assert index.delete([-500.0, -500.0])
        assert index.point_query([-500.0, -500.0]) is None
        assert not index.delete([-500.0, -500.0])

    def test_insert_replaces(self, factory, clustered_points):
        index = factory().build(clustered_points)
        p = clustered_points[0]
        index.insert(p, "replaced")
        assert index.point_query(p) == "replaced"
        assert len(index) == clustered_points.shape[0]

    def test_len(self, factory, clustered_points):
        index = factory().build(clustered_points)
        assert len(index) == clustered_points.shape[0]

    def test_empty_build(self, factory):
        index = factory().build(np.empty((0, 2)))
        assert index.point_query([1.0, 1.0]) is None
        assert index.range_query([0, 0], [1, 1]) == []


class TestRTreeSpecific:
    def test_str_packing_produces_bounded_nodes(self, uniform_points):
        tree = RTreeIndex(max_entries=16).build(uniform_points)
        stack = [tree._root]
        while stack:
            node = stack.pop()
            assert len(node.entries) <= 16
            if not node.leaf:
                stack.extend(node.entries)

    def test_mbrs_contain_children(self, uniform_points):
        tree = RTreeIndex(max_entries=16).build(uniform_points)
        stack = [tree._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for p, _ in node.entries:
                    assert np.all(p >= node.mbr_lo) and np.all(p <= node.mbr_hi)
            else:
                for child in node.entries:
                    assert np.all(child.mbr_lo >= node.mbr_lo)
                    assert np.all(child.mbr_hi <= node.mbr_hi)
                    stack.append(child)

    def test_guttman_inserts_keep_invariants(self):
        tree = RTreeIndex(max_entries=8).build(np.empty((0, 2)))
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 100, (300, 2))
        for i, p in enumerate(pts):
            tree.insert(p, i)
        for i in range(0, 300, 17):
            assert tree.point_query(pts[i]) == i
        got = sorted(v for _, v in tree.range_query([20, 20], [60, 60]))
        assert got == brute_force_range_nd(pts, [20, 20], [60, 60])

    def test_three_dimensional_points(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 10, (500, 3))
        tree = RTreeIndex().build(pts)
        assert tree.point_query(pts[123]) == 123
        got = sorted(v for _, v in tree.range_query([2, 2, 2], [5, 5, 5]))
        assert got == brute_force_range_nd(pts, [2, 2, 2], [5, 5, 5])

    def test_rejects_tiny_node_capacity(self):
        with pytest.raises(ValueError):
            RTreeIndex(max_entries=2)


class TestQuadTreeSpecific:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            QuadTreeIndex().build(np.zeros((5, 3)))

    def test_root_grows_for_outside_inserts(self):
        tree = QuadTreeIndex().build(np.array([[0.0, 0.0], [1.0, 1.0]]))
        tree.insert([1000.0, 1000.0], "far")
        assert tree.point_query([1000.0, 1000.0]) == "far"
        assert tree.point_query([0.0, 0.0]) == 0

    def test_duplicate_heavy_data_respects_max_depth(self):
        pts = np.tile(np.array([[5.0, 5.0]]), (100, 1)) + np.random.default_rng(5).normal(0, 1e-12, (100, 2))
        tree = QuadTreeIndex(capacity=4, max_depth=6).build(pts)
        assert len(tree) == 100


class TestGridSpecific:
    def test_cell_count_bounded(self, uniform_points):
        grid = GridIndex(cells_per_dim=4).build(uniform_points)
        assert grid.stats.extra["cells"] <= 16

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            GridIndex(cells_per_dim=0)

    def test_out_of_bounds_queries(self, uniform_points):
        grid = GridIndex().build(uniform_points)
        lo = uniform_points.min(axis=0) - 100
        hi = uniform_points.max(axis=0) + 100
        assert len(grid.range_query(lo, hi)) == uniform_points.shape[0]


class TestKDTreeSpecific:
    def test_handles_equal_axis_values(self):
        pts = np.array([[1.0, 2.0], [1.0, 5.0], [1.0, 9.0], [2.0, 1.0]])
        tree = KDTreeIndex().build(pts)
        for i, p in enumerate(pts):
            assert tree.point_query(p) == i

    def test_tombstone_delete_keeps_subtree_reachable(self):
        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 10, (200, 2))
        tree = KDTreeIndex().build(pts)
        assert tree.delete(pts[50])
        assert tree.point_query(pts[50]) is None
        # Other points remain reachable.
        assert all(tree.point_query(pts[i]) == i for i in range(200) if i != 50)

    def test_reinsert_after_delete(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0]])
        tree = KDTreeIndex().build(pts)
        tree.delete([1.0, 1.0])
        tree.insert([1.0, 1.0], "back")
        assert tree.point_query([1.0, 1.0]) == "back"
        assert len(tree) == 2
