"""Tests for the standard Bloom filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bloom import BloomFilter, optimal_bits, optimal_hashes


class TestSizing:
    def test_optimal_bits_grows_with_n(self):
        assert optimal_bits(2000, 0.01) > optimal_bits(1000, 0.01)

    def test_optimal_bits_grows_with_tighter_fpr(self):
        assert optimal_bits(1000, 0.001) > optimal_bits(1000, 0.01)

    def test_ten_bits_per_key_for_one_percent(self):
        # Classic result: ~9.6 bits/key for 1% FPR.
        bits = optimal_bits(10000, 0.01)
        assert 9.0 <= bits / 10000 <= 10.5

    def test_rejects_bad_fpr(self):
        with pytest.raises(ValueError):
            optimal_bits(100, 0.0)
        with pytest.raises(ValueError):
            optimal_bits(100, 1.5)

    def test_optimal_hashes_positive(self):
        assert optimal_hashes(10000, 1000) >= 1


class TestBloomFilter:
    def test_no_false_negatives(self):
        rng = np.random.default_rng(0)
        keys = rng.uniform(0, 1e9, 3000)
        flt = BloomFilter(target_fpr=0.01).build(keys)
        assert all(flt.might_contain(float(k)) for k in keys)

    def test_fpr_near_target(self):
        rng = np.random.default_rng(1)
        keys = rng.uniform(0, 1e9, 5000)
        flt = BloomFilter(target_fpr=0.02).build(keys)
        negatives = rng.uniform(2e9, 3e9, 5000)
        fpr = flt.false_positive_rate(negatives)
        assert fpr < 0.05

    def test_smaller_budget_higher_fpr(self):
        rng = np.random.default_rng(2)
        keys = rng.uniform(0, 1e9, 3000)
        negatives = rng.uniform(2e9, 3e9, 3000)
        tight = BloomFilter(bits=3000 * 16).build(keys)
        loose = BloomFilter(bits=3000 * 4).build(keys)
        assert tight.false_positive_rate(negatives) <= loose.false_positive_rate(negatives)

    def test_incremental_add(self):
        flt = BloomFilter(bits=4096).build([1.0, 2.0])
        assert not flt.might_contain(99.0) or True  # may be FP, never FN below
        flt.add(99.0)
        assert flt.might_contain(99.0)

    def test_len_counts_insertions(self):
        flt = BloomFilter(bits=1024).build([1.0, 2.0, 3.0])
        assert len(flt) == 3
        flt.add(4.0)
        assert len(flt) == 4

    def test_size_bytes_matches_bits(self):
        flt = BloomFilter(bits=8192).build([1.0])
        assert flt.stats.size_bytes == 1024

    def test_distinguishes_close_floats(self):
        flt = BloomFilter(bits=1 << 16).build([1.0])
        # Adjacent float must hash differently (bit-pattern hashing).
        neighbour = np.nextafter(1.0, 2.0)
        # Cannot assert False (could be FP) but the hash pair must differ.
        assert flt._hash_pair(1.0) != flt._hash_pair(float(neighbour))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1e9, 1e9, allow_nan=False), min_size=1, max_size=100))
    def test_property_no_false_negatives(self, keys):
        flt = BloomFilter(bits=8192).build(keys)
        assert all(flt.might_contain(k) for k in keys)
