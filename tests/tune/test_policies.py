"""Policy engine: deterministic signal -> action maps, with floors."""

from __future__ import annotations

import numpy as np

from repro.tune.policies import (
    DriftRebuildPolicy,
    GridRetunePolicy,
    HotShardRebalancePolicy,
)
from repro.tune.signals import ObservedWindow, SignalBundle, WindowSummary


def _window(seq=1, per_shard=(100, 100, 100, 100), writes=0,
            ewma_writes=0.0, p99_us=100.0, responses=None):
    total = sum(per_shard)
    return WindowSummary(
        seq=seq, requests=total,
        responses=total if responses is None else responses,
        shed=0, writes=writes, cache_hits=0, cache_misses=0, batches=1,
        batched_requests=total, per_shard_requests=tuple(per_shard),
        per_shard_batches=tuple(1 for _ in per_shard),
        latency={"count": total, "p50_us": 50.0, "p95_us": 90.0,
                 "p99_us": p99_us, "max_us": p99_us, "mean_us": 60.0},
        ewma_requests=float(total), ewma_writes=float(ewma_writes),
        ewma_p99_us=p99_us, ewma_per_shard=tuple(float(v) for v in per_shard),
    )


def _observed(keys=(), write_keys=(), boxes=0, dims=2):
    lo = np.zeros((boxes, dims))
    hi = np.ones((boxes, dims))
    return ObservedWindow(
        keys=np.asarray(keys, dtype=np.float64),
        write_keys=np.asarray(write_keys, dtype=np.float64),
        points=np.asarray(keys, dtype=np.float64).reshape(-1, 1).repeat(dims, 1)
        if len(keys) else np.empty((0, dims)),
        box_lo=lo, box_hi=hi,
        reads=len(keys), writes=len(write_keys), ranges=boxes,
    )


def _signals(window, observed=None, drift_fired=False, drift_score=0.0,
             pressure=(0, 0, 0, 0), multi_dim=False):
    return SignalBundle(
        window=window,
        observed=observed if observed is not None else _observed(),
        drift_score=drift_score, drift_fired=drift_fired,
        shard_sizes=(1000,) * len(pressure),
        write_pressure=tuple(pressure),
        num_shards=len(pressure), multi_dim=multi_dim,
    )


class TestHotShardRebalance:
    def test_fires_on_imbalance_with_sample(self):
        policy = HotShardRebalancePolicy(imbalance=2.0, min_requests=100,
                                         min_sample=8, seed=0)
        sig = _signals(_window(per_shard=(900, 30, 40, 30)),
                       observed=_observed(keys=list(range(64))))
        actions = policy.propose(sig)
        assert len(actions) == 1
        assert actions[0].kind == "rebalance"
        assert actions[0].shards == (0, 1, 2, 3)
        assert dict(actions[0].signal)["hot_shard"] == 0.0
        assert actions[0].sample is not None

    def test_quiet_below_imbalance_or_volume_or_sample(self):
        policy = HotShardRebalancePolicy(imbalance=2.0, min_requests=100,
                                         min_sample=8)
        balanced = _signals(_window(per_shard=(110, 90, 100, 100)),
                            observed=_observed(keys=list(range(64))))
        assert policy.propose(balanced) == []
        quiet = _signals(_window(per_shard=(20, 1, 1, 1)),
                         observed=_observed(keys=list(range(64))))
        assert policy.propose(quiet) == []
        unseen = _signals(_window(per_shard=(900, 30, 40, 30)),
                          observed=_observed(keys=[1.0, 2.0]))
        assert policy.propose(unseen) == []

    def test_subsample_is_seed_deterministic(self):
        sig = _signals(_window(seq=7, per_shard=(900, 30, 40, 30)),
                       observed=_observed(keys=list(range(500))))
        policy = HotShardRebalancePolicy(imbalance=2.0, min_requests=100,
                                         min_sample=8, max_sample=32, seed=5)
        again = HotShardRebalancePolicy(imbalance=2.0, min_requests=100,
                                        min_sample=8, max_sample=32, seed=5)
        a = policy.propose(sig)[0].sample
        b = again.propose(sig)[0].sample
        assert a.shape[0] == 32
        assert np.array_equal(a, b)


class TestDriftRebuild:
    def test_fires_when_burst_subsides_on_pressured_shards(self):
        policy = DriftRebuildPolicy(min_writes=64, min_shard_writes=1000)
        sig = _signals(_window(writes=10, ewma_writes=2000.0),
                       drift_fired=True, drift_score=0.8,
                       pressure=(0, 1500, 0, 2000))
        actions = policy.propose(sig)
        assert len(actions) == 1
        assert actions[0].kind == "rebuild"
        assert actions[0].shards == (1, 3)
        assert "subsided" in actions[0].reason

    def test_waits_mid_burst_until_pressure_runs_deep(self):
        policy = DriftRebuildPolicy(min_writes=64, min_shard_writes=1000,
                                    quiescence=0.5, deep_factor=3.0)
        mid_burst = _window(writes=2000, ewma_writes=2000.0)
        shallow = _signals(mid_burst, drift_fired=True,
                           pressure=(0, 1500, 0, 0))
        assert policy.propose(shallow) == []
        deep = _signals(mid_burst, drift_fired=True,
                        pressure=(0, 3500, 0, 1500))
        actions = policy.propose(deep)
        assert actions[0].shards == (1,)  # only the 3x-deep shard

    def test_quiet_without_drift_or_without_pressure(self):
        policy = DriftRebuildPolicy(min_writes=64, min_shard_writes=1000)
        no_drift = _signals(_window(writes=10, ewma_writes=2000.0),
                            drift_fired=False, pressure=(0, 1500, 0, 0))
        assert policy.propose(no_drift) == []
        no_pressure = _signals(_window(writes=10, ewma_writes=2000.0),
                               drift_fired=True, pressure=(0, 0, 0, 0))
        assert policy.propose(no_pressure) == []

    def test_p99_slo_fallback_targets_all_shards(self):
        policy = DriftRebuildPolicy(p99_us=1000.0, min_shard_writes=1000)
        sig = _signals(_window(p99_us=5000.0), pressure=(0, 0, 0, 0))
        actions = policy.propose(sig)
        assert actions[0].shards == (0, 1, 2, 3)
        assert "p99" in actions[0].reason


class TestGridRetune:
    def test_multi_dim_only(self):
        policy = GridRetunePolicy(min_boxes=2)
        one_d = _signals(_window(), observed=_observed(boxes=8),
                         multi_dim=False)
        assert policy.propose(one_d) == []

    def test_fires_with_observed_boxes(self):
        policy = GridRetunePolicy(min_boxes=2)
        sig = _signals(_window(), observed=_observed(boxes=8), multi_dim=True)
        actions = policy.propose(sig)
        assert len(actions) == 1
        assert actions[0].kind == "retune"
        assert len(actions[0].workload) == 8

    def test_quiet_below_box_floor(self):
        policy = GridRetunePolicy(min_boxes=32)
        sig = _signals(_window(), observed=_observed(boxes=4), multi_dim=True)
        assert policy.propose(sig) == []
