"""Signal layer: windowed exactness, observer rings, drift hysteresis."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.requests import Op, Request
from repro.serve.stats import ServerStats
from repro.tune.signals import (
    DriftDetector,
    StatsWindow,
    WorkloadObserver,
    _Ring,
)


class TestStatsWindowExactness:
    def test_single_thread_deltas_are_exact(self):
        stats = ServerStats(num_shards=2)
        window = StatsWindow(stats, alpha=0.5)
        for _ in range(5):
            stats.record_submit(0, depth=1)
            stats.record_done(0.001)
        stats.record_submit(1, depth=1)
        stats.record_done(0.002, write=True)
        first = window.advance()
        assert first.requests == 6
        assert first.responses == 6
        assert first.writes == 1
        assert first.per_shard_requests == (5, 1)
        # The next window starts from zero deltas.
        second = window.advance()
        assert second.requests == 0
        assert second.per_shard_requests == (0, 0)

    def test_window_latency_histogram_is_reconstructed(self):
        stats = ServerStats(num_shards=1)
        window = StatsWindow(stats)
        stats.record_submit(0, depth=1)
        stats.record_done(0.010)
        first = window.advance()
        assert first.latency["count"] == 1
        stats.record_submit(0, depth=1)
        stats.record_done(0.0001)
        second = window.advance()
        # Only this window's one fast sample — the earlier slow one
        # must not leak into the window percentiles.
        assert second.latency["count"] == 1
        assert second.latency["p99_us"] < first.latency["p99_us"]

    def test_eight_thread_barrier_stress_sums_exactly(self):
        """Windows advanced concurrently with recorders lose no counts."""
        threads_n, per_thread, rounds = 8, 200, 5
        stats = ServerStats(num_shards=4)
        window = StatsWindow(stats)
        barrier = threading.Barrier(threads_n + 1)
        done = threading.Event()

        def recorder(tid: int) -> None:
            for r in range(rounds):
                barrier.wait()
                for i in range(per_thread):
                    shard = (tid + i) % 4
                    stats.record_submit(shard, depth=1)
                    stats.record_done(0.0001, write=(i % 10 == 0))
                barrier.wait()

        workers = [threading.Thread(target=recorder, args=(t,))
                   for t in range(threads_n)]
        for w in workers:
            w.start()
        windows = []
        try:
            for r in range(rounds):
                barrier.wait()   # release the round
                barrier.wait()   # all recorders finished the round
                windows.append(window.advance())
        finally:
            done.set()
            for w in workers:
                w.join()
        total = threads_n * per_thread * rounds
        assert sum(w.requests for w in windows) == total
        assert sum(w.responses for w in windows) == total
        assert sum(w.writes for w in windows) == threads_n * (per_thread // 10) * rounds
        assert [sum(w.per_shard_requests[s] for w in windows)
                for s in range(4)] == [total // 4] * 4
        assert sum(w.latency["count"] for w in windows) == total

    def test_ewma_seeds_then_decays(self):
        stats = ServerStats(num_shards=1)
        window = StatsWindow(stats, alpha=0.5)
        stats.record_submit(0, depth=1)
        stats.record_done(0.001)
        first = window.advance()
        assert first.ewma_requests == 1.0  # seeded, not decayed from 0
        second = window.advance()
        assert second.ewma_requests == pytest.approx(0.5)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            StatsWindow(ServerStats(num_shards=1), alpha=0.0)


class TestWorkloadObserver:
    def test_observe_and_observe_many_agree(self):
        reqs = [Request(op=Op.LOOKUP, key=float(i)) for i in range(10)]
        reqs += [Request(op=Op.INSERT, key=100.0 + i, value="v")
                 for i in range(5)]
        reqs.append(Request(op=Op.RANGE_1D, low=1.0, high=2.0))
        one = WorkloadObserver(capacity=64)
        for r in reqs:
            one.observe(r)
        many = WorkloadObserver(capacity=64)
        many.observe_many(reqs)
        a, b = one.drain(), many.drain()
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.write_keys, b.write_keys)
        assert (a.reads, a.writes, a.ranges) == (b.reads, b.writes, b.ranges) == (10, 5, 1)

    def test_drain_clears_window_state_but_keeps_rings(self):
        obs = WorkloadObserver(capacity=8)
        obs.observe_many([Request(op=Op.INSERT, key=1.0, value="v")])
        first = obs.drain()
        assert first.write_keys.tolist() == [1.0]
        second = obs.drain()
        assert second.write_keys.size == 0       # strictly per-window
        assert second.keys.tolist() == [1.0]     # recency ring persists
        assert second.writes == 0

    def test_ring_caps_and_wraps(self):
        obs = WorkloadObserver(capacity=4)
        obs.observe_many([Request(op=Op.LOOKUP, key=float(i))
                          for i in range(10)])
        drained = obs.drain()
        assert drained.keys.size == 4
        assert set(drained.keys.tolist()) <= set(float(i) for i in range(10))

    def test_observer_is_callable_as_the_scalar_hook(self):
        obs = WorkloadObserver(capacity=4)
        obs(Request(op=Op.LOOKUP, key=3.0))
        assert obs.drain().reads == 1

    def test_multi_dim_points_and_boxes(self):
        obs = WorkloadObserver(capacity=8, dims=2)
        obs.observe_many([
            Request(op=Op.POINT_QUERY, point=(1.0, 2.0)),
            Request(op=Op.RANGE_QUERY, low=(0.0, 0.0), high=(1.0, 1.0)),
        ])
        drained = obs.drain()
        assert drained.points.shape == (1, 2)
        assert drained.box_lo.shape == (1, 2)
        assert drained.keys.tolist() == [1.0]  # dim-0 projection


class TestRingExtend:
    def test_extend_matches_repeated_push(self):
        for batch in ([1.0, 2.0], list(range(7)), list(range(20))):
            pushed = _Ring(8, 1)
            for v in batch:
                pushed.push(float(v))
            bulk = _Ring(8, 1)
            bulk.extend(np.asarray(batch, dtype=np.float64).reshape(-1, 1))
            assert sorted(pushed.copy().ravel()) == sorted(bulk.copy().ravel())

    def test_extend_wraps_across_the_boundary(self):
        ring = _Ring(4, 1)
        ring.extend(np.asarray([[1.0], [2.0], [3.0]]))
        ring.extend(np.asarray([[4.0], [5.0]]))  # wraps: overwrites 1.0
        assert sorted(ring.copy().ravel()) == [2.0, 3.0, 4.0, 5.0]


class TestDriftDetector:
    def test_holds_on_matching_distribution(self):
        rng = np.random.default_rng(0)
        ref = rng.uniform(0, 1000, 4000)
        det = DriftDetector(ref, bins=16, threshold=0.35, hold=2)
        for _ in range(5):
            score = det.update(rng.uniform(0, 1000, 500))
            assert score < 0.2
        assert not det.fired

    def test_fires_after_hold_windows_of_shift(self):
        rng = np.random.default_rng(1)
        ref = rng.uniform(0, 1000, 4000)
        det = DriftDetector(ref, bins=16, threshold=0.35, hold=2)
        shifted = rng.uniform(900, 1000, 500)  # all mass in the top bins
        assert det.update(shifted) > 0.35
        assert not det.fired           # streak 1 < hold 2
        det.update(shifted)
        assert det.fired

    def test_small_windows_are_no_evidence(self):
        rng = np.random.default_rng(2)
        det = DriftDetector(rng.uniform(0, 1, 1000), threshold=0.35,
                            hold=1, min_samples=64)
        det.update(np.full(200, 0.99))
        assert det.fired
        # An under-sampled window neither fires nor clears the streak.
        assert det.update(np.full(3, 0.5)) == 0.0
        assert det.fired

    def test_reset_clears_the_streak(self):
        rng = np.random.default_rng(3)
        det = DriftDetector(rng.uniform(0, 1, 1000), threshold=0.35, hold=1)
        det.update(np.full(200, 0.99))
        assert det.fired
        det.reset()
        assert not det.fired

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            DriftDetector(np.asarray([1.0]))
        with pytest.raises(ValueError):
            DriftDetector(np.asarray([1.0, 2.0]), threshold=0.0)
        with pytest.raises(ValueError):
            DriftDetector(np.asarray([1.0, 2.0]), hold=0)
