"""Tuner loop + actuator rails: parity no-op, dry-run, cooldown, audit."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.baselines import SortedArrayIndex
from repro.serve import IndexServer, ShardedStore
from repro.tune.actuators import Actuator
from repro.tune.audit import AuditLog
from repro.tune.engine import TuneConfig, Tuner, default_policies
from repro.tune.policies import Action, Policy


def _keys(n=1000):
    return np.linspace(0.0, 1000.0, n, endpoint=False)


def _tune_config(**overrides):
    base = dict(
        enabled=True,
        min_requests=64,
        min_sample=16,
        imbalance=2.0,
        cooldown_steps=2,
        drift_threshold=1.0,  # keep drift out of rebalance-focused tests
    )
    base.update(overrides)
    return TuneConfig(**base)


def _hammer_hot_shard(server, rounds=200, base=0.0):
    """Read only a narrow band so one shard takes ~all the window traffic."""
    for i in range(rounds):
        server.lookup(base + float(i % 200))


def _rebalance_action(sample):
    return Action(kind="rebalance", policy="test", shards=(0, 1, 2, 3),
                  reason="test", signal=(("x", 1.0),), sample=sample)


def _rebuild_action(shards=(0,)):
    return Action(kind="rebuild", policy="test", shards=tuple(shards),
                  reason="test", signal=(("x", 1.0),))


class TestDisabledTunerIsANoOp:
    def test_no_observer_attached_and_step_is_empty(self):
        server = IndexServer(SortedArrayIndex, num_shards=4).build(_keys())
        try:
            tuner = Tuner(server)  # default TuneConfig: disabled
            assert not tuner.enabled
            assert server._observer is None
            assert server._observer_many is None
            assert tuner.step() == []
            assert tuner.start() is tuner and tuner._thread is None
            assert len(tuner.audit) == 0
        finally:
            server.close()

    def test_serving_answers_identical_with_disabled_tuner(self):
        keys = _keys()
        plain = IndexServer(SortedArrayIndex, num_shards=4).build(keys)
        tuned = IndexServer(SortedArrayIndex, num_shards=4).build(keys)
        tuner = Tuner(tuned)
        try:
            rng = np.random.default_rng(0)
            for key in rng.uniform(-10.0, 1010.0, 300):
                assert tuned.lookup(float(key)) == plain.lookup(float(key))
            tuner.step()
            assert tuned.stats()["shard_sizes"] == plain.stats()["shard_sizes"]
        finally:
            tuner.close()
            plain.close()
            tuned.close()


class TestEnabledTunerActuates:
    def test_hot_shard_rebalance_fires_and_is_audited(self):
        server = IndexServer(SortedArrayIndex, num_shards=4).build(_keys())
        tuner = Tuner(server, _tune_config())
        try:
            assert server._observer is tuner._observer
            before = server.store.bounds_version
            _hammer_hot_shard(server)
            records = tuner.step()
            outcomes = [(r.kind, r.outcome) for r in records]
            assert ("rebalance", "applied") in outcomes
            assert server.store.bounds_version == before + 1
            # Every audit record names its policy and carries the
            # triggering signal values.
            for record in tuner.audit.records():
                assert record.policy
                assert record.signal and all(
                    isinstance(name, str) for name, _ in record.signal)
            # Serving stays correct across the re-partition.
            for i in range(0, 1000, 37):
                assert server.lookup(float(i)) is not None
        finally:
            tuner.close()
            server.close()

    def test_dry_run_records_but_does_not_touch_the_store(self):
        server = IndexServer(SortedArrayIndex, num_shards=4).build(_keys())
        tuner = Tuner(server, _tune_config(dry_run=True))
        try:
            before_version = server.store.bounds_version
            before_gens = list(server.store.generations)
            _hammer_hot_shard(server)
            records = tuner.step()
            assert [r.outcome for r in records] == ["dry-run"]
            assert server.store.bounds_version == before_version
            assert list(server.store.generations) == before_gens
        finally:
            tuner.close()
            server.close()

    def test_cooldown_blocks_back_to_back_repartitions(self):
        server = IndexServer(SortedArrayIndex, num_shards=4).build(_keys())
        tuner = Tuner(server, _tune_config(cooldown_steps=2))
        try:
            _hammer_hot_shard(server)
            first = tuner.step()
            assert any(r.outcome == "applied" for r in first)
            # The applied rebalance re-fit the bounds to the first hot
            # band; hammer a *different* band so skew re-appears.
            _hammer_hot_shard(server, base=600.0)
            second = tuner.step()
            assert [r.outcome for r in second
                    if r.kind == "rebalance"] == ["cooldown"]
            assert "cooling down" in second[0].detail
        finally:
            tuner.close()
            server.close()

    def test_quiet_workload_proposes_nothing(self):
        server = IndexServer(SortedArrayIndex, num_shards=4).build(_keys())
        tuner = Tuner(server, _tune_config())
        try:
            for i in range(20):  # below min_requests
                server.lookup(float(i))
            assert tuner.step() == []
        finally:
            tuner.close()
            server.close()


class TestStepGateAndClose:
    def test_concurrent_step_loses_the_gate_and_returns_empty(self):
        server = IndexServer(SortedArrayIndex, num_shards=2).build(_keys(200))

        inside = threading.Event()
        release = threading.Event()

        class Blocking(Policy):
            name = "blocking"

            def propose(self, signals):
                inside.set()
                release.wait(timeout=10.0)
                return []

        tuner = Tuner(server, _tune_config(), policies=[Blocking()])
        try:
            worker = threading.Thread(target=tuner.step)
            worker.start()
            assert inside.wait(timeout=10.0)
            assert tuner.step() == []  # loser returns, does not block
            release.set()
            worker.join(timeout=10.0)
            assert not worker.is_alive()
        finally:
            release.set()
            tuner.close()
            server.close()

    def test_close_detaches_observer_and_is_idempotent(self):
        server = IndexServer(SortedArrayIndex, num_shards=2).build(_keys(200))
        tuner = Tuner(server, _tune_config()).start()
        try:
            assert tuner._thread is not None
            tuner.close()
            assert server._observer is None
            assert server._observer_many is None
            assert tuner.step() == []
            tuner.close()  # second close is a no-op
        finally:
            server.close()


class TestActuatorRails:
    def _store(self):
        return ShardedStore(SortedArrayIndex, num_shards=4).build(_keys())

    def test_rebuild_after_rebalance_same_step_is_subsumed(self):
        store = self._store()
        actuator = Actuator(store, AuditLog(), cooldown_steps=0)
        sample = np.linspace(0.0, 1000.0, 256)
        records = actuator.apply(0, [_rebalance_action(sample),
                                     _rebuild_action((1, 2))])
        assert [r.outcome for r in records] == ["applied", "subsumed"]
        assert "already rebuilt" in records[1].detail

    def test_rebuild_applies_and_bumps_only_its_shards(self):
        store = self._store()
        actuator = Actuator(store, AuditLog(), cooldown_steps=0)
        before = list(store.generations)
        records = actuator.apply(0, [_rebuild_action((1, 3))])
        assert records[0].outcome == "applied"
        after = list(store.generations)
        assert after[1] == before[1] + 1 and after[3] == before[3] + 1
        assert after[0] == before[0] and after[2] == before[2]

    def test_failing_action_is_audited_as_error_and_does_not_abort(self):
        store = self._store()
        actuator = Actuator(store, AuditLog(), cooldown_steps=0)
        bogus = Action(kind="warp", policy="test", shards=(0,),
                       reason="test", signal=(("x", 1.0),))
        records = actuator.apply(0, [bogus, _rebuild_action((0,))])
        assert records[0].outcome == "error"
        assert "ValueError" in records[0].detail
        assert records[1].outcome == "applied"

    def test_rejects_negative_cooldown(self):
        with pytest.raises(ValueError):
            Actuator(self._store(), AuditLog(), cooldown_steps=-1)


class TestDefaultPolicies:
    def test_config_parameterizes_the_shipped_set(self):
        policies = default_policies(TuneConfig(enabled=True, imbalance=4.0,
                                               min_shard_writes=99))
        names = [p.name for p in policies]
        assert names == ["hot-shard-rebalance", "grid-retune", "drift-rebuild"]
        assert policies[0].imbalance == 4.0
        assert policies[2].min_shard_writes == 99
