"""Tests for the string-key adapter (SIndex branch)."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.onedim.string_adapter import StringIndexAdapter, encode_prefix

WORDS = [
    "alpha", "alphabet", "beta", "gamma", "delta", "deltoid", "epsilon",
    "zeta", "eta", "theta", "iota", "kappa", "lambda", "mu", "nu", "xi",
    "omicron", "pi", "rho", "sigma", "tau", "upsilon", "phi", "chi",
    "psi", "omega", "", "a", "aa", "ab", "z", "zz",
]


class TestEncodePrefix:
    def test_preserves_lexicographic_order_on_prefixes(self):
        codes = [encode_prefix(w) for w in sorted(WORDS)]
        assert codes == sorted(codes)

    def test_distinct_short_keys_get_distinct_codes(self):
        assert encode_prefix("abc") != encode_prefix("abd")
        assert encode_prefix("a") != encode_prefix("b")

    def test_long_shared_prefix_collides(self):
        # Keys identical in the first 6 bytes share a code (resolved by
        # the adapter's buckets).
        assert encode_prefix("prefix_aaaa") == encode_prefix("prefix_bbbb")

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.text(alphabet=string.ascii_lowercase, max_size=12),
                    min_size=2, max_size=40, unique=True))
    def test_property_order_preserving(self, words):
        ordered = sorted(words)
        codes = [encode_prefix(w) for w in ordered]
        assert codes == sorted(codes)


class TestStringIndexAdapter:
    @pytest.fixture()
    def index(self):
        return StringIndexAdapter().build(WORDS)

    def test_lookup_all(self, index):
        ranks = {w: i for i, w in enumerate(sorted(set(WORDS)))}
        for w in WORDS:
            assert index.lookup(w) == ranks[w]

    def test_lookup_absent(self, index):
        assert index.lookup("nonexistent") is None
        assert index.lookup("alph") is None  # prefix of a real key

    def test_range_query_lexicographic(self, index):
        result = index.range_query("b", "e")
        keys = [k for k, _ in result]
        expect = sorted(w for w in set(WORDS) if "b" <= w <= "e")
        assert keys == expect

    def test_prefix_query(self, index):
        result = index.prefix_query("alpha")
        assert [k for k, _ in result] == ["alpha", "alphabet"]

    def test_prefix_query_on_colliding_prefixes(self):
        index = StringIndexAdapter().build(
            ["prefix_aaaa", "prefix_bbbb", "prefix_cccc", "other"]
        )
        result = index.prefix_query("prefix_b")
        assert [k for k, _ in result] == ["prefix_bbbb"]

    def test_insert_and_delete(self, index):
        index.insert("newword", "payload")
        assert index.lookup("newword") == "payload"
        assert index.delete("newword")
        assert index.lookup("newword") is None
        assert not index.delete("newword")

    def test_insert_into_colliding_bucket(self):
        index = StringIndexAdapter().build(["shared_prefix_1"])
        index.insert("shared_prefix_2", "two")
        assert index.lookup("shared_prefix_1") == 0
        assert index.lookup("shared_prefix_2") == "two"

    def test_items_sorted(self, index):
        keys = [k for k, _ in index.items()]
        assert keys == sorted(set(WORDS))

    def test_custom_values(self):
        index = StringIndexAdapter().build(["x", "y"], values=[10, 20])
        assert index.lookup("x") == 10
        assert index.lookup("y") == 20

    def test_len_tracks_mutations(self, index):
        n = len(index)
        index.insert("brandnew")
        assert len(index) == n + 1
        index.delete("brandnew")
        assert len(index) == n

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10),
                    min_size=1, max_size=30, unique=True))
    def test_property_lookup_matches_dict(self, words):
        index = StringIndexAdapter().build(words)
        ranks = {w: i for i, w in enumerate(sorted(words))}
        for w in words:
            assert index.lookup(w) == ranks[w]
        assert index.lookup("QQQ") is None
