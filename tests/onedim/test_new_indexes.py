"""Behavioural tests for NFL, the learned hash index, and RSMI."""

import numpy as np
import pytest

from repro.data import load_1d, load_nd, range_queries_nd
from repro.multidim import RSMIIndex
from repro.onedim import LearnedHashIndex, NFLIndex
from tests.conftest import brute_force_range_nd


class TestNFL:
    def test_transform_is_monotone(self, hard_keys):
        index = NFLIndex().build(hard_keys)
        probes = np.linspace(hard_keys.min() - 1, hard_keys.max() + 1, 500)
        vals = [index.transform(float(p)) for p in probes]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))

    def test_transform_uniformises_hard_distributions(self):
        # The NFL claim: after the transform, the back-end needs about as
        # few segments as it would on uniform data.
        hard = load_1d("fb", 6000, seed=1)
        uniform = load_1d("uniform", 6000, seed=1)
        nfl_hard = NFLIndex(epsilon=16).build(hard)
        nfl_uniform = NFLIndex(epsilon=16).build(uniform)
        assert nfl_hard.transformed_hardness <= nfl_uniform.transformed_hardness * 3

    def test_fewer_segments_than_raw_pgm_on_hard_keys(self):
        from repro.onedim import PGMIndex

        hard = load_1d("osm", 6000, seed=2)
        nfl = NFLIndex(epsilon=16).build(hard)
        raw = PGMIndex(epsilon=16).build(hard)
        assert nfl.stats.extra["segments"] < raw.num_segments

    def test_buffer_rebuild_threshold(self):
        # The rebuild trigger is geometric: the buffer must outgrow
        # max(buffer_limit, n // 4) before the back end is refit.
        index = NFLIndex(buffer_limit=8).build(load_1d("uniform", 200, seed=3))
        for i in range(60):
            index.insert(1e12 + i, i)
        assert index.stats.extra.get("rebuilds", 0) >= 1
        assert index.lookup(1e12 + 5) == 5

    def test_rebuild_count_grows_logarithmically(self):
        # Regression for the RPR301 finding on NFL.insert: a fixed-size
        # buffer threshold meant one O(n) rebuild every `buffer_limit`
        # inserts — amortized O(n) per insert.  The geometric threshold
        # amortizes the refit: ~log_{1.25}(growth) rebuilds, not
        # inserts / buffer_limit of them.
        index = NFLIndex(buffer_limit=16).build(load_1d("uniform", 256, seed=3))
        for i in range(2000):
            index.insert(2e12 + i, i)
        rebuilds = index.stats.extra.get("rebuilds", 0)
        assert 1 <= rebuilds <= 15, rebuilds  # fixed threshold would give ~125
        assert index.lookup(2e12 + 1999) == 1999

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NFLIndex(num_anchors=1)
        with pytest.raises(ValueError):
            NFLIndex(epsilon=0)


class TestLearnedHash:
    def test_learned_hash_is_order_preserving(self, uniform_keys):
        index = LearnedHashIndex(learned=True).build(uniform_keys)
        sk = np.sort(uniform_keys)
        buckets = [index._bucket_of(float(k)) for k in sk[::37]]
        assert buckets == sorted(buckets)

    def test_classic_hash_is_not_order_preserving(self, uniform_keys):
        index = LearnedHashIndex(learned=False).build(uniform_keys)
        sk = np.sort(uniform_keys)
        buckets = [index._bucket_of(float(k)) for k in sk[::37]]
        assert buckets != sorted(buckets)

    def test_learned_range_scans_fewer_buckets(self, uniform_keys):
        learned = LearnedHashIndex(learned=True).build(uniform_keys)
        classic = LearnedHashIndex(learned=False).build(uniform_keys)
        sk = np.sort(uniform_keys)
        lo, hi = float(sk[100]), float(sk[150])
        for index in (learned, classic):
            index.stats.reset_counters()
            result = index.range_query(lo, hi)
            assert [v for _, v in result] == list(range(100, 151))
        assert learned.stats.keys_scanned < classic.stats.keys_scanned / 10

    def test_probe_statistics(self, uniform_keys):
        index = LearnedHashIndex(learned=True, num_quantiles=256).build(uniform_keys)
        assert 1.0 <= index.mean_probe_length() < 3.0
        assert index.max_chain_length() >= 1
        assert 0.0 < index.occupancy() <= 1.0

    def test_more_buckets_fewer_collisions(self, uniform_keys):
        dense = LearnedHashIndex(buckets_per_key=0.5).build(uniform_keys)
        sparse = LearnedHashIndex(buckets_per_key=2.0).build(uniform_keys)
        assert sparse.mean_probe_length() <= dense.mean_probe_length()

    def test_rejects_bad_load_factor(self):
        with pytest.raises(ValueError):
            LearnedHashIndex(buckets_per_key=0)


class TestRSMI:
    def test_rank_space_balances_skew(self):
        # Quantile cells put ~equal mass everywhere, so block scan waste
        # on skewed data stays near the uniform-data level.
        skew = load_nd("skew", 4000, seed=4)
        index = RSMIIndex(block_size=128).build(skew)
        boxes = range_queries_nd(skew, 10, 0.005, seed=5)
        index.stats.reset_counters()
        total = 0
        for lo, hi in boxes:
            total += len(index.range_query(lo, hi))
        waste = index.stats.keys_scanned / max(total, 1)
        assert waste < 40  # scans stay within a few blocks of the answer

    def test_blocks_split_on_insert(self):
        pts = load_nd("uniform", 1000, seed=6)
        index = RSMIIndex(block_size=32).build(pts)
        before = index.num_blocks
        rng = np.random.default_rng(7)
        for i, p in enumerate(rng.uniform(0, 1000, (1500, 2))):
            index.insert(p, i)
        assert index.num_blocks > before
        assert index.stats.extra.get("splits", 0) > 0

    def test_duplicate_code_runs_across_blocks(self):
        # Many points in one rank cell share a Hilbert code; force the
        # run to span blocks and check they all remain findable.
        rng = np.random.default_rng(8)
        cluster = rng.uniform(499.9, 500.1, (300, 2))
        rest = rng.uniform(0, 1000, (300, 2))
        pts = np.unique(np.concatenate([cluster, rest]), axis=0)
        index = RSMIIndex(bits=3, block_size=16).build(pts)
        for i in range(0, pts.shape[0], 7):
            assert index.point_query(pts[i]) == i, i

    def test_range_matches_brute_force_after_churn(self):
        pts = load_nd("clusters", 2000, seed=9)
        index = RSMIIndex(block_size=64).build(pts)
        rng = np.random.default_rng(10)
        extra = rng.uniform(0, 1000, (500, 2))
        for i, p in enumerate(extra):
            index.insert(p, 2000 + i)
        merged = np.concatenate([pts, extra])
        for lo, hi in range_queries_nd(pts, 5, 0.01, seed=11):
            got = sorted(v for _, v in index.range_query(lo, hi))
            assert got == brute_force_range_nd(merged, lo, hi)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RSMIIndex(bits=0)
        with pytest.raises(ValueError):
            RSMIIndex(block_size=4)
