"""Integer keys straddling 2^53 across every registered 1-d index.

SOSD-style datasets carry 64-bit integer keys; the library's float64 key
pipeline is exact only up to 2^53, and :func:`repro.core.numeric.
exact_float64` enforces that boundary.  Here hypothesis builds every
registered factory on exactly-representable integer keys straddling
2^53 (even offsets stay exact past the boundary) and checks rank-exact
lookups — the case a lossy cast would silently corrupt by merging
neighbouring keys.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.runner import ONE_DIM_FACTORIES
from repro.core.numeric import FLOAT64_EXACT_MAX

ALL = list(ONE_DIM_FACTORIES)

# Even offsets keep keys exactly representable on both sides of 2^53
# (beyond the boundary float64 resolves only even integers).
even_offsets = st.integers(min_value=-(1 << 20), max_value=1 << 20).map(
    lambda k: 2 * k)


@pytest.fixture(params=ALL, ids=ALL)
def any_factory(request):
    return ONE_DIM_FACTORIES[request.param]


class TestKeysStraddling2To53:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(offsets=st.lists(even_offsets, min_size=1, max_size=25, unique=True))
    def test_rank_exact_lookups(self, any_factory, offsets):
        keys = sorted(FLOAT64_EXACT_MAX + off for off in offsets)
        index = any_factory().build([float(k) for k in keys])
        for rank, key in enumerate(keys):
            assert index.lookup(float(key)) == rank

    def test_neighbouring_representable_keys_stay_distinct(self, any_factory):
        # The tightest spacing float64 resolves past 2^53 is 2; a single
        # lost bit anywhere in the pipeline would merge these.
        keys = [FLOAT64_EXACT_MAX - 1.0, float(FLOAT64_EXACT_MAX),
                float(FLOAT64_EXACT_MAX + 2), float(FLOAT64_EXACT_MAX + 4)]
        index = any_factory().build(keys)
        for rank, key in enumerate(keys):
            assert index.lookup(key) == rank
        assert index.lookup(float(FLOAT64_EXACT_MAX + 6)) is None
