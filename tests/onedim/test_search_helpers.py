"""Unit tests for the shared last-mile search helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interfaces import IndexStats
from repro.onedim._search import bounded_binary_search, exponential_search, lower_bound

KEYS = np.array([1.0, 3.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0])


class TestLowerBound:
    def test_finds_first_occurrence_of_duplicates(self):
        assert lower_bound(KEYS, 3.0, 0, KEYS.size) == 1

    def test_absent_key_insertion_point(self):
        assert lower_bound(KEYS, 4.0, 0, KEYS.size) == 3
        assert lower_bound(KEYS, 0.5, 0, KEYS.size) == 0
        assert lower_bound(KEYS, 100.0, 0, KEYS.size) == KEYS.size

    def test_respects_window(self):
        # Searching [2, 5) cannot see positions outside the window.
        assert lower_bound(KEYS, 1.0, 2, 5) == 2
        assert lower_bound(KEYS, 100.0, 2, 5) == 5

    def test_counts_comparisons(self):
        stats = IndexStats()
        lower_bound(KEYS, 8.0, 0, KEYS.size, stats)
        assert stats.comparisons > 0


class TestBoundedBinarySearch:
    def test_exact_prediction_zero_error(self):
        for i, k in enumerate(KEYS):
            if i > 0 and KEYS[i - 1] == k:
                continue
            assert bounded_binary_search(KEYS, float(k), i, 0) == i

    def test_prediction_off_by_error(self):
        assert bounded_binary_search(KEYS, 13.0, 3, 2) == 5
        assert bounded_binary_search(KEYS, 13.0, 7, 2) == 5

    def test_window_clamped_to_array(self):
        assert bounded_binary_search(KEYS, 1.0, 0, 100) == 0
        assert bounded_binary_search(KEYS, 34.0, KEYS.size - 1, 100) == KEYS.size - 1

    def test_records_correction_width(self):
        stats = IndexStats()
        bounded_binary_search(KEYS, 8.0, 4, 3, stats)
        assert stats.corrections == 7  # window width 2*3+1


class TestExponentialSearch:
    @pytest.mark.parametrize("predicted", [0, 3, 7])
    def test_finds_correct_position_from_any_prediction(self, predicted):
        for key, expect in [(1.0, 0), (3.0, 1), (4.0, 3), (34.0, 7), (50.0, 8), (0.0, 0)]:
            assert exponential_search(KEYS, key, predicted) == expect, (key, predicted)

    def test_empty_array(self):
        assert exponential_search(np.empty(0), 5.0, 0) == 0

    def test_cost_scales_with_prediction_error(self):
        keys = np.arange(10000, dtype=np.float64)
        near = IndexStats()
        far = IndexStats()
        exponential_search(keys, 5000.0, 4999, near)
        exponential_search(keys, 5000.0, 0, far)
        assert far.comparisons > near.comparisons

    @settings(max_examples=80, deadline=None)
    @given(
        keys=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                      max_size=200).map(lambda xs: np.array(sorted(xs))),
        key=st.floats(-1e6, 1e6, allow_nan=False),
        predicted=st.integers(min_value=-5, max_value=250),
    )
    def test_property_matches_searchsorted(self, keys, key, predicted):
        expect = int(np.searchsorted(keys, key, side="left"))
        assert exponential_search(keys, key, predicted) == expect


class TestTimerHelpers:
    def test_time_callable_returns_positive(self):
        from repro.bench.timer import time_callable

        assert time_callable(lambda: sum(range(100))) > 0

    def test_ops_per_second(self):
        from repro.bench.timer import ops_per_second

        rate = ops_per_second(lambda: sum(1 for _ in range(1000)) and 1000)
        assert rate > 0

    def test_measurement_formatting(self):
        from repro.bench.timer import Measurement

        assert "us" in Measurement("t", 5e-6, "s").formatted()
        assert "ms" in Measurement("t", 5e-3, "s").formatted()
        assert Measurement("n", 3.0, "ops").formatted() == "3 ops"
        assert Measurement("n", 3.0).formatted() == "3"
