"""Per-index behavioural tests: the properties each paper claims."""

import numpy as np
import pytest

from repro.data import load_1d
from repro.onedim import (
    ALEXIndex,
    BourbonLSM,
    DynamicPGMIndex,
    FITingTreeIndex,
    HistTreeIndex,
    HybridRMIIndex,
    InterpolationBTreeIndex,
    LearnedSkipList,
    LIPPIndex,
    PGMIndex,
    RadixSplineIndex,
    RMIIndex,
    XIndexStyleIndex,
)


class TestRMI:
    def test_more_leaves_lower_error(self, lognormal_keys):
        small = RMIIndex(num_models=8).build(lognormal_keys)
        big = RMIIndex(num_models=256).build(lognormal_keys)
        assert max(big.leaf_errors) <= max(small.leaf_errors)

    def test_root_variants_are_correct(self, lognormal_keys):
        sk = np.sort(lognormal_keys)
        for root in ("linear", "quadratic", "nn"):
            index = RMIIndex(num_models=32, root=root).build(lognormal_keys)
            for i in range(0, sk.size, 541):
                assert index.lookup(float(sk[i])) == i, root

    def test_rejects_unknown_root(self):
        with pytest.raises(ValueError):
            RMIIndex(root="transformer")

    def test_size_independent_of_data_size(self):
        # The learned index's core claim: model size does not scale with n.
        small = RMIIndex(num_models=64).build(load_1d("uniform", 2000, seed=1))
        big = RMIIndex(num_models=64).build(load_1d("uniform", 20000, seed=1))
        assert big.stats.size_bytes == small.stats.size_bytes

    def test_mean_error_reported(self, uniform_keys):
        index = RMIIndex(num_models=32).build(uniform_keys)
        assert index.stats.extra["mean_leaf_error"] >= 0


class TestRadixSpline:
    def test_knot_count_shrinks_with_error_budget(self, lognormal_keys):
        tight = RadixSplineIndex(max_error=4).build(lognormal_keys)
        loose = RadixSplineIndex(max_error=128).build(lognormal_keys)
        assert tight.num_knots >= loose.num_knots

    def test_true_error_within_budget_for_distinct_keys(self, uniform_keys):
        index = RadixSplineIndex(max_error=16).build(uniform_keys)
        assert index.stats.extra["true_error"] <= 16

    def test_radix_bits_bounds(self):
        with pytest.raises(ValueError):
            RadixSplineIndex(radix_bits=0)
        with pytest.raises(ValueError):
            RadixSplineIndex(max_error=0)


class TestPGM:
    def test_epsilon_guarantee_bounds_corrections(self, lognormal_keys):
        index = PGMIndex(epsilon=16).build(lognormal_keys)
        index.stats.reset_counters()
        sk = np.sort(lognormal_keys)
        lookups = 100
        for k in sk[::len(sk) // lookups][:lookups]:
            index.lookup(float(k))
        # Each level's window is 2*(eps+1)+1; corrections per lookup must
        # be bounded by levels * window.
        per_lookup = index.stats.corrections / lookups
        assert per_lookup <= index.num_levels * (2 * 17 + 1)

    def test_smaller_epsilon_more_segments(self, lognormal_keys):
        fine = PGMIndex(epsilon=8).build(lognormal_keys)
        coarse = PGMIndex(epsilon=128).build(lognormal_keys)
        assert fine.num_segments > coarse.num_segments

    def test_recursion_terminates_with_one_root_segment(self, lognormal_keys):
        index = PGMIndex(epsilon=16).build(lognormal_keys)
        assert len(index._levels[-1]) == 1

    def test_dynamic_variant_merges_levels(self):
        keys = load_1d("uniform", 2000, seed=4)
        index = DynamicPGMIndex(buffer_capacity=64).build(keys)
        before = index.stats.extra.get("static_levels", 0)
        for i in range(500):
            index.insert(2e12 + i, i)
        assert len(index) == 2500
        assert index.stats.extra["static_levels"] >= 1

    def test_dynamic_delete_of_buffered_and_static_keys(self):
        index = DynamicPGMIndex(buffer_capacity=32).build([1.0, 2.0, 3.0])
        index.insert(10.0, "buf")
        assert index.delete(10.0)   # still in buffer
        assert index.delete(2.0)    # in the static level
        assert index.lookup(10.0) is None
        assert index.lookup(2.0) is None
        assert len(index) == 2


class TestALEX:
    def test_gapped_arrays_have_gaps(self, uniform_keys):
        index = ALEXIndex().build(uniform_keys)
        # Density target 0.7 => capacity exceeds count in every leaf.
        node = index._head
        while node is not None:
            assert node.count <= node.capacity
            node = node.next

    def test_leaf_chain_covers_all_keys_in_order(self, uniform_keys):
        index = ALEXIndex().build(uniform_keys)
        seen = []
        node = index._head
        while node is not None:
            for s in range(node.capacity):
                if node.occupied[s]:
                    seen.append(float(node.keys[s]))
            node = node.next
        assert seen == sorted(seen)
        assert len(seen) == uniform_keys.size

    def test_node_conversion_under_heavy_inserts(self):
        keys = load_1d("uniform", 500, seed=7)
        index = ALEXIndex(max_leaf_keys=64).build(keys)
        nodes_before = index.stats.extra["nodes"]
        for i in range(2000):
            index.insert(1e10 + i * 3.7, i)
        assert len(index) == 2500
        # Heavy append growth must have split leaves into subtrees.
        index._refresh_size()
        assert index.stats.extra["nodes"] > nodes_before

    def test_duplicate_build_keys_overwrite_like_lookup(self):
        index = ALEXIndex().build([1.0, 2.0, 2.0, 3.0])
        assert index.lookup(2.0) is not None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ALEXIndex(max_leaf_keys=4)
        with pytest.raises(ValueError):
            ALEXIndex(density=0.99)


class TestLIPP:
    def test_no_last_mile_search(self, uniform_keys):
        # LIPP's claim: lookups never run a correction search.
        index = LIPPIndex().build(uniform_keys)
        index.stats.reset_counters()
        sk = np.sort(uniform_keys)
        for k in sk[::101]:
            index.lookup(float(k))
        assert index.stats.corrections == 0

    def test_exactly_one_comparison_per_positive_lookup(self, uniform_keys):
        index = LIPPIndex().build(uniform_keys)
        index.stats.reset_counters()
        sk = np.sort(uniform_keys)
        n = 0
        for k in sk[::101]:
            index.lookup(float(k))
            n += 1
        # One key comparison per DATA slot touched; depth > 1 only adds
        # model predictions, not comparisons.
        assert index.stats.comparisons == n

    def test_items_in_sorted_order(self, lognormal_keys):
        index = LIPPIndex().build(lognormal_keys)
        keys = [k for k, _ in index.items()]
        assert keys == sorted(keys)
        assert len(keys) == lognormal_keys.size

    def test_deep_insert_chain_triggers_rebuild(self):
        index = LIPPIndex(gap_factor=1.5).build(np.linspace(0, 1, 64))
        rng = np.random.default_rng(0)
        # Hammer a tiny interval to force collisions.
        for i, k in enumerate(rng.uniform(0.5, 0.5000001, 3000)):
            index.insert(float(k), i)
        assert len(index) <= 64 + 3000
        # All inserted keys still reachable.
        count = sum(1 for _ in index.items())
        assert count == len(index)

    def test_count_tracks_subtree_sizes(self, uniform_keys):
        index = LIPPIndex().build(uniform_keys)
        assert index._root.count == uniform_keys.size


class TestFITingTree:
    def test_buffer_merge_resegments(self):
        keys = load_1d("uniform", 2000, seed=8)
        index = FITingTreeIndex(epsilon=32, buffer_size=16).build(keys)
        before = index.num_segments
        for i in range(1000):
            index.insert(1e10 + i * 2.0, i)
        assert index.stats.extra.get("merges", 0) > 0
        assert index.num_segments >= before

    def test_segment_error_bound_preserved_after_merges(self):
        keys = load_1d("lognormal", 1500, seed=9)
        index = FITingTreeIndex(epsilon=16, buffer_size=8).build(keys)
        rng = np.random.default_rng(1)
        for k in rng.uniform(keys.min(), keys.max(), 500):
            index.insert(float(k), "x")
        # Every segment must still satisfy the epsilon bound.
        for seg in index._segments:
            if seg.keys.size == 0:
                continue
            preds = seg.slope * (seg.keys - seg.first_key) + seg.anchor_pos
            errors = np.abs(preds - np.arange(seg.keys.size))
            assert float(errors.max()) <= 16 + 1.0

    def test_epsilon_controls_segment_count(self, lognormal_keys):
        fine = FITingTreeIndex(epsilon=8).build(lognormal_keys)
        coarse = FITingTreeIndex(epsilon=256).build(lognormal_keys)
        assert fine.num_segments > coarse.num_segments

    def test_delete_of_last_array_key_keeps_buffer(self):
        # Regression: deleting the only main-array key of a segment used
        # to drop the whole segment, silently losing its insert buffer.
        index = FITingTreeIndex().build([1.0], ["a"])
        index.insert(0.0, "b")
        assert index.delete(1.0) is True
        assert index.lookup(0.0) == "b"
        assert index.range_query(-1.0, 2.0) == [(0.0, "b")]
        assert len(index) == 1
        assert index.delete(0.0) is True
        assert len(index) == 0
        assert index.range_query(-1.0, 2.0) == []


class TestXIndex:
    def test_group_compaction_and_split(self):
        keys = load_1d("uniform", 2000, seed=10)
        index = XIndexStyleIndex(group_size=128, buffer_limit=16).build(keys)
        groups_before = index.num_groups
        for i in range(2000):
            index.insert(5e9 + i * 1.5, i)
        assert index.stats.extra.get("compactions", 0) > 0
        assert index.num_groups > groups_before

    def test_lookup_checks_buffer(self):
        index = XIndexStyleIndex(buffer_limit=1000).build([1.0, 2.0, 3.0])
        index.insert(2.5, "buffered")
        assert index.lookup(2.5) == "buffered"


class TestHistTree:
    def test_no_trained_models(self, uniform_keys):
        index = HistTreeIndex().build(uniform_keys)
        index.stats.reset_counters()
        index.lookup(float(np.sort(uniform_keys)[0]))
        assert index.stats.model_predictions == 0

    def test_deeper_on_skewed_data(self):
        uniform = HistTreeIndex(bins=16, leaf_threshold=16).build(load_1d("uniform", 4000, seed=2))
        skewed = HistTreeIndex(bins=16, leaf_threshold=16).build(load_1d("zipf", 4000, seed=2))
        assert skewed.stats.extra["nodes"] >= uniform.stats.extra["nodes"]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HistTreeIndex(bins=1)
        with pytest.raises(ValueError):
            HistTreeIndex(leaf_threshold=0)


class TestHybridRMI:
    def test_hard_regions_get_btrees(self):
        # Clustered osm-style keys defeat per-leaf linear models.
        keys = load_1d("osm", 5000, seed=3)
        index = HybridRMIIndex(num_models=32, error_threshold=64).build(keys)
        assert index.btree_leaf_count > 0

    def test_easy_data_needs_no_btrees(self):
        keys = np.linspace(0, 1e6, 5000)
        index = HybridRMIIndex(num_models=32, error_threshold=64).build(keys)
        assert index.btree_leaf_count == 0

    def test_lower_threshold_more_btrees(self):
        keys = load_1d("lognormal", 5000, seed=4)
        strict = HybridRMIIndex(num_models=32, error_threshold=8).build(keys)
        lax = HybridRMIIndex(num_models=32, error_threshold=512).build(keys)
        assert strict.btree_leaf_count >= lax.btree_leaf_count


class TestBourbon:
    def test_models_attached_to_runs(self):
        keys = load_1d("uniform", 3000, seed=5)
        index = BourbonLSM(memtable_limit=256).build(keys)
        assert index.model_size_bytes() > 0

    def test_models_rebuilt_after_flush_and_compaction(self):
        index = BourbonLSM(memtable_limit=64, max_runs=2).build(load_1d("uniform", 500, seed=6))
        built_before = index.stats.extra["models_built"]
        for i in range(400):
            index.insert(1e10 + i, i)
        assert index.stats.extra["models_built"] > built_before

    def test_learned_search_beats_binary_comparisons(self):
        from repro.baselines import LSMTreeIndex

        keys = load_1d("uniform", 20000, seed=7)
        sk = np.sort(keys)
        learned = BourbonLSM(epsilon=8).build(keys)
        plain = LSMTreeIndex().build(keys)
        for idx in (learned, plain):
            idx.stats.reset_counters()
            for k in sk[::101]:
                idx.lookup(float(k))
        assert learned.stats.comparisons < plain.stats.comparisons


class TestLearnedSkipList:
    def test_guide_rebuilds_after_updates(self):
        index = LearnedSkipList(rebuild_every=10).build(np.arange(100.0))
        before = index.stats.extra["guide_rebuilds"]
        for i in range(25):
            index.insert(1000.0 + i, i)
        index.lookup(1000.0)
        index.lookup(1010.0)
        assert index.stats.extra["guide_rebuilds"] > before

    def test_delete_rebuilds_guide_eagerly(self):
        index = LearnedSkipList().build(np.arange(50.0))
        index.delete(25.0)
        # No stale guide pointer may serve this key.
        assert index.lookup(25.0) is None
        assert index.lookup(26.0) == 26


class TestInterpolationBTree:
    def test_interpolation_beats_binary_on_uniform(self, uniform_keys):
        from repro.baselines import BPlusTreeIndex

        sk = np.sort(uniform_keys)
        interp = InterpolationBTreeIndex(fanout=64).build(uniform_keys)
        plain = BPlusTreeIndex(fanout=64).build(uniform_keys)
        for idx in (interp, plain):
            idx.stats.reset_counters()
            for k in sk[::101]:
                idx.lookup(float(k))
        # Interpolation replaces per-node binary comparisons with a short
        # repair scan on uniform data.
        assert interp.stats.comparisons < plain.stats.comparisons
