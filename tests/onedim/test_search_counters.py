"""Counter-accounting tests for the last-mile search helpers.

``exponential_search`` must record the *actual* searched window in
``stats.corrections``: one unit per galloped probe plus the width of the
final binary-search window.  Before the fix, the left-gallop branch
recorded only the binary window, which collapses to zero when the gallop
is clamped at position 0 — reporting zero search effort for a search
that probed the whole prefix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.interfaces import IndexStats
from repro.onedim._search import (
    bounded_search_batch,
    exponential_search,
    lower_bound,
)

KEYS = np.arange(0.0, 64.0)  # 64 distinct keys, position == key


class TestExponentialSearchCounters:
    def test_left_gallop_clamped_at_zero_records_probes(self):
        # Key below every stored key, predicted at the top: the gallop
        # probes 62, 61, 59, 55, 47, 31, and is then clamped at 0.
        stats = IndexStats()
        assert exponential_search(KEYS, -1.0, 63, stats) == 0
        assert stats.corrections > 0  # was 0 before the fix

    def test_left_gallop_probe_exit_records_window(self):
        # predicted=32, key=30.5: probe at 31 succeeds (31 >= 30.5),
        # probe at 30 fails -> binary window [31, 31), 2 probes total.
        stats = IndexStats()
        assert exponential_search(KEYS, 30.5, 32, stats) == 31
        assert stats.corrections == 2

    def test_right_gallop_records_probes_and_window(self):
        # predicted=0, key=40.5: gallop probes 1, 2, 4, 8, 16, 32, 64->63
        # wait: probes at 1,2,4,8,16,32 succeed, 63 overshoots ->
        # window [33, 64), 7 probes.
        stats = IndexStats()
        pos = exponential_search(KEYS, 40.5, 0, stats)
        assert pos == 41
        window = stats.corrections
        assert window > 0
        # The recorded effort must cover at least log2 of the error.
        assert stats.comparisons >= int(np.log2(41))

    def test_effort_monotone_in_prediction_error(self):
        near, far = IndexStats(), IndexStats()
        exponential_search(KEYS, 32.0, 31, near)
        exponential_search(KEYS, 32.0, 0, far)
        assert far.corrections > near.corrections
        assert far.comparisons > near.comparisons

    @pytest.mark.parametrize("predicted", [-5, 0, 17, 63, 90])
    def test_counter_fix_preserves_results(self, predicted):
        for key in (-1.0, 0.0, 13.0, 13.5, 63.0, 99.0):
            expect = int(np.searchsorted(KEYS, key, side="left"))
            assert exponential_search(KEYS, key, predicted) == expect


class TestBoundedSearchBatch:
    def test_matches_scalar_windowed_lower_bound(self):
        rng = np.random.default_rng(11)
        keys = np.sort(rng.uniform(0, 100, 500))
        queries = np.concatenate([rng.choice(keys, 50), rng.uniform(-5, 105, 50)])
        true_pos = np.searchsorted(keys, queries, side="left")
        predicted = np.clip(
            true_pos + rng.integers(-20, 21, queries.size), 0, keys.size - 1
        )
        got = bounded_search_batch(keys, queries, predicted, 8)
        for q, pred, g in zip(queries, predicted, got):
            lo = max(int(pred) - 8, 0)
            hi = min(int(pred) + 9, keys.size)
            assert g == lower_bound(keys, float(q), lo, hi)

    def test_aggregates_corrections_per_batch(self):
        stats = IndexStats()
        keys = np.arange(0.0, 100.0)
        queries = np.array([10.0, 50.0, 90.0])
        predicted = np.array([10, 50, 90])
        bounded_search_batch(keys, queries, predicted, 4, stats)
        assert stats.corrections == 3 * 9  # three windows of width 2*4+1
        assert stats.comparisons > 0
