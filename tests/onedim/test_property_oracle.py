"""Property-based oracle tests: mutable indexes vs a dict model.

Hypothesis drives random build/insert/delete/lookup sequences against
every mutable 1-d index and checks each observable result against a plain
dict + sorted-list oracle.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.runner import MUTABLE_ONE_DIM_FACTORIES

MUTABLE = list(MUTABLE_ONE_DIM_FACTORIES)

# Small key domain to force collisions between operations.
key_strategy = st.integers(min_value=0, max_value=50).map(float)

operation = st.one_of(
    st.tuples(st.just("insert"), key_strategy, st.integers(0, 1000)),
    st.tuples(st.just("delete"), key_strategy, st.just(0)),
    st.tuples(st.just("lookup"), key_strategy, st.just(0)),
    st.tuples(st.just("range"), key_strategy, key_strategy),
)


@pytest.fixture(params=MUTABLE, ids=MUTABLE)
def mutable_factory(request):
    return MUTABLE_ONE_DIM_FACTORIES[request.param]


class TestDictOracle:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        initial=st.lists(key_strategy, max_size=30, unique=True),
        ops=st.lists(operation, max_size=40),
    )
    def test_operation_sequence_matches_oracle(self, mutable_factory, initial, ops):
        index = mutable_factory().build(initial)
        oracle: dict[float, object] = {k: i for i, k in enumerate(sorted(initial))}
        for kind, key, arg in ops:
            if kind == "insert":
                index.insert(key, arg)
                oracle[key] = arg
            elif kind == "delete":
                assert index.delete(key) == (key in oracle)
                oracle.pop(key, None)
            elif kind == "lookup":
                assert index.lookup(key) == oracle.get(key)
            else:  # range
                lo, hi = min(key, arg), max(key, arg)
                got = index.range_query(lo, hi)
                expect = sorted((k, v) for k, v in oracle.items() if lo <= k <= hi)
                assert got == expect
        # Final full scan must equal the oracle exactly.
        final = index.range_query(-1e9, 1e9)
        assert final == sorted(oracle.items())
        assert len(index) == len(oracle)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(keys=st.lists(st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False),
                         min_size=1, max_size=50, unique=True))
    def test_build_then_full_scan_roundtrip(self, mutable_factory, keys):
        index = mutable_factory().build(keys)
        scan = index.range_query(min(keys), max(keys))
        assert [k for k, _ in scan] == sorted(keys)
