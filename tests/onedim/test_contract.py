"""Cross-index contract tests: every 1-d index, every distribution.

These tests treat each index as a black box implementing the
:class:`OneDimIndex` interface and check it against the sorted-array
oracle — the same harness the benchmarks rely on.
"""

import numpy as np
import pytest

from repro.bench.runner import MUTABLE_ONE_DIM_FACTORIES, ONE_DIM_FACTORIES
from repro.data import insert_stream, load_1d, negative_lookups

ALL = list(ONE_DIM_FACTORIES)
MUTABLE = list(MUTABLE_ONE_DIM_FACTORIES)


@pytest.fixture(params=ALL, ids=ALL)
def any_factory(request):
    return ONE_DIM_FACTORIES[request.param]


@pytest.fixture(params=MUTABLE, ids=MUTABLE)
def mutable_factory(request):
    return MUTABLE_ONE_DIM_FACTORIES[request.param]


class TestLookupContract:
    def test_every_key_found_uniform(self, any_factory, uniform_keys):
        index = any_factory().build(uniform_keys)
        sk = np.sort(uniform_keys)
        for i in range(0, sk.size, 137):
            assert index.lookup(float(sk[i])) == i

    def test_every_key_found_heavy_tail(self, any_factory, hard_keys):
        index = any_factory().build(hard_keys)
        sk = np.sort(hard_keys)
        for i in range(0, sk.size, 137):
            assert index.lookup(float(sk[i])) == i

    def test_negative_lookups_return_none(self, any_factory, lognormal_keys):
        index = any_factory().build(lognormal_keys)
        for q in negative_lookups(lognormal_keys, 50, seed=3):
            assert index.lookup(float(q)) is None

    def test_extreme_probes(self, any_factory, uniform_keys):
        index = any_factory().build(uniform_keys)
        assert index.lookup(-1e300) is None
        assert index.lookup(1e300) is None

    def test_custom_values(self, any_factory):
        keys = [5.0, 1.0, 3.0]
        index = any_factory().build(keys, values=["e", "a", "c"])
        assert index.lookup(1.0) == "a"
        assert index.lookup(3.0) == "c"
        assert index.lookup(5.0) == "e"

    def test_single_key(self, any_factory):
        index = any_factory().build([42.0])
        assert index.lookup(42.0) == 0
        assert index.lookup(41.0) is None
        assert index.lookup(43.0) is None

    def test_two_identical_magnitude_keys(self, any_factory):
        index = any_factory().build([1.0, -1.0])
        assert index.lookup(-1.0) == 0
        assert index.lookup(1.0) == 1


class TestRangeContract:
    def test_range_matches_oracle(self, any_factory, lognormal_keys):
        index = any_factory().build(lognormal_keys)
        sk = np.sort(lognormal_keys)
        result = index.range_query(float(sk[500]), float(sk[600]))
        assert [v for _, v in result] == list(range(500, 601))

    def test_range_bounds_are_inclusive(self, any_factory):
        index = any_factory().build([1.0, 2.0, 3.0, 4.0])
        result = index.range_query(2.0, 3.0)
        assert [k for k, _ in result] == [2.0, 3.0]

    def test_range_between_keys_is_empty(self, any_factory):
        index = any_factory().build([1.0, 10.0])
        assert index.range_query(2.0, 9.0) == []

    def test_inverted_range_is_empty(self, any_factory, uniform_keys):
        index = any_factory().build(uniform_keys)
        assert index.range_query(10.0, 5.0) == []

    def test_full_range_returns_everything(self, any_factory, uniform_keys):
        index = any_factory().build(uniform_keys)
        sk = np.sort(uniform_keys)
        result = index.range_query(float(sk[0]), float(sk[-1]))
        assert len(result) == sk.size
        keys = [k for k, _ in result]
        assert keys == sorted(keys)


class TestMutableContract:
    def test_insert_new_keys(self, mutable_factory, uniform_keys):
        index = mutable_factory().build(uniform_keys)
        fresh = insert_stream(uniform_keys, 500, seed=5)
        for i, k in enumerate(fresh):
            index.insert(float(k), ("new", i))
        for i, k in enumerate(fresh[::7]):
            assert index.lookup(float(k)) == ("new", i * 7)

    def test_inserts_do_not_disturb_existing(self, mutable_factory, uniform_keys):
        index = mutable_factory().build(uniform_keys)
        sk = np.sort(uniform_keys)
        for k in insert_stream(uniform_keys, 500, seed=6):
            index.insert(float(k), "x")
        for i in range(0, sk.size, 97):
            assert index.lookup(float(sk[i])) == i

    def test_insert_replaces_existing(self, mutable_factory, uniform_keys):
        index = mutable_factory().build(uniform_keys)
        sk = np.sort(uniform_keys)
        index.insert(float(sk[3]), "updated")
        assert index.lookup(float(sk[3])) == "updated"

    def test_delete_removes(self, mutable_factory, uniform_keys):
        index = mutable_factory().build(uniform_keys)
        sk = np.sort(uniform_keys)
        for k in sk[::211]:
            assert index.delete(float(k))
        for k in sk[::211]:
            assert index.lookup(float(k)) is None

    def test_delete_absent_returns_false(self, mutable_factory, uniform_keys):
        index = mutable_factory().build(uniform_keys)
        assert not index.delete(-999.125)

    def test_append_workload(self, mutable_factory):
        keys = load_1d("uniform", 1000, seed=9)
        index = mutable_factory().build(keys)
        appended = insert_stream(keys, 1000, seed=10, mode="append")
        for i, k in enumerate(appended):
            index.insert(float(k), i)
        for i, k in enumerate(appended[::31]):
            assert index.lookup(float(k)) == i * 31

    def test_hotspot_workload(self, mutable_factory):
        keys = load_1d("uniform", 1000, seed=11)
        index = mutable_factory().build(keys)
        hot = insert_stream(keys, 1000, seed=12, mode="hotspot")
        for i, k in enumerate(hot):
            index.insert(float(k), i)
        for i, k in enumerate(hot[::29]):
            assert index.lookup(float(k)) == i * 29

    def test_range_after_churn_is_sorted_and_complete(self, mutable_factory):
        keys = load_1d("lognormal", 1500, seed=13)
        index = mutable_factory().build(keys)
        fresh = insert_stream(keys, 700, seed=14)
        for k in fresh:
            index.insert(float(k), "n")
        sk = np.sort(keys)
        for k in sk[::9]:
            index.delete(float(k))
        everything = index.range_query(-1e300, 1e300)
        got_keys = [k for k, _ in everything]
        assert got_keys == sorted(got_keys)
        expected = (set(float(k) for k in sk) | set(float(k) for k in fresh)) - set(
            float(k) for k in sk[::9]
        )
        assert set(got_keys) == expected

    def test_build_empty_then_insert(self, mutable_factory):
        index = mutable_factory().build([])
        index.insert(5.0, "five")
        assert index.lookup(5.0) == "five"
        index.insert(1.0, "one")
        index.insert(9.0, "nine")
        result = index.range_query(0.0, 10.0)
        assert [k for k, _ in result] == [1.0, 5.0, 9.0]


class TestStatsContract:
    def test_lookup_accumulates_counters(self, any_factory, uniform_keys):
        index = any_factory().build(uniform_keys)
        index.stats.reset_counters()
        sk = np.sort(uniform_keys)
        for k in sk[::500]:
            index.lookup(float(k))
        total = (index.stats.comparisons + index.stats.nodes_visited
                 + index.stats.model_predictions + index.stats.keys_scanned)
        assert total > 0

    def test_size_bytes_reported(self, any_factory, uniform_keys):
        index = any_factory().build(uniform_keys)
        assert index.stats.size_bytes > 0

    def test_len(self, any_factory, uniform_keys):
        index = any_factory().build(uniform_keys)
        assert len(index) == uniform_keys.size
