"""Tests for SNARF (range filter) and PolyFit (range aggregates)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import load_1d
from repro.onedim.polyfit import PolyFitAggregator
from repro.onedim.snarf import SNARFFilter


class TestSNARF:
    @pytest.fixture()
    def built(self):
        keys = load_1d("lognormal", 4000, seed=1)
        return keys, SNARFFilter(bits_per_key=8).build(keys)

    def test_no_false_negatives_on_point_ranges(self, built):
        keys, flt = built
        assert all(flt.might_contain(float(k)) for k in keys[::17])

    def test_no_false_negatives_on_ranges(self, built):
        keys, flt = built
        sk = np.sort(keys)
        rng = np.random.default_rng(2)
        for _ in range(100):
            i = int(rng.integers(0, sk.size - 1))
            width = float(rng.uniform(0, sk[-1] - sk[0])) * 0.01
            lo = float(sk[i]) - width / 2
            hi = float(sk[i]) + width / 2
            # The range contains sk[i], so the filter must say maybe.
            assert flt.might_contain_range(lo, hi)

    def test_empty_gaps_mostly_rejected(self):
        # Clustered keys leave huge empty gaps the filter should reject.
        keys = load_1d("osm", 4000, seed=3)
        # Model resolution must be fine enough to resolve gaps that fall
        # entirely inside one quantile bucket.
        flt = SNARFFilter(bits_per_key=10, num_quantiles=1024).build(keys)
        sk = np.sort(keys)
        gaps = np.diff(sk)
        big = np.argsort(gaps)[-50:]
        rejected = 0
        for gi in big:
            lo = float(sk[gi]) + gaps[gi] * 0.3
            hi = float(sk[gi]) + gaps[gi] * 0.7
            if not flt.might_contain_range(lo, hi):
                rejected += 1
        assert rejected > 25  # most large empty gaps answer "no"

    def test_out_of_range_rejected(self, built):
        keys, flt = built
        assert not flt.might_contain_range(keys.max() + 1, keys.max() + 100)
        assert not flt.might_contain_range(keys.min() - 100, keys.min() - 1)

    def test_more_bits_fewer_false_positives(self):
        keys = load_1d("uniform", 3000, seed=4)
        sk = np.sort(keys)
        rng = np.random.default_rng(5)
        # Queries centred in gaps between consecutive keys.
        ranges = []
        truth = []
        for _ in range(300):
            i = int(rng.integers(0, sk.size - 1))
            mid = (sk[i] + sk[i + 1]) / 2
            eps = (sk[i + 1] - sk[i]) * 0.2
            ranges.append((float(mid - eps), float(mid + eps)))
            truth.append(False)
        small = SNARFFilter(bits_per_key=2).build(keys)
        large = SNARFFilter(bits_per_key=16).build(keys)
        assert (large.false_positive_rate(ranges, truth)
                <= small.false_positive_rate(ranges, truth))

    def test_inverted_range_is_false(self, built):
        _, flt = built
        assert not flt.might_contain_range(10.0, 5.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SNARFFilter(bits_per_key=0)
        with pytest.raises(ValueError):
            SNARFFilter().build([])


class TestPolyFit:
    @pytest.fixture()
    def built(self):
        rng = np.random.default_rng(6)
        keys = np.sort(rng.uniform(0, 1e6, 5000))
        weights = rng.uniform(0, 10, 5000)
        agg = PolyFitAggregator(degree=2, piece_size=256).build(keys, weights)
        return keys, weights, agg

    def test_count_within_error_bound(self, built):
        keys, _, agg = built
        rng = np.random.default_rng(7)
        for _ in range(50):
            a, b = sorted(rng.uniform(keys.min(), keys.max(), 2))
            estimate = agg.count(a, b)
            exact = agg.exact_count(a, b)
            assert abs(estimate - exact) <= agg.count_error_bound + 1

    def test_sum_within_error_bound(self, built):
        keys, _, agg = built
        rng = np.random.default_rng(8)
        for _ in range(50):
            a, b = sorted(rng.uniform(keys.min(), keys.max(), 2))
            estimate = agg.sum(a, b)
            exact = agg.exact_sum(a, b)
            assert abs(estimate - exact) <= agg.sum_error_bound + 1

    def test_full_range_count_is_n(self, built):
        keys, _, agg = built
        assert agg.count(keys.min() - 1, keys.max() + 1) == pytest.approx(
            keys.size, abs=agg.count_error_bound)

    def test_empty_and_inverted_ranges(self, built):
        keys, _, agg = built
        assert agg.count(10.0, 5.0) == 0.0
        assert agg.sum(10.0, 5.0) == 0.0

    def test_higher_degree_tighter_error(self):
        rng = np.random.default_rng(9)
        keys = np.sort(rng.lognormal(0, 2, 4000) * 1e5)
        linear = PolyFitAggregator(degree=1, piece_size=512).build(keys)
        cubic = PolyFitAggregator(degree=3, piece_size=512).build(keys)
        assert cubic.count_error_bound <= linear.count_error_bound

    def test_constant_time_versus_scan(self, built):
        keys, _, agg = built
        # The whole point: answering from models touches O(1) pieces.
        agg.stats.reset_counters()
        agg.count(float(keys[100]), float(keys[-100]))
        assert agg.stats.model_predictions <= 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PolyFitAggregator(degree=0)
        with pytest.raises(ValueError):
            PolyFitAggregator(piece_size=2)
        with pytest.raises(ValueError):
            PolyFitAggregator().build([])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=16, max_size=200,
                    unique=True))
    def test_property_count_bound_holds(self, raw):
        keys = np.sort(np.array(raw))
        agg = PolyFitAggregator(degree=2, piece_size=32).build(keys)
        a, b = float(keys[len(raw) // 4]), float(keys[3 * len(raw) // 4])
        assert abs(agg.count(a, b) - agg.exact_count(a, b)) <= agg.count_error_bound + 1
