"""Cross-index contract tests for every multi-dimensional index."""

import numpy as np
import pytest

from repro.bench.runner import MULTI_DIM_FACTORIES, MUTABLE_MULTI_DIM_FACTORIES
from repro.data import load_nd, range_queries_nd
from tests.conftest import brute_force_knn, brute_force_range_nd

ALL = list(MULTI_DIM_FACTORIES)
MUTABLE = list(MUTABLE_MULTI_DIM_FACTORIES)

# Indexes whose kNN goes through guided search or box expansion.
KNN_CAPABLE = ["r-tree", "kd-tree", "quadtree", "grid", "zm-index",
               "ml-index", "flood", "sprig", "tsunami", "lisa", "ai+r-tree"]


@pytest.fixture(params=ALL, ids=ALL)
def any_factory(request):
    return MULTI_DIM_FACTORIES[request.param]


@pytest.fixture(params=MUTABLE, ids=MUTABLE)
def mutable_factory(request):
    return MUTABLE_MULTI_DIM_FACTORIES[request.param]


@pytest.fixture(params=KNN_CAPABLE, ids=KNN_CAPABLE)
def knn_factory(request):
    return MULTI_DIM_FACTORIES[request.param]


class TestPointQueries:
    def test_all_points_found_uniform(self, any_factory, uniform_points):
        index = any_factory().build(uniform_points)
        for i in range(0, uniform_points.shape[0], 101):
            assert index.point_query(uniform_points[i]) == i

    def test_all_points_found_clustered(self, any_factory, clustered_points):
        index = any_factory().build(clustered_points)
        for i in range(0, clustered_points.shape[0], 101):
            assert index.point_query(clustered_points[i]) == i

    def test_absent_point_inside_hull(self, any_factory, uniform_points):
        index = any_factory().build(uniform_points)
        centre = uniform_points.mean(axis=0) + 0.123456789
        point_set = {tuple(p) for p in uniform_points}
        if tuple(centre) not in point_set:
            assert index.point_query(centre) is None

    def test_absent_point_far_outside(self, any_factory, uniform_points):
        index = any_factory().build(uniform_points)
        assert index.point_query([1e9, -1e9]) is None

    def test_custom_values(self, any_factory):
        pts = np.array([[0.0, 0.0], [5.0, 5.0], [9.0, 1.0]])
        index = any_factory().build(pts, values=["a", "b", "c"])
        assert index.point_query([5.0, 5.0]) == "b"

    def test_len(self, any_factory, uniform_points):
        index = any_factory().build(uniform_points)
        assert len(index) == uniform_points.shape[0]


class TestRangeQueries:
    @pytest.mark.parametrize("selectivity", [0.0005, 0.01, 0.1])
    def test_matches_brute_force(self, any_factory, clustered_points, selectivity):
        index = any_factory().build(clustered_points)
        for lo, hi in range_queries_nd(clustered_points, 4, selectivity, seed=5):
            got = sorted(v for _, v in index.range_query(lo, hi))
            assert got == brute_force_range_nd(clustered_points, lo, hi)

    def test_skewed_data(self, any_factory):
        pts = load_nd("skew", 2000, seed=7)
        index = any_factory().build(pts)
        for lo, hi in range_queries_nd(pts, 4, 0.01, seed=8):
            got = sorted(v for _, v in index.range_query(lo, hi))
            assert got == brute_force_range_nd(pts, lo, hi)

    def test_degenerate_box_is_point(self, any_factory, uniform_points):
        index = any_factory().build(uniform_points)
        p = uniform_points[7]
        result = index.range_query(p, p)
        assert [v for _, v in result] == [7]

    def test_inverted_box_empty(self, any_factory, uniform_points):
        index = any_factory().build(uniform_points)
        assert index.range_query([10.0, 10.0], [5.0, 5.0]) == []

    def test_box_covering_everything(self, any_factory, uniform_points):
        index = any_factory().build(uniform_points)
        lo = uniform_points.min(axis=0)
        hi = uniform_points.max(axis=0)
        assert len(index.range_query(lo, hi)) == uniform_points.shape[0]

    def test_returned_points_carry_coordinates(self, any_factory, uniform_points):
        index = any_factory().build(uniform_points)
        lo = uniform_points.min(axis=0)
        hi = uniform_points.max(axis=0)
        for p, v in index.range_query(lo, hi)[:20]:
            assert np.array_equal(np.asarray(p), uniform_points[v])


class TestKNN:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_brute_force(self, knn_factory, clustered_points, k):
        index = knn_factory().build(clustered_points)
        rng = np.random.default_rng(11)
        for _ in range(3):
            q = clustered_points[rng.integers(0, clustered_points.shape[0])] + 0.25
            got = {v for _, v in index.knn_query(q, k)}
            assert got == brute_force_knn(clustered_points, q, k)

    def test_results_ordered_by_distance(self, knn_factory, clustered_points):
        index = knn_factory().build(clustered_points)
        q = clustered_points.mean(axis=0)
        result = index.knn_query(q, 10)
        dists = [float(np.linalg.norm(np.asarray(p) - q)) for p, _ in result]
        assert dists == sorted(dists)


class TestMutableContract:
    def test_insert_then_query(self, mutable_factory, clustered_points):
        index = mutable_factory().build(clustered_points)
        rng = np.random.default_rng(13)
        span = clustered_points.max(axis=0) - clustered_points.min(axis=0)
        new = clustered_points.min(axis=0) + rng.uniform(0, 1, (300, 2)) * span
        for i, p in enumerate(new):
            index.insert(p, ("n", i))
        for i, p in enumerate(new[::11]):
            assert index.point_query(p) == ("n", i * 11)

    def test_inserts_preserve_existing(self, mutable_factory, clustered_points):
        index = mutable_factory().build(clustered_points)
        index.insert([-77.0, -77.0], "x")
        for i in range(0, clustered_points.shape[0], 211):
            assert index.point_query(clustered_points[i]) == i

    def test_delete(self, mutable_factory, clustered_points):
        index = mutable_factory().build(clustered_points)
        for i in range(0, 100, 7):
            assert index.delete(clustered_points[i])
        for i in range(0, 100, 7):
            assert index.point_query(clustered_points[i]) is None
        assert not index.delete([1e9, 1e9])

    def test_range_after_churn(self, mutable_factory):
        pts = load_nd("uniform", 1000, seed=17)
        index = mutable_factory().build(pts)
        rng = np.random.default_rng(18)
        extra = rng.uniform(pts.min(), pts.max(), (300, 2))
        for i, p in enumerate(extra):
            index.insert(p, ("e", i))
        for i in range(0, 200, 9):
            index.delete(pts[i])
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        got = index.range_query(lo, hi)
        live = {tuple(p) for p in pts} - {tuple(pts[i]) for i in range(0, 200, 9)}
        live |= {tuple(p) for p in extra if np.all(p >= lo) and np.all(p <= hi)}
        assert {tuple(p) for p, _ in got} == live
