"""Property-based oracle tests for mutable multi-dimensional indexes.

Hypothesis drives random insert/delete/query sequences on a small integer
lattice (to force collisions) and checks every observable against a plain
dict-of-points oracle.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.runner import MUTABLE_MULTI_DIM_FACTORIES

MUTABLE = list(MUTABLE_MULTI_DIM_FACTORIES)

coord = st.integers(min_value=0, max_value=12).map(float)
point = st.tuples(coord, coord)

operation = st.one_of(
    st.tuples(st.just("insert"), point, st.integers(0, 99)),
    st.tuples(st.just("delete"), point, st.just(0)),
    st.tuples(st.just("query"), point, st.just(0)),
    st.tuples(st.just("range"), point, point),
)


@pytest.fixture(params=MUTABLE, ids=MUTABLE)
def mutable_factory(request):
    return MUTABLE_MULTI_DIM_FACTORIES[request.param]


class TestDictOracle:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        initial=st.lists(point, min_size=1, max_size=25, unique=True),
        ops=st.lists(operation, max_size=30),
    )
    def test_operation_sequence_matches_oracle(self, mutable_factory, initial, ops):
        pts = np.array(initial, dtype=np.float64)
        index = mutable_factory().build(pts)
        oracle: dict[tuple[float, float], object] = {}
        # Reconstruct build-time values: row position in the input array.
        for i, p in enumerate(initial):
            oracle[p] = i
        for kind, p, arg in ops:
            if kind == "insert":
                index.insert(np.array(p), arg)
                oracle[p] = arg
            elif kind == "delete":
                assert index.delete(np.array(p)) == (p in oracle)
                oracle.pop(p, None)
            elif kind == "query":
                assert index.point_query(np.array(p)) == oracle.get(p)
            else:  # range
                q = arg if isinstance(arg, tuple) else p
                lo = np.minimum(np.array(p), np.array(q))
                hi = np.maximum(np.array(p), np.array(q))
                got = sorted(
                    (tuple(pt), v) for pt, v in index.range_query(lo, hi)
                )
                expect = sorted(
                    (pt, v) for pt, v in oracle.items()
                    if lo[0] <= pt[0] <= hi[0] and lo[1] <= pt[1] <= hi[1]
                )
                assert got == expect
        # Final state: full-box scan equals the oracle.
        final = sorted((tuple(pt), v) for pt, v in
                       index.range_query([-1.0, -1.0], [13.0, 13.0]))
        assert final == sorted(oracle.items())
        assert len(index) == len(oracle)
