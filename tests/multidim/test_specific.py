"""Per-index behavioural tests for the multi-dimensional learned indexes."""

import numpy as np
import pytest

from repro.baselines import RTreeIndex
from repro.data import load_nd, range_queries_nd
from repro.multidim import (
    AIRTreeIndex,
    FloodIndex,
    LearnedKDIndex,
    LISAIndex,
    MLIndex,
    QdTreeIndex,
    SpatialLearnedBloomFilter,
    SPRIGIndex,
    TsunamiIndex,
    ZMIndex,
)


class TestZMIndex:
    def test_bigmin_skips_cut_scan_work(self, clustered_points):
        index = ZMIndex(bits=12).build(clustered_points)
        lo = clustered_points.min(axis=0)
        hi = lo + (clustered_points.max(axis=0) - lo) * 0.1
        index.stats.reset_counters()
        index.range_query(lo, hi)
        scanned_with_bigmin = index.stats.keys_scanned
        # A naive z-interval scan would touch every point between the
        # corner codes; BIGMIN must beat that by a large margin when the
        # box is a small corner of the space.
        assert scanned_with_bigmin < clustered_points.shape[0] * 0.5

    def test_code_ordering_is_kept_sorted(self, uniform_points):
        index = ZMIndex().build(uniform_points)
        codes = index._codes
        assert np.all(codes[:-1] <= codes[1:])

    def test_rejects_code_overflow(self):
        with pytest.raises(ValueError):
            ZMIndex(bits=31).build(np.random.default_rng(0).uniform(0, 1, (10, 3)))

    def test_learned_segments_bounded(self, uniform_points):
        index = ZMIndex(epsilon=16).build(uniform_points)
        assert index.stats.extra["segments"] >= 1

    def test_three_dimensional(self):
        pts = load_nd("uniform", 1000, seed=3, dims=3)
        index = ZMIndex(bits=10).build(pts)
        assert index.point_query(pts[13]) == 13
        lo = pts.min(axis=0)
        hi = lo + (pts.max(axis=0) - lo) * 0.4
        got = sorted(v for _, v in index.range_query(lo, hi))
        mask = np.all((pts >= lo) & (pts <= hi), axis=1)
        assert got == [int(i) for i in np.nonzero(mask)[0]]


class TestMLIndex:
    def test_pivot_count_respected(self, clustered_points):
        index = MLIndex(num_pivots=4).build(clustered_points)
        assert index._pivots.shape[0] == 4

    def test_stripes_are_disjoint(self, clustered_points):
        index = MLIndex(num_pivots=8).build(clustered_points)
        # Keys of partition i live in [i*stripe, (i+1)*stripe).
        partition = (index._keys // index._stripe).astype(int)
        assert partition.min() >= 0
        assert partition.max() < 8

    def test_range_has_no_duplicates(self, clustered_points):
        index = MLIndex(num_pivots=6).build(clustered_points)
        lo = clustered_points.min(axis=0)
        hi = clustered_points.max(axis=0)
        result = index.range_query(lo, hi)
        values = [v for _, v in result]
        assert len(values) == len(set(values)) == clustered_points.shape[0]

    def test_more_pivots_tighter_scans(self):
        pts = load_nd("clusters", 4000, seed=9)
        boxes = range_queries_nd(pts, 10, 0.001, seed=10)
        few = MLIndex(num_pivots=2).build(pts)
        many = MLIndex(num_pivots=24).build(pts)
        for idx in (few, many):
            idx.stats.reset_counters()
            for lo, hi in boxes:
                idx.range_query(lo, hi)
        assert many.stats.keys_scanned < few.stats.keys_scanned


class TestFlood:
    def test_equi_depth_flattening_balances_cells(self):
        pts = load_nd("skew", 5000, seed=4)
        flood = FloodIndex(columns_per_dim=8).build(pts)
        sizes = [len(vals) for _, (_, _, vals) in flood._cells.items()]
        # Quantile columns keep the largest cell within a small factor of
        # the mean (a uniform grid on skewed data would blow this up).
        assert max(sizes) < 12 * (sum(sizes) / len(sizes))

    def test_tune_reduces_cost(self):
        pts = load_nd("clusters", 5000, seed=5)
        boxes = range_queries_nd(pts, 30, 0.002, seed=6)
        flood = FloodIndex(columns_per_dim=4).build(pts)
        cost_before = flood._workload_cost(boxes)
        flood.tune(boxes, candidates=(4, 8, 16, 32, 64))
        cost_after = flood._workload_cost(boxes)
        assert cost_after <= cost_before

    def test_tuning_preserves_correctness(self):
        pts = load_nd("clusters", 3000, seed=7)
        boxes = range_queries_nd(pts, 10, 0.01, seed=8)
        flood = FloodIndex().build(pts)
        flood.tune(boxes)
        for lo, hi in boxes[:5]:
            got = sorted(v for _, v in flood.range_query(lo, hi))
            mask = np.all((pts >= lo) & (pts <= hi), axis=1)
            assert got == [int(i) for i in np.nonzero(mask)[0]]

    def test_sort_dim_configurable(self, uniform_points):
        flood = FloodIndex(sort_dim=0).build(uniform_points)
        assert flood.point_query(uniform_points[3]) == 3


class TestTsunami:
    def test_partitions_into_regions(self, clustered_points):
        index = TsunamiIndex(region_depth=3).build(clustered_points)
        assert index.num_regions > 1

    def test_regions_partition_the_data(self, clustered_points):
        index = TsunamiIndex(region_depth=2).build(clustered_points)
        total = sum(len(r.grid) for r in index._regions)
        assert total == clustered_points.shape[0]

    def test_beats_flood_on_correlated_data(self):
        from repro.data.spatial import correlated_points

        pts = correlated_points(6000, seed=11, rho=0.99)
        boxes = range_queries_nd(pts, 30, 0.001, seed=12)
        flood = FloodIndex(columns_per_dim=16).build(pts)
        tsunami = TsunamiIndex(region_depth=3, columns_per_dim=8).build(pts)
        for idx in (flood, tsunami):
            idx.stats.reset_counters()
            for lo, hi in boxes:
                idx.range_query(lo, hi)
        # The headline Tsunami result: less wasted scanning under
        # correlation.
        assert tsunami.stats.keys_scanned < flood.stats.keys_scanned


class TestQdTree:
    def test_block_size_respected(self, clustered_points):
        index = QdTreeIndex(min_block=64).build(clustered_points)
        stack = [index._root]
        while stack:
            node = stack.pop()
            if node.points is not None:
                assert node.points.shape[0] <= 2 * 64 or node.dim == -1
            else:
                stack.extend([node.left, node.right])

    def test_workload_cuts_touch_fewer_blocks(self):
        pts = load_nd("uniform", 6000, seed=13)
        # Queries concentrated on dimension 0 slices.
        boxes = []
        rng = np.random.default_rng(14)
        for _ in range(40):
            x = rng.uniform(pts[:, 0].min(), pts[:, 0].max())
            boxes.append((np.array([x, pts[:, 1].min()]),
                          np.array([x + 10.0, pts[:, 1].max()])))
        oblivious = QdTreeIndex(min_block=128).build(pts)
        aware = QdTreeIndex(min_block=128, workload=boxes).build(pts)
        touched_oblivious = 0
        touched_aware = 0
        for lo, hi in boxes:
            oblivious.range_query(lo, hi)
            touched_oblivious += oblivious.stats.extra["last_blocks_touched"]
            aware.range_query(lo, hi)
            touched_aware += aware.stats.extra["last_blocks_touched"]
        assert touched_aware <= touched_oblivious

    def test_block_count_reported(self, uniform_points):
        index = QdTreeIndex(min_block=100).build(uniform_points)
        assert index.num_blocks == index.stats.extra["blocks"] > 1


class TestLearnedKD:
    def test_picks_selective_dimension(self):
        rng = np.random.default_rng(15)
        # dim 0 wildly spread, dim 1 nearly constant: a thin slice in
        # dim 0 should be answered through dim 0's index.
        pts = np.column_stack([rng.uniform(0, 1e6, 3000), rng.uniform(0, 1.0, 3000)])
        index = LearnedKDIndex().build(pts)
        index.stats.reset_counters()
        index.range_query([100.0, 0.0], [200.0, 1.0])
        mask = (pts[:, 0] >= 100) & (pts[:, 0] <= 200)
        assert index.stats.keys_scanned <= int(mask.sum()) + 4

    def test_per_dim_segments_reported(self, uniform_points):
        index = LearnedKDIndex().build(uniform_points)
        assert len(index.stats.extra["segments_per_dim"]) == 2


class TestLISA:
    def test_shard_sizes_bounded_after_churn(self):
        pts = load_nd("clusters", 3000, seed=16)
        index = LISAIndex(shard_size=64).build(pts)
        rng = np.random.default_rng(17)
        for i, p in enumerate(rng.uniform(0, 1000, (2000, 2))):
            index.insert(p, i)
        assert all(len(s) <= 2 * 64 + 1 for s in index._shards)
        assert index.stats.extra.get("splits", 0) > 0

    def test_mapping_is_monotone_in_cells(self, uniform_points):
        index = LISAIndex(cells_per_dim=8).build(uniform_points)
        # Mapped values must respect cell rank order.
        m = [index._mapped(p) for p in uniform_points[:200]]
        ranks = [int(v) for v in m]
        for p, r in zip(uniform_points[:200], ranks):
            assert r == index._cell_rank(index._cell_coords(p))

    def test_shard_count_grows_with_data(self):
        small = LISAIndex(shard_size=128).build(load_nd("uniform", 500, seed=18))
        big = LISAIndex(shard_size=128).build(load_nd("uniform", 5000, seed=18))
        assert big.num_shards > small.num_shards


class TestSPRIG:
    def test_interpolation_search_corrections_bounded_on_uniform(self, uniform_points):
        index = SPRIGIndex(cells_per_dim=16).build(uniform_points)
        index.stats.reset_counters()
        for p in uniform_points[::37]:
            index.point_query(p)
        lookups = len(uniform_points[::37])
        # Uniform data: interpolation lands within a couple of cells.
        assert index.stats.corrections / lookups < 4

    def test_cells_reported(self, uniform_points):
        index = SPRIGIndex(cells_per_dim=8).build(uniform_points)
        assert 1 <= index.stats.extra["cells"] <= 64


class TestAIRTree:
    def test_router_reduces_node_visits(self, clustered_points):
        plain = RTreeIndex(max_entries=16).build(clustered_points)
        learned = AIRTreeIndex(max_entries=16).build(clustered_points)
        rng = np.random.default_rng(19)
        train = clustered_points[rng.integers(0, clustered_points.shape[0], 1500)]
        learned.train(train)
        queries = clustered_points[rng.integers(0, clustered_points.shape[0], 300)]
        plain.stats.reset_counters()
        learned.stats.reset_counters()
        for q in queries:
            assert plain.point_query(q) is not None
            assert learned.point_query(q) is not None
        assert learned.stats.nodes_visited < plain.stats.nodes_visited

    def test_untrained_router_falls_back(self, clustered_points):
        index = AIRTreeIndex().build(clustered_points)
        assert index.point_query(clustered_points[0]) == 0
        assert index.stats.extra.get("fallbacks", 0) > 0

    def test_correct_after_inserts_despite_stale_router(self, clustered_points):
        index = AIRTreeIndex().build(clustered_points)
        index.train(clustered_points[:500])
        index.insert([999.0, 999.0], "fresh")
        assert index.point_query([999.0, 999.0]) == "fresh"
        assert index.delete([999.0, 999.0])
        assert index.point_query([999.0, 999.0]) is None


class TestSpatialLBF:
    def test_no_false_negatives(self, clustered_points):
        flt = SpatialLearnedBloomFilter(bits_budget=clustered_points.shape[0] * 12)
        flt.build(clustered_points)
        assert all(flt.might_contain(p) for p in clustered_points)

    def test_far_negatives_rejected(self, clustered_points):
        flt = SpatialLearnedBloomFilter(bits_budget=clustered_points.shape[0] * 12)
        flt.build(clustered_points)
        rng = np.random.default_rng(20)
        far = rng.uniform(1e6, 2e6, (500, 2))
        assert flt.false_positive_rate(far) == 0.0

    def test_inside_fpr_reasonable(self, clustered_points):
        flt = SpatialLearnedBloomFilter(bits_budget=clustered_points.shape[0] * 12)
        flt.build(clustered_points)
        rng = np.random.default_rng(21)
        lo = clustered_points.min(axis=0)
        hi = clustered_points.max(axis=0)
        probes = rng.uniform(lo, hi, (2000, 2))
        members = {tuple(p) for p in clustered_points}
        negs = np.array([p for p in probes if tuple(p) not in members])
        assert flt.false_positive_rate(negs) < 0.5

    def test_adaptive_insert(self, clustered_points):
        flt = SpatialLearnedBloomFilter(bits_budget=clustered_points.shape[0] * 10)
        flt.build(clustered_points)
        fresh_inside = clustered_points.mean(axis=0) + 0.123
        flt.insert(fresh_inside)
        assert flt.might_contain(fresh_inside)
        fresh_outside = clustered_points.max(axis=0) + 500
        flt.insert(fresh_outside)
        assert flt.might_contain(fresh_outside)

    def test_empty_regions_answer_fast_no(self, clustered_points):
        flt = SpatialLearnedBloomFilter(bits_budget=65536, prefix_bits=6)
        flt.build(clustered_points)
        # Clustered data leaves most prefixes empty.
        assert flt.stats.extra["regions"] < (1 << 6)
