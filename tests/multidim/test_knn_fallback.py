"""Regression tests for the expanding-radius ``knn_query`` fallback.

The base-class fallback doubles a query box until it holds ``k``
verified neighbours.  Unclamped doubling overflows to ``inf`` (and then
``nan`` box bounds), and the final gather crashed conceptually on empty
candidate sets.  These tests pin the fixed behaviour on the degenerate
inputs that trip the old code: duplicate-only datasets (zero extent),
far-away query points, and ``k`` larger than the index.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import MULTI_DIM_FACTORIES

RNG = np.random.default_rng(5)
POINTS = RNG.uniform(0.0, 100.0, (60, 2))


def brute_force_knn(points: np.ndarray, q: np.ndarray, k: int) -> list[tuple[float, ...]]:
    order = np.argsort(np.linalg.norm(points - q, axis=1), kind="stable")
    return [tuple(points[i]) for i in order[:k]]


@pytest.mark.parametrize("name", sorted(MULTI_DIM_FACTORIES))
class TestKnnFallback:
    def test_k_larger_than_index_returns_everything(self, name):
        index = MULTI_DIM_FACTORIES[name]().build(POINTS[:4])
        got = index.knn_query([50.0, 50.0], k=10)
        assert sorted(p for p, _ in got) == sorted(tuple(p) for p in POINTS[:4])

    def test_far_query_point_still_finds_neighbours(self, name):
        index = MULTI_DIM_FACTORIES[name]().build(POINTS)
        q = np.array([1e6, -1e6])
        got = index.knn_query(q, k=3)
        assert len(got) == 3
        assert [p for p, _ in got] == brute_force_knn(POINTS, q, 3)

    def test_zero_extent_duplicates_dataset(self, name):
        # All points identical: data extent is 0, so any extent-derived
        # radius collapses and the radius clamp must still terminate.
        dup = np.full((8, 2), 42.0)
        index = MULTI_DIM_FACTORIES[name]().build(dup)
        # Some indexes collapse coincident points at build time, so the
        # reachable neighbour count is len(index), not 8.
        expect = min(3, len(index))
        got = index.knn_query([42.0, 42.0], k=3)
        assert len(got) == expect
        assert all(p == (42.0, 42.0) for p, _ in got)
        # Query away from the duplicate pile: must terminate without
        # overflow and return the pile, not crash on empty candidates.
        far = index.knn_query([43.0, 41.0], k=2)
        assert len(far) == min(2, len(index))
        assert all(p == (42.0, 42.0) for p, _ in far)

    def test_empty_candidates_returns_empty_list(self, name):
        index = MULTI_DIM_FACTORIES[name]().build(POINTS)
        assert index.knn_query([50.0, 50.0], k=0) == []

    def test_matches_brute_force_on_random_queries(self, name):
        index = MULTI_DIM_FACTORIES[name]().build(POINTS)
        for q in RNG.uniform(-20.0, 120.0, (10, 2)):
            got = index.knn_query(q, k=5)
            dists = [float(np.linalg.norm(np.asarray(p) - q)) for p, _ in got]
            expect = brute_force_knn(POINTS, q, 5)
            expect_d = [float(np.linalg.norm(np.asarray(p) - q)) for p in expect]
            # Distances must match even if equidistant points tie-break
            # differently between implementations.
            assert np.allclose(sorted(dists), expect_d)
