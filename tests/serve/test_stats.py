"""LatencyHistogram percentiles and ServerStats counter plumbing."""

import pytest

from repro.core.interfaces import IndexStats
from repro.serve import LatencyHistogram, ServerStats


class TestLatencyHistogram:
    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.percentile(50.0) == 0.0
        snap = hist.snapshot()
        assert snap["count"] == 0.0
        assert snap["mean_us"] == 0.0

    def test_percentiles_are_bucket_upper_bounds(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(1e-6)       # 1us -> first bucket
        hist.record(1e-3)           # 1ms outlier
        assert hist.percentile(50.0) == pytest.approx(1e-6)
        assert hist.percentile(99.0) == pytest.approx(1e-6)
        assert hist.percentile(100.0) >= 1e-3 / 2
        assert hist.snapshot()["max_us"] == pytest.approx(1000.0)

    def test_rejects_out_of_range_percentile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101.0)

    def test_merge_combines_observations(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        for _ in range(10):
            a.record(1e-6)
        for _ in range(10):
            b.record(1e-3)
        merged = a.merge(b)
        assert merged.total == 20
        assert merged.max_seconds == pytest.approx(1e-3)
        assert a.total == 10 and b.total == 10  # operands untouched

    def test_overflow_bucket_catches_huge_latencies(self):
        hist = LatencyHistogram()
        hist.record(1e9)
        assert hist.total == 1
        assert hist.percentile(50.0) > 0


class TestServerStats:
    def test_submit_and_done_counters(self):
        stats = ServerStats(num_shards=2)
        stats.record_submit(0, depth=3)
        stats.record_submit(1, depth=1)
        stats.record_done(1e-5)
        stats.record_done(2e-5, write=True)
        snap = stats.snapshot()
        assert snap["requests"] == 2
        assert snap["responses"] == 2
        assert snap["writes"] == 1
        assert snap["per_shard_requests"] == [1, 1]
        assert snap["queue_high_water"] == [3, 1]

    def test_batched_recorders_match_scalar_semantics(self):
        stats = ServerStats(num_shards=1)
        stats.record_submit_many(0, count=5, depth=5)
        stats.record_done_many([1e-6] * 4, writes=1)
        stats.record_batch(0, 4)
        snap = stats.snapshot()
        assert snap["requests"] == 5
        assert snap["responses"] == 4
        assert snap["writes"] == 1
        assert snap["avg_batch"] == 4.0
        assert snap["per_shard_batches"] == [1]
        assert snap["latency"]["count"] == 4.0

    def test_shed_and_cache_counters(self):
        stats = ServerStats(num_shards=1)
        stats.record_shed()
        stats.record_cache(hit=True)
        stats.record_cache(hit=False)
        snap = stats.snapshot()
        assert snap["shed"] == 1
        assert snap["requests"] == 1
        assert snap["cache_hits"] == 1
        assert snap["cache_misses"] == 1

    def test_snapshot_embeds_index_stats(self):
        stats = ServerStats(num_shards=1)
        folded = IndexStats(comparisons=7, size_bytes=128)
        snap = stats.snapshot(index_stats=folded)
        assert snap["index"]["comparisons"] == 7
        assert snap["index"]["size_bytes"] == 128

    def test_snapshot_without_index_stats_has_no_index_key(self):
        assert "index" not in ServerStats(num_shards=1).snapshot()
