"""Serve-suite guards: no test may leak a shared-memory segment.

Every ``repro_serve_*`` segment in ``/dev/shm`` is owned by exactly one
:class:`~repro.serve.mp.ProcessShardExecutor` (or a test acting as one);
a segment that outlives its test is a leak in the snapshot-retirement
path, so the guard fails the offending test rather than letting the
orphan accumulate across the suite (and across CI runs on shared
runners).
"""

from __future__ import annotations

import pytest

from repro.serve.shm import list_repro_segments


@pytest.fixture(autouse=True)
def shm_orphan_guard():
    before = set(list_repro_segments())
    yield
    leaked = sorted(set(list_repro_segments()) - before)
    assert not leaked, (
        f"test leaked shared-memory segments: {leaked} — every pack_state "
        "segment must be retired via release_segment before the test ends"
    )
