"""Re-partitioning: rebalance parity, atomic generation bumps, cache safety.

The load-bearing invariant: :meth:`ShardedStore.rebalance` swaps every
shard under all shard locks and bumps *all* generations in the same
critical section, so a result-cache entry keyed on any pre-rebalance
generation tuple becomes unreachable at once, and concurrent readers
never observe a half-moved partition.  This is the contract the
``repro.tune`` actuator relies on for every action it applies.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.baselines import SortedArrayIndex
from repro.bench.runner import MULTI_DIM_FACTORIES, MUTABLE_ONE_DIM_FACTORIES
from repro.serve import IndexServer, Op, Request, ShardedStore


def _keys(n=600):
    rng = np.random.default_rng(7)
    return np.unique(rng.uniform(0.0, 1e6, n))


class TestRebalanceParity:
    def test_answers_survive_a_skewed_sample_rebalance(self):
        keys = _keys()
        direct = SortedArrayIndex().build(keys)
        store = ShardedStore(SortedArrayIndex, num_shards=4).build(keys)
        # Re-fit boundaries to a sample concentrated in one decile.
        sample = np.linspace(0.0, 1e5, 512)
        version = store.rebalance(sample=sample)
        assert version == 1
        assert sum(store.shard_sizes()) == keys.size
        for key in keys[::7]:
            assert store.lookup(float(key)) == direct.lookup(float(key))
        lo, hi = 2e5, 8e5
        assert store.range_query_1d(lo, hi) == direct.range_query(lo, hi)

    def test_explicit_bounds_and_validation(self):
        keys = _keys()
        store = ShardedStore(SortedArrayIndex, num_shards=4).build(keys)
        store.rebalance(bounds=[1e5, 2e5, 3e5])
        assert store.bounds.tolist() == [1e5, 2e5, 3e5]
        with pytest.raises(ValueError):
            store.rebalance(bounds=[1.0, 2.0])  # needs num_shards - 1
        with pytest.raises(ValueError):
            store.rebalance(bounds=[3e5, 2e5, 1e5])  # must be sorted

    def test_multi_dim_rebalance_parity(self):
        rng = np.random.default_rng(11)
        pts = rng.uniform(0.0, 100.0, (400, 2))
        direct = MULTI_DIM_FACTORIES["zm-index"]().build(pts)
        store = ShardedStore(MULTI_DIM_FACTORIES["zm-index"],
                             num_shards=4).build(pts)
        store.rebalance(sample=rng.uniform(0.0, 30.0, (256, 2)))
        lo, hi = (10.0, 10.0), (60.0, 60.0)
        assert sorted(map(repr, store.range_query(lo, hi))) == \
            sorted(map(repr, direct.range_query(lo, hi)))

    def test_generation_bump_is_atomic_across_all_shards(self):
        store = ShardedStore(SortedArrayIndex, num_shards=4).build(_keys())
        before_gens = list(store.generations)
        before_version = store.bounds_version
        store.rebalance()
        assert list(store.generations) == [g + 1 for g in before_gens]
        assert store.bounds_version == before_version + 1

    def test_rebuild_and_retune_bump_only_their_shard(self):
        store = ShardedStore(MUTABLE_ONE_DIM_FACTORIES["dynamic-pgm"],
                             num_shards=3).build(_keys())
        before = list(store.generations)
        store.rebuild_shard(1)
        assert list(store.generations) == [before[0], before[1] + 1, before[2]]
        # SortedArray/dynamic-PGM have no tune hook: retune is a typed no-op.
        assert store.retune_shard(0, [((0.0,), (1.0,))]) is False
        assert store.generations[0] == before[0]


class TestResultCacheAcrossRebalance:
    """A cached read keyed on pre-rebalance generations must die with them."""

    def test_cached_entry_becomes_unreachable_after_rebalance(self):
        keys = _keys()
        server = IndexServer(SortedArrayIndex, num_shards=4,
                             cache_size=128).build(keys)
        try:
            probe = float(keys[5])
            expected = server.lookup(probe)          # miss, fills cache
            assert server.lookup(probe) == expected  # hit
            hits_before = server.stats()["cache"]["hits"]
            misses_before = server.stats()["cache"]["misses"]
            assert hits_before >= 1
            server.store.rebalance(sample=np.linspace(0.0, 1e5, 256))
            # Same key, same answer — but through a fresh generation
            # tuple, so it must MISS, not serve the dead entry.
            assert server.lookup(probe) == expected
            stats = server.stats()["cache"]
            assert stats["misses"] == misses_before + 1
            assert stats["hits"] == hits_before
        finally:
            server.close()

    def test_insert_after_rebalance_is_not_served_stale(self):
        keys = _keys()
        server = IndexServer(MUTABLE_ONE_DIM_FACTORIES["dynamic-pgm"],
                             num_shards=4, cache_size=128).build(keys)
        try:
            fresh_key = 123456.75
            assert server.lookup(fresh_key) is None   # caches the absence
            server.store.rebalance()
            server.insert(fresh_key, "after-rebalance")
            # The pre-rebalance "absent" entry is unreachable AND the
            # insert bumped the owning shard again: reads see the write.
            assert server.lookup(fresh_key) == "after-rebalance"
        finally:
            server.close()


class TestConcurrentReadsDuringRebalance:
    def test_readers_never_observe_a_half_moved_partition(self):
        keys = np.arange(0.0, 2000.0)
        values = [f"v{int(k)}" for k in keys]
        store = ShardedStore(SortedArrayIndex, num_shards=4).build(keys, values)
        stop = threading.Event()
        errors: list[str] = []

        def reader(seed: int) -> None:
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                k = float(rng.integers(0, 2000))
                got = store.lookup(k)
                if got != f"v{int(k)}":
                    errors.append(f"lookup({k}) -> {got!r}")
                    return

        readers = [threading.Thread(target=reader, args=(t,)) for t in range(4)]
        for thread in readers:
            thread.start()
        try:
            rng = np.random.default_rng(99)
            for _ in range(12):
                store.rebalance(sample=rng.uniform(0.0, 2000.0, 128))
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=10.0)
        assert not errors, errors
        assert store.bounds_version == 12


class TestProcessBackendRebalance:
    def test_windows_stay_correct_after_rebalance(self):
        keys = _keys(400)
        direct = SortedArrayIndex().build(keys)
        server = IndexServer(SortedArrayIndex, backend="process",
                             num_shards=2, cache_size=0,
                             max_delay=0.005).build(keys)
        try:
            probe = [float(k) for k in keys[::9]] + [7.5, -3.0]
            window = [Request(op=Op.LOOKUP, key=k) for k in probe]
            expected = [direct.lookup(k) for k in probe]
            assert server.serve_window(window) == expected
            server.store.rebalance(sample=np.linspace(0.0, 3e5, 128))
            # Provenance was cleared: workers must republish snapshots
            # and the parent must re-route before answering.
            assert server.serve_window(window) == expected
        finally:
            server.close()
