"""IndexServer / ShardedStore snapshot persistence and cold-start restore."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.artifact import ArtifactError
from repro.data import load_1d, load_nd
from repro.onedim.alex import ALEXIndex
from repro.onedim.rmi import RMIIndex
from repro.multidim.zm_index import ZMIndex
from repro.serve.server import IndexServer
from repro.serve.sharding import (
    STORE_SNAPSHOT_FORMAT,
    STORE_SNAPSHOT_VERSION,
    ShardedStore,
)


def _rmi():
    return RMIIndex()


def _zm():
    return ZMIndex()


def _alex():
    return ALEXIndex()


class TestStoreSnapshot:
    def test_round_trip_parity(self, tmp_path):
        keys = load_1d("lognormal", 2000, seed=31)
        store = ShardedStore(_rmi, num_shards=4)
        store.build(keys)
        store.save_snapshot(tmp_path / "snap")
        restored = ShardedStore.from_snapshot(tmp_path / "snap", factory=_rmi)
        sk = np.sort(keys)
        for i in range(0, 2000, 131):
            assert restored.lookup(float(sk[i])) == store.lookup(float(sk[i]))
        assert restored.num_shards == 4
        assert restored.generations == store.generations

    def test_store_json_schema(self, tmp_path):
        keys = load_1d("uniform", 500, seed=32)
        store = ShardedStore(_rmi, num_shards=2)
        store.build(keys)
        root = store.save_snapshot(tmp_path / "snap")
        meta = json.loads((root / "store.json").read_text())
        assert meta["format"] == STORE_SNAPSHOT_FORMAT
        assert meta["format_version"] == STORE_SNAPSHOT_VERSION
        assert meta["num_shards"] == 2
        assert len(meta["shards"]) == 2
        assert len(meta["generations"]) == 2
        assert "environment" in meta

    def test_restore_runs_no_build(self, tmp_path, monkeypatch):
        keys = load_1d("uniform", 800, seed=33)
        store = ShardedStore(_rmi, num_shards=4)
        store.build(keys)
        store.save_snapshot(tmp_path / "snap")

        def explode(self, *args, **kwargs):
            raise AssertionError("build() must not run on snapshot restore")

        monkeypatch.setattr(RMIIndex, "build", explode)
        restored = ShardedStore.from_snapshot(tmp_path / "snap", factory=_rmi)
        sk = np.sort(keys)
        assert restored.lookup(float(sk[17])) == 17

    def test_multi_dim_round_trip(self, tmp_path):
        pts = load_nd("clusters", 900, seed=34)
        store = ShardedStore(_zm, num_shards=4)
        store.build(pts)
        store.save_snapshot(tmp_path / "snap")
        restored = ShardedStore.from_snapshot(tmp_path / "snap", factory=_zm)
        for i in range(0, 900, 97):
            assert restored.point_query(pts[i]) == store.point_query(pts[i])
        assert restored.multi_dim

    def test_generation_continuity_across_restore(self, tmp_path):
        keys = load_1d("uniform", 600, seed=35)
        store = ShardedStore(_alex, num_shards=2)
        store.build(keys)
        store.insert(1e12, "late")  # bump one shard's generation
        gens = list(store.generations)
        assert any(g > 0 for g in gens)
        store.save_snapshot(tmp_path / "snap")
        restored = ShardedStore.from_snapshot(tmp_path / "snap", factory=_alex)
        assert restored.generations == gens
        assert restored.lookup(1e12) == "late"

    def test_snapshot_while_store_keeps_serving(self, tmp_path):
        keys = load_1d("uniform", 600, seed=36)
        store = ShardedStore(_alex, num_shards=2)
        store.build(keys)
        store.save_snapshot(tmp_path / "snap")
        # Writes after the snapshot do not alter what was captured.
        store.insert(5e11, "after-snap")
        restored = ShardedStore.from_snapshot(tmp_path / "snap", factory=_alex)
        assert restored.lookup(5e11) is None

    def test_rejects_foreign_directory(self, tmp_path):
        (tmp_path / "store.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(ArtifactError):
            ShardedStore.from_snapshot(tmp_path)

    def test_rejects_future_version(self, tmp_path):
        keys = load_1d("uniform", 200, seed=37)
        store = ShardedStore(_rmi, num_shards=2)
        store.build(keys)
        root = store.save_snapshot(tmp_path / "snap")
        meta = json.loads((root / "store.json").read_text())
        meta["format_version"] = STORE_SNAPSHOT_VERSION + 1
        (root / "store.json").write_text(json.dumps(meta))
        with pytest.raises(ArtifactError, match="newer than supported"):
            ShardedStore.from_snapshot(root)

    def test_rejects_missing_snapshot(self, tmp_path):
        with pytest.raises(ArtifactError):
            ShardedStore.from_snapshot(tmp_path / "nowhere")

    def test_restored_store_without_factory_serves_reads(self, tmp_path):
        keys = load_1d("uniform", 400, seed=38)
        store = ShardedStore(_rmi, num_shards=2)
        store.build(keys)
        store.save_snapshot(tmp_path / "snap")
        restored = ShardedStore.from_snapshot(tmp_path / "snap")
        sk = np.sort(keys)
        assert restored.lookup(float(sk[9])) == 9


class TestServerSnapshot:
    def test_four_shard_restore_without_build(self, tmp_path, monkeypatch):
        keys = load_1d("lognormal", 2000, seed=41)
        server = IndexServer(_rmi, num_shards=4, cache_size=64).build(keys)
        sk = np.sort(keys)
        expected = [server.lookup(float(sk[i])) for i in range(0, 2000, 149)]
        server.save_snapshot(tmp_path / "snap")
        server.close()

        def explode(self, *args, **kwargs):
            raise AssertionError("build() must not run on snapshot restore")

        monkeypatch.setattr(RMIIndex, "build", explode)
        restored = IndexServer.from_snapshot(tmp_path / "snap", factory=_rmi,
                                             cache_size=64)
        try:
            assert restored.store.num_shards == 4
            got = [restored.lookup(float(sk[i])) for i in range(0, 2000, 149)]
            assert got == expected
        finally:
            restored.close()

    def test_cache_generation_continuity(self, tmp_path):
        keys = load_1d("uniform", 800, seed=42)
        server = IndexServer(_alex, num_shards=2, cache_size=32).build(keys)
        server.insert(2e12, "bump")
        gens = list(server.store.generations)
        server.save_snapshot(tmp_path / "snap")
        server.close()
        restored = IndexServer.from_snapshot(tmp_path / "snap", factory=_alex,
                                             cache_size=32)
        try:
            assert list(restored.store.generations) == gens
            # Reads populate the cache under the restored generations; a
            # write then bumps them, making the cached entries unreachable.
            sk = np.sort(keys)
            assert restored.lookup(float(sk[3])) == 3
            assert restored.lookup(float(sk[3])) == 3
            assert restored.stats()["cache"]["hits"] >= 1
            restored.insert(3e12, "later")
            assert restored.lookup(3e12) == "later"
        finally:
            restored.close()

    def test_process_backend_restore_serves_from_artifacts(self, tmp_path):
        keys = load_1d("uniform", 1200, seed=43)
        server = IndexServer(_rmi, num_shards=2).build(keys)
        server.save_snapshot(tmp_path / "snap")
        server.close()
        restored = IndexServer.from_snapshot(tmp_path / "snap", factory=_rmi,
                                             backend="process")
        try:
            sk = np.sort(keys)
            for i in range(0, 1200, 173):
                assert restored.lookup(float(sk[i])) == i
        finally:
            restored.close()

    def test_multi_dim_server_round_trip(self, tmp_path):
        pts = load_nd("clusters", 700, seed=44)
        server = IndexServer(_zm, num_shards=2).build(pts)
        server.save_snapshot(tmp_path / "snap")
        server.close()
        restored = IndexServer.from_snapshot(tmp_path / "snap", factory=_zm)
        try:
            for i in range(0, 700, 83):
                assert restored.point_query(pts[i]) == i
        finally:
            restored.close()

    def test_restored_server_accepts_writes(self, tmp_path):
        keys = load_1d("uniform", 500, seed=45)
        server = IndexServer(_alex, num_shards=2).build(keys)
        server.save_snapshot(tmp_path / "snap")
        server.close()
        restored = IndexServer.from_snapshot(tmp_path / "snap", factory=_alex)
        try:
            restored.insert(7e11, "fresh")
            assert restored.lookup(7e11) == "fresh"
            assert restored.delete(7e11)
        finally:
            restored.close()
