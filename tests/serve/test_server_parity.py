"""Serving-path parity: IndexServer answers == direct scalar answers.

The acceptance property of the serving layer: for every E19 contender,
a random query workload answered through shards + coalescer + cache is
exactly what the bare index returns — including after inserts and
deletes on the mutable indexes, which exercises generation-based cache
invalidation.  Multi-d range results are compared as sorted multisets,
matching the repo-wide range contract (each index class has its own
internal result order).
"""

import numpy as np
import pytest

from repro.bench.runner import (
    MULTI_DIM_FACTORIES,
    MUTABLE_MULTI_DIM_FACTORIES,
    MUTABLE_ONE_DIM_FACTORIES,
    ONE_DIM_FACTORIES,
)
from repro.bench.serving import DEFAULT_E19_MULTI_DIM, DEFAULT_E19_ONE_DIM
from repro.serve import IndexServer


def _server(factory, data, **kwargs):
    kwargs.setdefault("num_shards", 3)
    kwargs.setdefault("cache_size", 128)
    return IndexServer(factory, **kwargs).build(data)


@pytest.mark.parametrize("name", DEFAULT_E19_ONE_DIM)
def test_one_dim_random_workload_parity(name):
    rng = np.random.default_rng(hash(name) % 2**32)
    keys = rng.uniform(0.0, 1e6, 800)
    direct = ONE_DIM_FACTORIES[name]().build(keys)
    server = _server(ONE_DIM_FACTORIES[name], keys)
    try:
        for _ in range(150):
            op = rng.integers(0, 3)
            if op == 0:
                key = float(rng.choice(keys)) if rng.random() < 0.7 \
                    else float(rng.uniform(-1e5, 2e6))
                assert server.lookup(key) == direct.lookup(key)
            elif op == 1:
                key = float(rng.choice(keys)) if rng.random() < 0.5 \
                    else float(rng.uniform(-1e5, 2e6))
                assert server.contains(key) == direct.contains(key)
            else:
                lo, hi = np.sort(rng.uniform(0.0, 1e6, 2))
                assert server.range_query_1d(lo, hi) == direct.range_query(lo, hi)
        assert server.stats()["cache"]["hits"] >= 0
    finally:
        server.close()


@pytest.mark.parametrize("name", DEFAULT_E19_MULTI_DIM)
def test_multi_dim_random_workload_parity(name):
    rng = np.random.default_rng(hash(name) % 2**32)
    pts = rng.uniform(0.0, 100.0, (700, 2))
    direct = MULTI_DIM_FACTORIES[name]().build(pts)
    server = _server(MULTI_DIM_FACTORIES[name], pts)
    try:
        for _ in range(80):
            op = rng.integers(0, 3)
            if op == 0:
                point = pts[int(rng.integers(0, len(pts)))] if rng.random() < 0.7 \
                    else rng.uniform(-10.0, 120.0, 2)
                assert server.point_query(point) == direct.point_query(point)
            elif op == 1:
                lo = rng.uniform(0.0, 90.0, 2)
                hi = lo + rng.uniform(0.5, 40.0, 2)
                assert sorted(server.range_query(lo, hi)) == sorted(direct.range_query(lo, hi))
            else:
                q = rng.uniform(0.0, 100.0, 2)
                k = int(rng.integers(1, 9))
                assert server.knn_query(q, k) == direct.knn_query(q, k)
    finally:
        server.close()


@pytest.mark.parametrize("name", sorted(set(MUTABLE_ONE_DIM_FACTORIES)
                                        & set(DEFAULT_E19_ONE_DIM)))
def test_mutable_one_dim_parity_after_writes(name):
    rng = np.random.default_rng(42)
    keys = rng.uniform(0.0, 1e6, 600)
    direct = MUTABLE_ONE_DIM_FACTORIES[name]().build(keys)
    server = _server(MUTABLE_ONE_DIM_FACTORIES[name], keys)
    try:
        inserted = []
        for step in range(120):
            op = rng.integers(0, 4)
            if op == 0:
                key = float(rng.uniform(0.0, 1e6))
                server.insert(key, f"w{step}")
                direct.insert(key, f"w{step}")
                inserted.append(key)
            elif op == 1 and inserted:
                key = inserted.pop(int(rng.integers(0, len(inserted))))
                assert server.delete(key) == direct.delete(key)
            else:
                pool = inserted if (inserted and rng.random() < 0.5) else keys
                key = float(rng.choice(pool))
                # The same read repeats across generations: a stale cache
                # entry from before a write would break this equality.
                assert server.lookup(key) == direct.lookup(key)
                assert server.lookup(key) == direct.lookup(key)
    finally:
        server.close()


@pytest.mark.parametrize("name", sorted(set(MUTABLE_MULTI_DIM_FACTORIES)
                                        & set(DEFAULT_E19_MULTI_DIM)))
def test_mutable_multi_dim_parity_after_writes(name):
    rng = np.random.default_rng(43)
    pts = rng.uniform(0.0, 100.0, (500, 2))
    direct = MUTABLE_MULTI_DIM_FACTORIES[name]().build(pts)
    server = _server(MUTABLE_MULTI_DIM_FACTORIES[name], pts)
    try:
        inserted = []
        for step in range(80):
            op = rng.integers(0, 4)
            if op == 0:
                point = tuple(rng.uniform(0.0, 100.0, 2))
                server.insert(point, f"w{step}")
                direct.insert(point, f"w{step}")
                inserted.append(point)
            elif op == 1 and inserted:
                point = inserted.pop(int(rng.integers(0, len(inserted))))
                assert server.delete(point) == direct.delete(point)
            elif op == 2:
                pool = inserted if (inserted and rng.random() < 0.5) else [tuple(p) for p in pts[:50]]
                point = pool[int(rng.integers(0, len(pool)))]
                assert server.point_query(point) == direct.point_query(point)
                assert server.point_query(point) == direct.point_query(point)
            else:
                lo = rng.uniform(0.0, 90.0, 2)
                hi = lo + rng.uniform(0.5, 30.0, 2)
                assert sorted(server.range_query(lo, hi)) == sorted(direct.range_query(lo, hi))
    finally:
        server.close()


def test_cache_serves_repeated_reads():
    rng = np.random.default_rng(5)
    keys = rng.uniform(0.0, 1e6, 400)
    server = _server(ONE_DIM_FACTORIES["rmi"], keys, cache_size=64)
    try:
        hot = float(keys[0])
        first = server.lookup(hot)
        for _ in range(5):
            assert server.lookup(hot) == first
        assert server.stats()["cache"]["hits"] >= 5
    finally:
        server.close()


def test_write_invalidates_cached_read():
    rng = np.random.default_rng(6)
    keys = rng.uniform(0.0, 1e6, 400)
    server = _server(MUTABLE_ONE_DIM_FACTORIES["alex"], keys, cache_size=64)
    try:
        key = 777.5
        assert server.lookup(key) is None
        assert server.lookup(key) is None           # cached miss
        server.insert(key, "fresh")
        assert server.lookup(key) == "fresh"        # generation bumped
    finally:
        server.close()


def test_overloaded_sync_call_raises_runtime_error():
    from repro.serve import Overloaded

    rng = np.random.default_rng(7)
    keys = rng.uniform(0.0, 1e6, 300)
    server = _server(ONE_DIM_FACTORIES["rmi"], keys, cache_size=0)
    try:
        # Force the shed path: a pre-resolved Overloaded future from submit.
        class _Shedding:
            def submit(self, request, callback=None):
                import concurrent.futures

                fut = concurrent.futures.Future()
                fut.set_result(Overloaded(depth=9))
                return fut

        real = server._coalescer
        server._coalescer = _Shedding()
        try:
            with pytest.raises(RuntimeError, match="overloaded"):
                server.lookup(float(keys[0]))
        finally:
            server._coalescer = real
    finally:
        server.close()
