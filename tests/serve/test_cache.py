"""ResultCache: LRU order, TTL expiry, disabled mode, counters."""

from repro.serve import ResultCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLRU:
    def test_hit_and_miss(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b", "default") == "default"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # refresh, not insert
        cache.put("c", 3)       # evicts b
        assert cache.get("a") == 10
        assert cache.get("b") is None
        assert len(cache) == 2

    def test_clear_drops_everything(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None


class TestTTL:
    def test_entries_expire_without_sleeping(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.0)
        assert cache.get("a") == 1
        clock.advance(2.0)
        assert cache.get("a") is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl=None, clock=clock)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == 1


class TestDisabled:
    def test_zero_capacity_disables_cache(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None


class TestSnapshot:
    def test_snapshot_reports_counters(self):
        cache = ResultCache(capacity=1)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.put("c", 3)       # evicts a
        snap = cache.snapshot()
        assert snap == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "expirations": 0,
        }
