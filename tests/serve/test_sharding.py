"""ShardedStore: routing, partitioning, and parity with unsharded indexes."""

import numpy as np
import pytest

from repro.baselines import SortedArrayIndex
from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES
from repro.core.interfaces import IndexStats
from repro.serve import Op, Request, ShardedStore


def _keys(n=2000, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 1e6, n)


def _points(n=2000, d=2, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 100.0, (n, d))


class TestConstruction:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedStore(SortedArrayIndex, num_shards=0)

    def test_rejects_non_index_factory(self):
        with pytest.raises(TypeError):
            ShardedStore(dict, num_shards=2).build(_keys())

    def test_rejects_fewer_keys_than_shards(self):
        with pytest.raises(ValueError):
            ShardedStore(SortedArrayIndex, num_shards=8).build(np.array([1.0, 2.0]))

    def test_query_before_build_raises(self):
        store = ShardedStore(SortedArrayIndex, num_shards=2)
        with pytest.raises(RuntimeError):
            store.lookup(1.0)

    def test_shard_sizes_partition_everything(self):
        keys = _keys(1000)
        store = ShardedStore(SortedArrayIndex, num_shards=4).build(keys)
        sizes = store.shard_sizes()
        assert len(sizes) == 4
        assert sum(sizes) == len(store) == 1000
        assert all(size > 0 for size in sizes)

    def test_single_shard_degenerates_to_one_index(self):
        keys = _keys(100)
        store = ShardedStore(SortedArrayIndex, num_shards=1).build(keys)
        assert store.shard_sizes() == [100]


class TestOneDimParity:
    @pytest.fixture(scope="class")
    def setup(self):
        keys = _keys(3000, seed=3)
        direct = SortedArrayIndex().build(keys)
        store = ShardedStore(SortedArrayIndex, num_shards=5).build(keys)
        return keys, direct, store

    def test_lookup_returns_global_ranks(self, setup):
        keys, direct, store = setup
        rng = np.random.default_rng(1)
        for key in rng.choice(keys, 100):
            assert store.lookup(key) == direct.lookup(key)

    def test_misses_are_none(self, setup):
        _, direct, store = setup
        assert store.lookup(-5.0) is None
        assert store.lookup(2e7) is None

    def test_contains(self, setup):
        keys, direct, store = setup
        assert store.contains(keys[7])
        assert not store.contains(-1.0)

    def test_range_spans_shard_boundaries(self, setup):
        keys, direct, store = setup
        rng = np.random.default_rng(2)
        for _ in range(20):
            lo, hi = np.sort(rng.choice(keys, 2))
            assert store.range_query_1d(lo, hi) == direct.range_query(lo, hi)

    def test_batch_ops_align_with_scalar(self, setup):
        keys, direct, store = setup
        rng = np.random.default_rng(3)
        probe = np.concatenate([rng.choice(keys, 50), rng.uniform(-10, 2e6, 50)])
        assert list(store.lookup_batch(probe)) == [store.lookup(k) for k in probe]
        assert list(store.contains_batch(probe)) == [store.contains(k) for k in probe]

    def test_duplicate_keys_keep_global_order(self):
        keys = np.array([5.0, 1.0, 5.0, 3.0, 5.0, 2.0, 4.0, 0.5])
        direct = SortedArrayIndex().build(keys)
        store = ShardedStore(SortedArrayIndex, num_shards=3).build(keys)
        assert store.range_query_1d(0.0, 6.0) == direct.range_query(0.0, 6.0)

    def test_explicit_values_partition_correctly(self):
        keys = _keys(200, seed=9)
        values = [f"v{i}" for i in range(len(keys))]
        direct = SortedArrayIndex().build(keys, values)
        store = ShardedStore(SortedArrayIndex, num_shards=4).build(keys, values)
        for key in keys[:50]:
            assert store.lookup(key) == direct.lookup(key)


class TestMultiDimParity:
    @pytest.fixture(scope="class", params=["zm-index", "grid", "kd-tree"])
    def setup(self, request):
        pts = _points(1500, seed=4)
        direct = MULTI_DIM_FACTORIES[request.param]().build(pts)
        store = ShardedStore(MULTI_DIM_FACTORIES[request.param], num_shards=4).build(pts)
        return pts, direct, store

    def test_point_queries(self, setup):
        pts, direct, store = setup
        rng = np.random.default_rng(5)
        for row in rng.integers(0, len(pts), 100):
            assert store.point_query(pts[row]) == direct.point_query(pts[row])
        assert store.point_query((-3.0, -3.0)) is None

    def test_range_queries_same_multiset(self, setup):
        pts, direct, store = setup
        rng = np.random.default_rng(6)
        for _ in range(15):
            lo = rng.uniform(0, 80, 2)
            hi = lo + rng.uniform(1, 30, 2)
            assert sorted(store.range_query(lo, hi)) == sorted(direct.range_query(lo, hi))

    def test_inverted_box_is_empty(self, setup):
        _, _, store = setup
        assert store.range_query((50.0, 50.0), (10.0, 10.0)) == []

    def test_knn_merges_to_global_top_k(self, setup):
        pts, direct, store = setup
        rng = np.random.default_rng(7)
        for _ in range(10):
            q = rng.uniform(0, 100, 2)
            assert store.knn_query(q, 7) == direct.knn_query(q, 7)
        assert store.knn_query(pts[0], 0) == []

    def test_point_query_batch(self, setup):
        pts, _, store = setup
        probe = np.vstack([pts[:40], np.full((5, 2), -1.0)])
        assert list(store.point_query_batch(probe)) == [
            store.point_query(p) for p in probe
        ]


class TestRouting:
    def test_route_covers_every_op(self):
        keys = _keys(500)
        store = ShardedStore(SortedArrayIndex, num_shards=4).build(keys)
        assert len(store.route(Request(op=Op.LOOKUP, key=1.0))) == 1
        assert len(store.route(Request(op=Op.CONTAINS, key=1.0))) == 1
        span = store.route(Request(op=Op.RANGE_1D, low=float(keys.min()),
                                   high=float(keys.max())))
        assert span == tuple(range(4))

    def test_knn_routes_to_all_shards(self):
        pts = _points(500)
        store = ShardedStore(MULTI_DIM_FACTORIES["zm-index"], num_shards=3).build(pts)
        assert store.route(Request(op=Op.KNN, point=(1.0, 1.0), k=3)) == (0, 1, 2)

    def test_range_pruning_skips_disjoint_shards(self):
        pts = _points(2000, seed=8)
        store = ShardedStore(MULTI_DIM_FACTORIES["zm-index"], num_shards=8).build(pts)
        tiny = store.route(Request(op=Op.RANGE_QUERY, low=(1.0, 1.0), high=(2.0, 2.0)))
        assert 0 < len(tiny) < 8

    def test_route_home_batch_matches_scalar_route(self):
        keys = _keys(800, seed=10)
        store = ShardedStore(SortedArrayIndex, num_shards=4).build(keys)
        requests = [Request(op=Op.LOOKUP, key=float(k)) for k in keys[:100]]
        requests.append(Request(op=Op.RANGE_1D, low=0.0, high=1e6))
        homes = store.route_home_batch(requests)
        assert homes == [store.route(r)[0] for r in requests]

    def test_skewed_data_builds_empty_shards_safely(self):
        keys = np.full(100, 42.0)
        store = ShardedStore(SortedArrayIndex, num_shards=4).build(keys)
        assert sum(store.shard_sizes()) == 100
        assert store.lookup(42.0) == SortedArrayIndex().build(keys).lookup(42.0)
        assert store.lookup(7.0) is None


class TestExecuteAndStats:
    def test_execute_rejects_unroutable_op(self):
        store = ShardedStore(SortedArrayIndex, num_shards=2).build(_keys(100))
        with pytest.raises(ValueError):
            store.execute_batch(0, Op.RANGE_1D, [Request(op=Op.RANGE_1D, low=0, high=1)])

    def test_execute_dispatches_by_op(self):
        keys = _keys(300, seed=11)
        store = ShardedStore(SortedArrayIndex, num_shards=2).build(keys)
        direct = SortedArrayIndex().build(keys)
        assert store.execute(Request(op=Op.LOOKUP, key=float(keys[0]))) == direct.lookup(keys[0])
        assert store.execute(Request(op=Op.CONTAINS, key=float(keys[0]))) is True

    def test_stats_fold_merges_all_shards(self):
        keys = _keys(400, seed=12)
        store = ShardedStore(SortedArrayIndex, num_shards=4).build(keys)
        for key in keys[:20]:
            store.lookup(key)
        folded = store.stats()
        assert isinstance(folded, IndexStats)
        per_shard = [shard.stats for shard in store.shards]
        assert folded.comparisons == sum(s.comparisons for s in per_shard)
        assert folded.size_bytes == sum(s.size_bytes for s in per_shard)

    def test_writes_on_immutable_factory_raise_typed_error(self):
        from repro.onedim import PGMIndex

        store = ShardedStore(PGMIndex, num_shards=2).build(_keys(200))
        with pytest.raises(TypeError, match="immutable"):
            store.insert(1.0, "x")
        with pytest.raises(TypeError, match="immutable"):
            store.delete(1.0)

    def test_insert_and_delete_bump_generation(self):
        keys = _keys(300, seed=13)
        store = ShardedStore(SortedArrayIndex, num_shards=2).build(keys)
        before = list(store.generations)
        store.insert(123.456, "x")
        after_insert = list(store.generations)
        assert sum(after_insert) == sum(before) + 1
        assert store.lookup(123.456) == "x"
        assert store.delete(123.456) is True
        assert sum(store.generations) == sum(before) + 2
        assert store.lookup(123.456) is None
