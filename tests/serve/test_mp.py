"""Process-backend tests: parity, snapshot freshness, fault containment.

The contract under test: ``backend="process"`` must be observationally
identical to the thread backend — same answers, same read-your-writes
ordering — with worker crashes surfacing as typed
:class:`~repro.serve.requests.WorkerError` responses (never a hung
window or a raw ``BrokenPipeError``) and zero shared-memory segments
left behind after ``close()``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.runner import (
    MULTI_DIM_FACTORIES,
    MUTABLE_ONE_DIM_FACTORIES,
    ONE_DIM_FACTORIES,
)
from repro.serve import IndexServer, Op, Request, WorkerError
from repro.serve.shm import list_repro_segments

N_SHARDS = 2


def _process_server(factory, data, **kwargs):
    kwargs.setdefault("num_shards", N_SHARDS)
    kwargs.setdefault("cache_size", 0)  # raw window path: batches hit workers
    kwargs.setdefault("max_delay", 0.005)
    return IndexServer(factory, backend="process", **kwargs).build(data)


def _wait_for_exit(proc, timeout=5.0):
    deadline = time.monotonic() + timeout
    while proc.is_alive() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert not proc.is_alive(), "worker did not exit in time"


@pytest.mark.parametrize("name", ["rmi", "pgm", "b+tree"])
def test_one_dim_window_parity(name):
    rng = np.random.default_rng(hash(name) % 2**32)
    keys = rng.uniform(0.0, 1e6, 700)
    direct = ONE_DIM_FACTORIES[name]().build(keys)
    with _process_server(ONE_DIM_FACTORIES[name], keys) as server:
        probe = [float(k) for k in rng.choice(keys, 60)]
        probe += [float(k) for k in rng.uniform(-1e5, 2e6, 20)]
        lookups = [Request(op=Op.LOOKUP, key=k) for k in probe]
        assert server.serve_window(lookups) == [direct.lookup(k) for k in probe]
        contains = [Request(op=Op.CONTAINS, key=k) for k in probe]
        assert server.serve_window(contains) == [direct.contains(k) for k in probe]
        assert server.stats()["backend"] == "process"


@pytest.mark.parametrize("name", ["zm-index", "grid"])
def test_multi_dim_window_parity(name):
    rng = np.random.default_rng(hash(name) % 2**32)
    pts = rng.uniform(0.0, 100.0, (500, 2))
    direct = MULTI_DIM_FACTORIES[name]().build(pts)
    with _process_server(MULTI_DIM_FACTORIES[name], pts) as server:
        probe = [tuple(map(float, pts[i])) for i in range(0, 500, 9)]
        probe += [tuple(map(float, p)) for p in rng.uniform(-5.0, 110.0, (15, 2))]
        window = [Request(op=Op.POINT_QUERY, point=p) for p in probe]
        assert server.serve_window(window) == [direct.point_query(p) for p in probe]


def test_read_your_writes_through_worker_batches():
    """A write republishes the shard snapshot before the next worker batch."""
    rng = np.random.default_rng(7)
    keys = rng.uniform(0.0, 1e6, 400)
    with _process_server(MUTABLE_ONE_DIM_FACTORIES["alex"], keys) as server:
        for step in range(5):
            new_key = 2e6 + step
            server.insert(new_key, f"v{step}")
            # A window with repeats keeps the run length >= 2, so the
            # lookups go to the worker process, not the scalar fallback.
            window = [Request(op=Op.LOOKUP, key=new_key)] * 4
            assert server.serve_window(window) == [f"v{step}"] * 4
        executor = server._executor
        assert executor is not None
        # After serving, every worker must have remapped to the store's
        # current generation — a stale snapshot never outlives a read.
        assert executor.worker_generations() == list(server.store.generations)


def test_stale_generation_republished_lazily():
    """Writes alone leave workers stale; the next dispatch syncs them."""
    rng = np.random.default_rng(8)
    keys = rng.uniform(0.0, 1e6, 300)
    with _process_server(MUTABLE_ONE_DIM_FACTORIES["b+tree"], keys) as server:
        executor = server._executor
        baseline = executor.worker_generations()
        for i in range(6):
            server.delete(float(keys[i]))
        # Republication is lazy: dispatching the window (not the write
        # itself) is what remaps the worker, and the remap happens
        # *before* the batch executes.
        probe = [Request(op=Op.CONTAINS, key=float(keys[i])) for i in range(6)] * 2
        values = server.serve_window(probe)
        assert values == [False] * 12
        synced = executor.worker_generations()
        assert synced == list(server.store.generations)
        assert synced != baseline


def test_worker_crash_sheds_window_as_typed_responses():
    rng = np.random.default_rng(9)
    keys = rng.uniform(0.0, 1e6, 300)
    with _process_server(ONE_DIM_FACTORIES["rmi"], keys) as server:
        executor = server._executor
        shard = 0
        proc = executor._procs[shard]
        executor.debug_crash(shard)
        _wait_for_exit(proc)
        # Disable the pre-dispatch liveness probe so the window is
        # committed to the dead worker — the mid-flight death path.
        executor._guard_alive = lambda s: None
        shard_keys = [float(k) for k in keys
                      if server.store.route(Request(op=Op.LOOKUP, key=float(k)))[0] == shard]
        window = [Request(op=Op.LOOKUP, key=k) for k in shard_keys[:8]]
        values = server.serve_window(window)
        assert len(values) == 8
        assert all(isinstance(v, WorkerError) for v in values)
        assert all(v.shard == shard and not v.ok for v in values)
        # The executor restarted the worker behind the scenes; once the
        # probe is back the shard serves correct answers again.
        del executor._guard_alive  # restore the class implementation
        assert server.stats()["worker_restarts"] >= 1
        direct = [server.lookup(k) for k in shard_keys[:4]]
        assert all(v is not None for v in direct)


def test_dead_worker_restarted_before_dispatch_serves_cleanly():
    """The liveness probe path: a crash between windows is invisible."""
    rng = np.random.default_rng(10)
    keys = rng.uniform(0.0, 1e6, 300)
    direct = ONE_DIM_FACTORIES["pgm"]().build(keys)
    with _process_server(ONE_DIM_FACTORIES["pgm"], keys) as server:
        executor = server._executor
        proc = executor._procs[1]
        executor.debug_crash(1)
        _wait_for_exit(proc)
        probe = [float(k) for k in rng.choice(keys, 24)]
        window = [Request(op=Op.LOOKUP, key=k) for k in probe]
        assert server.serve_window(window) == [direct.lookup(k) for k in probe]
        assert server.stats()["worker_restarts"] == 1


def test_worker_query_costs_merge_into_server_stats():
    rng = np.random.default_rng(11)
    keys = rng.uniform(0.0, 1e6, 400)
    with _process_server(ONE_DIM_FACTORIES["rmi"], keys) as server:
        before = server.stats()["index"]
        window = [Request(op=Op.LOOKUP, key=float(k))
                  for k in rng.choice(keys, 64)]
        server.serve_window(window)
        after = server.stats()["index"]
        # The batch ran in worker processes — the parent executed none of
        # these lookups, so any counter growth proves the pipe drain
        # merged worker-side deltas into the server snapshot.
        assert after["model_predictions"] > before["model_predictions"]


def test_close_releases_every_segment_and_is_idempotent():
    rng = np.random.default_rng(12)
    keys = rng.uniform(0.0, 1e6, 200)
    server = _process_server(ONE_DIM_FACTORIES["pgm"], keys)
    try:
        assert len(list_repro_segments()) >= N_SHARDS
    finally:
        server.close()
    assert list_repro_segments() == []
    server.close()  # second close is a no-op


def test_thread_backend_never_spawns_workers_or_segments():
    rng = np.random.default_rng(13)
    keys = rng.uniform(0.0, 1e6, 200)
    with IndexServer(ONE_DIM_FACTORIES["pgm"], num_shards=2,
                     backend="thread").build(keys) as server:
        assert server._executor is None
        assert list_repro_segments() == []
        assert server.stats()["backend"] == "thread"


def test_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        IndexServer(ONE_DIM_FACTORIES["pgm"], backend="greenlet")
