"""Coalescer edge cases: empty flush, batch parity, shedding, determinism."""

import numpy as np
import pytest

from repro.baselines import SortedArrayIndex
from repro.serve import (
    Coalescer,
    IndexServer,
    Op,
    Overloaded,
    Request,
    ServerStats,
    ShardedStore,
    make_workload,
    run_closed_loop,
)


def _fixture(num_shards=2, **kwargs):
    keys = np.random.default_rng(0).uniform(0.0, 1e6, 500)
    store = ShardedStore(SortedArrayIndex, num_shards=num_shards).build(keys)
    stats = ServerStats(num_shards)
    return keys, store, stats, Coalescer(store, stats, **kwargs)


class TestFlush:
    def test_empty_flush_window_is_a_noop(self):
        _, _, stats, coalescer = _fixture()
        assert coalescer.flush() == 0
        assert stats.responses == 0
        assert coalescer.queue_depths() == [0, 0]

    def test_flush_drains_all_shards(self):
        keys, _, stats, coalescer = _fixture()
        futures = [
            coalescer.submit(Request(op=Op.LOOKUP, key=float(k))) for k in keys[:20]
        ]
        assert coalescer.flush() == 20
        assert stats.responses == 20
        assert all(f.done() for f in futures)

    def test_flush_single_shard_only(self):
        keys, store, _, coalescer = _fixture()
        by_shard = {0: [], 1: []}
        for k in keys[:40]:
            by_shard[store.route_key(float(k))].append(k)
        for k in keys[:40]:
            coalescer.submit(Request(op=Op.LOOKUP, key=float(k)))
        assert coalescer.flush(shard=0) == len(by_shard[0])
        assert coalescer.queue_depths()[0] == 0
        assert coalescer.queue_depths()[1] == len(by_shard[1])


class TestBatchParity:
    def test_single_request_batch_matches_scalar(self):
        keys, store, _, coalescer = _fixture()
        direct = SortedArrayIndex().build(keys)
        fut = coalescer.submit(Request(op=Op.LOOKUP, key=float(keys[3])))
        assert coalescer.flush() == 1
        assert fut.result().value == direct.lookup(keys[3])

    def test_full_batch_matches_scalar_loop(self):
        keys, _, stats, coalescer = _fixture(max_batch=64)
        direct = SortedArrayIndex().build(keys)
        probe = list(keys[:50]) + [-1.0, 2e9]
        futures = [
            coalescer.submit(Request(op=Op.LOOKUP, key=float(k))) for k in probe
        ]
        coalescer.flush()
        assert [f.result().value for f in futures] == [direct.lookup(k) for k in probe]
        assert stats.batches > 0

    def test_mixed_op_runs_split_but_preserve_order(self):
        keys, store, _, coalescer = _fixture(num_shards=1, max_batch=64)
        key = 123.456
        futures = [
            coalescer.submit(Request(op=Op.LOOKUP, key=key)),
            coalescer.submit(Request(op=Op.INSERT, key=key, value="w")),
            coalescer.submit(Request(op=Op.LOOKUP, key=key)),
        ]
        coalescer.flush()
        assert futures[0].result().value is None
        assert futures[2].result().value == "w"

    def test_contains_and_lookup_runs_coalesce_separately(self):
        keys, _, stats, coalescer = _fixture(num_shards=1, max_batch=64)
        futs = [coalescer.submit(Request(op=Op.LOOKUP, key=float(k))) for k in keys[:5]]
        futs += [coalescer.submit(Request(op=Op.CONTAINS, key=float(k))) for k in keys[:5]]
        coalescer.flush()
        assert stats.batches == 2
        assert all(isinstance(f.result().value, bool) for f in futs[5:])


class TestShedding:
    def test_overload_returns_overloaded_response_not_exception(self):
        keys, _, stats, coalescer = _fixture(num_shards=1, capacity=2)
        futures = [
            coalescer.submit(Request(op=Op.LOOKUP, key=float(k))) for k in keys[:5]
        ]
        coalescer.flush()
        results = [f.result() for f in futures]
        shed = [r for r in results if isinstance(r, Overloaded)]
        assert len(shed) == 3
        assert all(not response.ok for response in shed)
        assert all(response.depth == 2 for response in shed)
        assert stats.shed == 3

    def test_window_submission_sheds_the_overflow_slots(self):
        keys, _, stats, coalescer = _fixture(num_shards=1, capacity=3)
        window = coalescer.submit_window(
            [Request(op=Op.LOOKUP, key=float(k)) for k in keys[:8]]
        )
        coalescer.flush()
        results = window.wait()
        assert sum(isinstance(v, Overloaded) for v in results) == 5
        assert stats.shed == 5

    def test_accepted_requests_still_complete_after_shed(self):
        keys, _, _, coalescer = _fixture(num_shards=1, capacity=1)
        direct = SortedArrayIndex().build(keys)
        first = coalescer.submit(Request(op=Op.LOOKUP, key=float(keys[0])))
        second = coalescer.submit(Request(op=Op.LOOKUP, key=float(keys[1])))
        coalescer.flush()
        assert first.result().value == direct.lookup(keys[0])
        assert isinstance(second.result(), Overloaded)


class TestValidation:
    def test_rejects_bad_window_parameters(self):
        keys, store, stats, _ = _fixture()
        with pytest.raises(ValueError):
            Coalescer(store, stats, max_batch=0)
        with pytest.raises(ValueError):
            Coalescer(store, stats, capacity=0)


class TestThreadedDeterminism:
    def test_eight_thread_stress_is_deterministic(self):
        keys = np.random.default_rng(1).uniform(0.0, 1e6, 2000)
        requests = make_workload("zipfian", keys, 3000, seed=7)

        def drive():
            server = IndexServer(
                SortedArrayIndex, num_shards=4, max_batch=128, max_delay=0.001
            ).build(keys)
            try:
                return run_closed_loop(server, requests, clients=8, pipeline=32)
            finally:
                server.close()

        first = drive()
        second = drive()
        assert first["shed"] == second["shed"] == 0
        assert first["values"] == second["values"]

    def test_worker_drain_matches_direct_answers(self):
        keys = np.random.default_rng(2).uniform(0.0, 1e6, 1000)
        direct = SortedArrayIndex().build(keys)
        requests = [Request(op=Op.LOOKUP, key=float(k)) for k in keys[:200]]
        server = IndexServer(SortedArrayIndex, num_shards=3).build(keys)
        try:
            result = run_closed_loop(server, requests, clients=4, pipeline=16)
        finally:
            server.close()
        expected = [direct.lookup(r.key) for r in requests]
        flat = {}
        for client, chunk in enumerate(result["values"]):
            for i, value in enumerate(chunk):
                flat[client + 4 * i] = value
        assert [flat[i] for i in range(len(requests))] == expected


class TestClose:
    """Shutdown ordering: nothing queued is ever dropped, close is reusable."""

    def test_close_without_start_drains_queue_synchronously(self):
        keys, _, stats, coalescer = _fixture()
        direct = SortedArrayIndex().build(keys)
        futures = [
            coalescer.submit(Request(op=Op.LOOKUP, key=float(k))) for k in keys[:20]
        ]
        assert coalescer.close() == 20  # the closer served every leftover
        for key, fut in zip(keys[:20], futures):
            assert fut.result(timeout=5.0).value == direct.lookup(key)
        assert stats.responses == 20

    def test_close_with_workers_resolves_every_future(self):
        keys, _, _, coalescer = _fixture(max_batch=8, max_delay=0.001)
        coalescer.start()
        futures = [
            coalescer.submit(Request(op=Op.LOOKUP, key=float(k))) for k in keys[:100]
        ]
        coalescer.close()
        assert all(f.done() for f in futures)
        assert not any(isinstance(f.result(), Overloaded) for f in futures)

    def test_close_is_idempotent(self):
        _, _, _, coalescer = _fixture()
        coalescer.start()
        coalescer.close()
        assert coalescer.close() == 0
        assert coalescer.queue_depths() == [0, 0]

    def test_submit_after_close_raises(self):
        keys, _, _, coalescer = _fixture()
        coalescer.close()
        with pytest.raises(RuntimeError, match="closed"):
            coalescer.submit(Request(op=Op.LOOKUP, key=float(keys[0])))
        with pytest.raises(RuntimeError, match="closed"):
            coalescer.submit_many(
                [Request(op=Op.LOOKUP, key=float(keys[0]))]
            )

    def test_start_reopens_a_closed_coalescer(self):
        keys, _, _, coalescer = _fixture(max_batch=8, max_delay=0.001)
        direct = SortedArrayIndex().build(keys)
        coalescer.start()
        coalescer.close()
        coalescer.start()
        fut = coalescer.submit(Request(op=Op.LOOKUP, key=float(keys[3])))
        assert fut.result(timeout=5.0).value == direct.lookup(keys[3])
        coalescer.close()

    def test_server_close_orders_coalescer_before_executor(self):
        """IndexServer.close() is idempotent and leaves no pending futures."""
        keys = np.random.default_rng(1).uniform(0.0, 1e6, 300)
        server = IndexServer(SortedArrayIndex, num_shards=2, max_batch=16,
                             max_delay=0.001).build(keys)
        futures = [
            server.submit(Request(op=Op.LOOKUP, key=float(k))) for k in keys[:50]
        ]
        server.close()
        assert all(f.done() for f in futures)
        server.close()  # idempotent
