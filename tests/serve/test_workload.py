"""Workload generators: determinism, ratios, registry; driver validation."""

import numpy as np
import pytest

from repro.baselines import SortedArrayIndex
from repro.serve import (
    IndexServer,
    Op,
    WORKLOADS,
    make_workload,
    run_closed_loop,
)
from repro.serve.workload import (
    drifting,
    drifting_phases,
    mixed,
    read_heavy,
    write_heavy,
    zipfian_hot_key,
)


def _keys(n=500, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 1e6, n)


def _points(n=500, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 100.0, (n, 2))


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_same_seed_same_requests(self, name):
        keys = _keys()
        assert make_workload(name, keys, 200, seed=9) == \
            make_workload(name, keys, 200, seed=9)

    def test_different_seeds_differ(self):
        keys = _keys()
        assert make_workload("mixed", keys, 200, seed=1) != \
            make_workload("mixed", keys, 200, seed=2)

    def test_multi_dim_requests_carry_points(self):
        pts = _points()
        requests = make_workload("read-heavy", pts, 100, seed=3, multi_dim=True)
        reads = [r for r in requests if r.op is Op.POINT_QUERY]
        assert reads and all(len(r.point) == 2 for r in reads)


class TestRatios:
    def test_read_heavy_is_mostly_reads(self):
        requests = read_heavy(_keys(), 2000, seed=4)
        reads = sum(r.op is Op.LOOKUP for r in requests)
        assert 0.92 < reads / len(requests) < 0.98

    def test_write_heavy_is_mostly_inserts(self):
        requests = write_heavy(_keys(), 2000, seed=4)
        writes = sum(r.op is Op.INSERT for r in requests)
        assert 0.75 < writes / len(requests) < 0.85

    def test_mixed_is_balanced(self):
        requests = mixed(_keys(), 2000, seed=4)
        reads = sum(r.op is Op.LOOKUP for r in requests)
        assert 0.45 < reads / len(requests) < 0.55

    def test_zipfian_is_read_only_and_skewed(self):
        keys = _keys()
        requests = zipfian_hot_key(keys, 2000, seed=4)
        assert all(r.op is Op.LOOKUP for r in requests)
        counts = {}
        for r in requests:
            counts[r.key] = counts.get(r.key, 0) + 1
        # The hottest key should dominate a uniform draw by a wide margin.
        assert max(counts.values()) > 2000 / len(keys) * 10

    def test_inserts_stay_inside_data_domain(self):
        keys = _keys()
        for r in write_heavy(keys, 500, seed=5):
            if r.op is Op.INSERT:
                assert keys.min() <= r.key <= keys.max()


class TestRegistry:
    def test_unknown_workload_raises_with_choices(self):
        with pytest.raises(KeyError, match="no-such"):
            make_workload("no-such", _keys(), 10)

    def test_registry_has_the_five_named_workloads(self):
        assert set(WORKLOADS) == {"read-heavy", "write-heavy", "mixed",
                                  "zipfian", "drifting"}


class TestDrifting:
    """The E23 adversary: moving hotspot, flipping mix, dwell, background."""

    def _bands(self, phases):
        """Read-key span per phase (inserts excluded: they sample the band)."""
        spans = []
        for reqs in phases:
            keys = [r.key for r in reqs if r.op is Op.LOOKUP]
            spans.append((min(keys), max(keys)))
        return spans

    def test_same_seed_is_fully_deterministic(self):
        keys = _keys()
        a = drifting(keys, 600, seed=42, background=0.2, dwell=2)
        b = drifting(keys, 600, seed=42, background=0.2, dwell=2)
        assert [(r.op, r.key, r.value) for r in a] == \
            [(r.op, r.key, r.value) for r in b]
        c = drifting(keys, 600, seed=43, background=0.2, dwell=2)
        assert [(r.op, r.key) for r in a] != [(r.op, r.key) for r in c]

    def test_hotspot_moves_between_phases(self):
        keys = np.sort(_keys(2000))
        phases = drifting_phases(keys, 3000, seed=1, phases=6,
                                 band_frac=0.2, write_ratios=(0.0,))
        spans = self._bands(phases)
        # Every phase reads a narrow band, and consecutive phases read
        # different bands (positions are a seeded permutation).
        for lo, hi in spans:
            assert hi - lo < (keys[-1] - keys[0]) * 0.5
        assert len(set(spans)) == 6

    def test_dwell_holds_each_band_for_consecutive_phases(self):
        keys = np.sort(_keys(2000))
        phases = drifting_phases(keys, 3000, seed=2, phases=6, dwell=2,
                                 band_frac=0.2, write_ratios=(0.0,))
        span = keys[-1] - keys[0]
        mids = [float(np.median([r.key for r in reqs if r.op is Op.LOOKUP]))
                for reqs in phases]
        # Paired phases read the SAME band; the three pairs read
        # three different bands.
        for a, b in ((0, 1), (2, 3), (4, 5)):
            assert abs(mids[a] - mids[b]) < span * 0.05
        pair_mids = [mids[0], mids[2], mids[4]]
        for i in range(3):
            for j in range(i + 1, 3):
                assert abs(pair_mids[i] - pair_mids[j]) > span * 0.1

    def test_write_ratios_cycle_per_phase(self):
        keys = _keys(2000)
        phases = drifting_phases(keys, 4000, seed=3, phases=4,
                                 write_ratios=(0.7, 0.02))
        fracs = [sum(r.op is Op.INSERT for r in reqs) / len(reqs)
                 for reqs in phases]
        assert fracs[0] > 0.5 and fracs[2] > 0.5   # burst phases
        assert fracs[1] < 0.1 and fracs[3] < 0.1   # analyze phases

    def test_background_reads_escape_the_band(self):
        keys = np.sort(_keys(2000))
        banded = drifting_phases(keys, 2000, seed=4, phases=1,
                                 band_frac=0.1, write_ratios=(0.0,),
                                 background=0.0)
        mixed_in = drifting_phases(keys, 2000, seed=4, phases=1,
                                   band_frac=0.1, write_ratios=(0.0,),
                                   background=0.5)
        span = keys[-1] - keys[0]
        lo, hi = self._bands(banded)[0]
        assert hi - lo < span * 0.3
        lo, hi = self._bands(mixed_in)[0]
        assert hi - lo > span * 0.6  # uniform probes cover the keyspace

    def test_writes_land_inside_the_current_band(self):
        keys = np.sort(_keys(2000))
        phases = drifting_phases(keys, 2000, seed=5, phases=2, dwell=1,
                                 band_frac=0.2, write_ratios=(0.5,),
                                 background=0.0)
        span = keys[-1] - keys[0]
        for reqs in phases:
            read_lo = min(r.key for r in reqs if r.op is Op.LOOKUP)
            read_hi = max(r.key for r in reqs if r.op is Op.LOOKUP)
            inserted = [r.key for r in reqs if r.op is Op.INSERT]
            # Inserts draw uniformly over the band; observed reads are a
            # zipf sample of it, so allow a small edge margin.
            assert min(inserted) >= read_lo - span * 0.05
            assert max(inserted) <= read_hi + span * 0.05
            assert max(inserted) - min(inserted) < span * 0.35

    def test_rejects_degenerate_parameters(self):
        keys = _keys(100)
        with pytest.raises(ValueError):
            drifting_phases(keys, 100, phases=0)
        with pytest.raises(ValueError):
            drifting_phases(keys, 100, band_frac=0.0)
        with pytest.raises(ValueError):
            drifting_phases(keys, 100, write_ratios=())
        with pytest.raises(ValueError):
            drifting_phases(keys, 100, background=1.5)
        with pytest.raises(ValueError):
            drifting_phases(keys, 100, dwell=0)

    def test_multi_dim_phases_carry_points(self):
        pts = _points(800)
        phases = drifting_phases(pts, 800, seed=6, multi_dim=True, phases=2,
                                 write_ratios=(0.3,))
        ops = {r.op for reqs in phases for r in reqs}
        assert ops <= {Op.POINT_QUERY, Op.INSERT}
        assert all(r.point is not None for reqs in phases for r in reqs)


class TestDriver:
    def test_rejects_bad_client_and_pipeline_counts(self):
        keys = _keys(100)
        server = IndexServer(SortedArrayIndex, num_shards=2).build(keys)
        try:
            with pytest.raises(ValueError):
                run_closed_loop(server, [], clients=0)
            with pytest.raises(ValueError):
                run_closed_loop(server, [], clients=2, pipeline=0)
        finally:
            server.close()

    def test_driver_accounts_for_every_request(self):
        keys = _keys(400)
        requests = make_workload("read-heavy", keys, 600, seed=6)
        server = IndexServer(SortedArrayIndex, num_shards=2).build(keys)
        try:
            result = run_closed_loop(server, requests, clients=3, pipeline=16)
        finally:
            server.close()
        assert result["completed"] + result["shed"] == len(requests)
        assert result["shed"] == 0
        assert result["ops_per_s"] > 0
        assert result["client_latency"]["count"] > 0
        assert sum(len(chunk) for chunk in result["values"]) == len(requests)

    def test_write_workload_on_immutable_factory_reraises_in_driver(self):
        from repro.onedim import PGMIndex

        keys = _keys(300)
        requests = make_workload("write-heavy", keys, 64, seed=8)
        server = IndexServer(PGMIndex, num_shards=2).build(keys)
        try:
            with pytest.raises(TypeError, match="immutable"):
                run_closed_loop(server, requests, clients=2, pipeline=8)
        finally:
            server.close()

    def test_shed_requests_are_counted_not_raised(self):
        from repro.serve import Overloaded

        class _SheddingServer:
            """Stands in for an IndexServer whose queues are always full."""

            def serve_window(self, window):
                return [Overloaded(depth=99) for _ in window]

        keys = _keys(300)
        requests = make_workload("zipfian", keys, 120, seed=7)
        result = run_closed_loop(
            _SheddingServer(), requests, clients=2, pipeline=16, batch_submit=True
        )
        assert result["shed"] == len(requests)
        assert result["completed"] == 0
        assert result["ops_per_s"] == 0.0
