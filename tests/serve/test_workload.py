"""Workload generators: determinism, ratios, registry; driver validation."""

import numpy as np
import pytest

from repro.baselines import SortedArrayIndex
from repro.serve import (
    IndexServer,
    Op,
    WORKLOADS,
    make_workload,
    run_closed_loop,
)
from repro.serve.workload import mixed, read_heavy, write_heavy, zipfian_hot_key


def _keys(n=500, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 1e6, n)


def _points(n=500, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 100.0, (n, 2))


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_same_seed_same_requests(self, name):
        keys = _keys()
        assert make_workload(name, keys, 200, seed=9) == \
            make_workload(name, keys, 200, seed=9)

    def test_different_seeds_differ(self):
        keys = _keys()
        assert make_workload("mixed", keys, 200, seed=1) != \
            make_workload("mixed", keys, 200, seed=2)

    def test_multi_dim_requests_carry_points(self):
        pts = _points()
        requests = make_workload("read-heavy", pts, 100, seed=3, multi_dim=True)
        reads = [r for r in requests if r.op is Op.POINT_QUERY]
        assert reads and all(len(r.point) == 2 for r in reads)


class TestRatios:
    def test_read_heavy_is_mostly_reads(self):
        requests = read_heavy(_keys(), 2000, seed=4)
        reads = sum(r.op is Op.LOOKUP for r in requests)
        assert 0.92 < reads / len(requests) < 0.98

    def test_write_heavy_is_mostly_inserts(self):
        requests = write_heavy(_keys(), 2000, seed=4)
        writes = sum(r.op is Op.INSERT for r in requests)
        assert 0.75 < writes / len(requests) < 0.85

    def test_mixed_is_balanced(self):
        requests = mixed(_keys(), 2000, seed=4)
        reads = sum(r.op is Op.LOOKUP for r in requests)
        assert 0.45 < reads / len(requests) < 0.55

    def test_zipfian_is_read_only_and_skewed(self):
        keys = _keys()
        requests = zipfian_hot_key(keys, 2000, seed=4)
        assert all(r.op is Op.LOOKUP for r in requests)
        counts = {}
        for r in requests:
            counts[r.key] = counts.get(r.key, 0) + 1
        # The hottest key should dominate a uniform draw by a wide margin.
        assert max(counts.values()) > 2000 / len(keys) * 10

    def test_inserts_stay_inside_data_domain(self):
        keys = _keys()
        for r in write_heavy(keys, 500, seed=5):
            if r.op is Op.INSERT:
                assert keys.min() <= r.key <= keys.max()


class TestRegistry:
    def test_unknown_workload_raises_with_choices(self):
        with pytest.raises(KeyError, match="no-such"):
            make_workload("no-such", _keys(), 10)

    def test_registry_has_the_four_named_workloads(self):
        assert set(WORKLOADS) == {"read-heavy", "write-heavy", "mixed", "zipfian"}


class TestDriver:
    def test_rejects_bad_client_and_pipeline_counts(self):
        keys = _keys(100)
        server = IndexServer(SortedArrayIndex, num_shards=2).build(keys)
        try:
            with pytest.raises(ValueError):
                run_closed_loop(server, [], clients=0)
            with pytest.raises(ValueError):
                run_closed_loop(server, [], clients=2, pipeline=0)
        finally:
            server.close()

    def test_driver_accounts_for_every_request(self):
        keys = _keys(400)
        requests = make_workload("read-heavy", keys, 600, seed=6)
        server = IndexServer(SortedArrayIndex, num_shards=2).build(keys)
        try:
            result = run_closed_loop(server, requests, clients=3, pipeline=16)
        finally:
            server.close()
        assert result["completed"] + result["shed"] == len(requests)
        assert result["shed"] == 0
        assert result["ops_per_s"] > 0
        assert result["client_latency"]["count"] > 0
        assert sum(len(chunk) for chunk in result["values"]) == len(requests)

    def test_write_workload_on_immutable_factory_reraises_in_driver(self):
        from repro.onedim import PGMIndex

        keys = _keys(300)
        requests = make_workload("write-heavy", keys, 64, seed=8)
        server = IndexServer(PGMIndex, num_shards=2).build(keys)
        try:
            with pytest.raises(TypeError, match="immutable"):
                run_closed_loop(server, requests, clients=2, pipeline=8)
        finally:
            server.close()

    def test_shed_requests_are_counted_not_raised(self):
        from repro.serve import Overloaded

        class _SheddingServer:
            """Stands in for an IndexServer whose queues are always full."""

            def serve_window(self, window):
                return [Overloaded(depth=99) for _ in window]

        keys = _keys(300)
        requests = make_workload("zipfian", keys, 120, seed=7)
        result = run_closed_loop(
            _SheddingServer(), requests, clients=2, pipeline=16, batch_submit=True
        )
        assert result["shed"] == len(requests)
        assert result["completed"] == 0
        assert result["ops_per_s"] == 0.0
