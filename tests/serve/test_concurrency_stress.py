"""Deterministic multi-thread stress: exact totals under the sanitizer.

Eight threads start on a shared barrier and hammer one ResultCache /
ServerStats instance with seeded, per-thread-disjoint schedules.  The
schedules are chosen so every counter's final value is independent of
interleaving (disjoint key spaces; dyadic-rational latencies whose sum
is exact in any order), so the assertions are exact equalities — any
lost update under contention is a hard failure, not a flake.  The whole
suite runs with ``REPRO_SANITIZE=1`` set *before* construction, so all
locks are rank-tracked :class:`~repro.core.lockorder.TrackedLock`s and
the runtime lock-order witness is armed throughout.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import sanitize
from repro.core.lockorder import TrackedLock
from repro.serve.cache import ResultCache
from repro.serve.stats import ServerStats

THREADS = 8
OPS = 400  # per-thread operations per schedule
SHARDS = 4


@pytest.fixture(autouse=True)
def sanitized(monkeypatch):
    """Arm the lock-order witness before any lock is constructed."""
    monkeypatch.setenv(sanitize.ENV_VAR, "1")


def run_threads(worker):
    """Run ``worker(tid)`` on THREADS threads released by one barrier."""
    barrier = threading.Barrier(THREADS)
    errors: list[BaseException] = []

    def body(tid: int) -> None:
        try:
            barrier.wait(timeout=30.0)
            worker(tid)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(tid,)) for tid in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads), "stress worker hung"
    assert not errors, errors


class TestServerStatsStress:
    def test_exact_totals_across_eight_threads(self):
        stats = ServerStats(SHARDS)
        assert isinstance(stats._lock, TrackedLock)  # sanitizer is live

        def worker(tid: int) -> None:
            for i in range(OPS):
                shard = (tid + i) % SHARDS
                stats.record_submit(shard, depth=(tid * OPS + i) % 17)
                # Dyadic-rational latencies: exact float sum in any order.
                stats.record_done((i % 16) * 2.0**-10, write=(i % 5 == 0))
                if i % 4 == 0:
                    stats.record_shed()
                stats.record_cache(hit=(i % 2 == 0))

        run_threads(worker)
        snap = stats.snapshot()
        sheds = THREADS * (OPS // 4)
        assert snap["requests"] == THREADS * OPS + sheds
        assert snap["responses"] == THREADS * OPS
        assert snap["shed"] == sheds
        assert snap["writes"] == THREADS * (OPS // 5)
        assert snap["cache_hits"] == THREADS * (OPS // 2)
        assert snap["cache_misses"] == THREADS * (OPS // 2)
        # Per-thread schedules cover the shards uniformly.
        assert snap["per_shard_requests"] == [THREADS * OPS // SHARDS] * SHARDS
        # Depth values form a fixed set, so the high-water mark is exact.
        assert snap["queue_high_water"] == [16] * SHARDS
        hist = snap["latency"]
        assert hist["count"] == float(THREADS * OPS)
        expected_mean_us = (sum((i % 16) * 2.0**-10 for i in range(OPS)) / OPS) * 1e6
        assert hist["mean_us"] == pytest.approx(expected_mean_us, rel=0, abs=0)
        assert hist["max_us"] == 15 * 2.0**-10 * 1e6

    def test_batched_recording_matches_scalar_totals(self):
        stats = ServerStats(SHARDS)

        def worker(tid: int) -> None:
            for i in range(OPS // 8):
                shard = (tid + i) % SHARDS
                stats.record_submit_many(shard, count=8, depth=i % 11)
                stats.record_done_many([(j % 16) * 2.0**-10 for j in range(8)],
                                       writes=2)
                stats.record_batch(shard, size=8)

        run_threads(worker)
        snap = stats.snapshot()
        assert snap["requests"] == THREADS * OPS
        assert snap["responses"] == THREADS * OPS
        assert snap["writes"] == THREADS * (OPS // 8) * 2
        assert snap["batches"] == THREADS * (OPS // 8)
        assert snap["batched_requests"] == THREADS * OPS
        assert snap["avg_batch"] == 8.0
        assert snap["latency"]["count"] == float(THREADS * OPS)


class TestResultCacheStress:
    def test_disjoint_key_spaces_give_exact_hit_miss_counts(self):
        cache = ResultCache(capacity=THREADS * OPS + 1)
        assert isinstance(cache._lock, TrackedLock)

        def worker(tid: int) -> None:
            for i in range(OPS):
                cache.put(("t", tid, i), tid * OPS + i)
            for i in range(OPS):
                assert cache.get(("t", tid, i)) == tid * OPS + i
            for i in range(OPS):
                assert cache.get(("absent", tid, i), default=None) is None

        run_threads(worker)
        snap = cache.snapshot()
        assert snap["entries"] == THREADS * OPS
        assert snap["hits"] == THREADS * OPS
        assert snap["misses"] == THREADS * OPS
        assert snap["evictions"] == 0
        assert snap["expirations"] == 0

    def test_eviction_count_is_exact_past_capacity(self):
        capacity = 256
        cache = ResultCache(capacity=capacity)

        def worker(tid: int) -> None:
            for i in range(OPS):
                cache.put(("t", tid, i), i)

        run_threads(worker)
        snap = cache.snapshot()
        assert snap["entries"] == capacity
        assert snap["evictions"] == THREADS * OPS - capacity
        assert len(cache) == capacity
