"""Tests for the Z-order curve: roundtrips, monotonicity, BIGMIN."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves.zorder import (
    bigmin,
    deinterleave,
    dequantize,
    interleave,
    quantize,
    zencode,
    zencode_array,
)


class TestInterleave:
    def test_known_small_codes(self):
        # (0,0)->0, (1,0)->1?, depends on bit order: dim0 contributes the
        # higher bit at each level in our convention.
        assert interleave((0, 0), 1) == 0
        assert interleave((1, 1), 1) == 3
        assert interleave((3, 3), 2) == 15

    def test_roundtrip_2d(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            c = tuple(int(x) for x in rng.integers(0, 256, 2))
            assert deinterleave(interleave(c, 8), 2, 8) == c

    def test_roundtrip_3d_and_4d(self):
        rng = np.random.default_rng(1)
        for dims in (3, 4):
            for _ in range(50):
                c = tuple(int(x) for x in rng.integers(0, 32, dims))
                assert deinterleave(interleave(c, 5), dims, 5) == c

    def test_codes_are_unique(self):
        codes = {interleave((x, y), 4) for x in range(16) for y in range(16)}
        assert len(codes) == 256

    def test_monotone_along_each_axis(self):
        # Fixing one coordinate, the code grows with the other.
        for y in (0, 5, 15):
            codes = [interleave((x, y), 4) for x in range(16)]
            assert codes == sorted(codes)


class TestQuantize:
    def test_roundtrip_within_cell(self):
        lo = np.array([0.0, 0.0])
        hi = np.array([100.0, 100.0])
        pts = np.array([[12.3, 45.6], [99.9, 0.1]])
        q = quantize(pts, lo, hi, 16)
        back = dequantize(q, lo, hi, 16)
        assert np.all(np.abs(back - pts) < 100 / (1 << 15))

    def test_monotone(self):
        lo = np.array([0.0])
        hi = np.array([1.0])
        xs = np.sort(np.random.default_rng(2).uniform(0, 1, 100))[:, None]
        q = quantize(xs, lo, hi, 10)[:, 0]
        assert all(a <= b for a, b in zip(q, q[1:]))

    def test_clamps_out_of_range(self):
        lo = np.array([0.0])
        hi = np.array([1.0])
        q = quantize(np.array([[-5.0], [5.0]]), lo, hi, 8)
        assert q[0, 0] == 0
        assert q[1, 0] == 255

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((1, 2)), np.zeros(2), np.ones(2), 0)


class TestZencodeArray:
    def test_matches_scalar_encoder(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 1000, (200, 2))
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        vec = zencode_array(pts, lo, hi, 12)
        scalar = [zencode(p, lo, hi, 12) for p in pts]
        assert list(vec) == scalar

    def test_big_codes_use_object_dtype(self):
        pts = np.random.default_rng(4).uniform(0, 1, (5, 3))
        codes = zencode_array(pts, np.zeros(3), np.ones(3), 31)
        assert codes.dtype == object


class TestBigmin:
    @staticmethod
    def _brute(cur, lo, hi, bits):
        inside = sorted(
            interleave((x, y), bits)
            for x in range(lo[0], hi[0] + 1)
            for y in range(lo[1], hi[1] + 1)
        )
        return next((c for c in inside if c > cur), None)

    def test_against_brute_force(self):
        bits = 4
        rng = np.random.default_rng(5)
        for _ in range(200):
            lo = rng.integers(0, 16, 2)
            hi = np.minimum(lo + rng.integers(0, 6, 2), 15)
            cur = int(rng.integers(0, 256))
            got = bigmin(cur, tuple(int(v) for v in lo), tuple(int(v) for v in hi), 2, bits)
            assert got == self._brute(cur, lo, hi, bits)

    def test_inside_box_returns_next_inside_code(self):
        # Starting below the box minimum returns the box minimum.
        lo, hi = (4, 4), (7, 7)
        box_min = interleave(lo, 4)
        assert bigmin(0, lo, hi, 2, 4) == box_min

    def test_past_box_returns_none(self):
        lo, hi = (0, 0), (1, 1)
        box_max = interleave(hi, 4)
        assert bigmin(box_max, lo, hi, 2, 4) is None

    @settings(max_examples=80, deadline=None)
    @given(
        lo_x=st.integers(0, 15), lo_y=st.integers(0, 15),
        dx=st.integers(0, 8), dy=st.integers(0, 8),
        cur=st.integers(0, 255),
    )
    def test_property_matches_brute_force(self, lo_x, lo_y, dx, dy, cur):
        lo = (lo_x, lo_y)
        hi = (min(lo_x + dx, 15), min(lo_y + dy, 15))
        got = bigmin(cur, lo, hi, 2, 4)
        assert got == self._brute(cur, np.array(lo), np.array(hi), 4)
