"""Tests for the Hilbert curve."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves.hilbert import hilbert_decode, hilbert_encode, hilbert_encode_array


class TestRoundtrip:
    def test_2d_roundtrip(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            c = tuple(int(x) for x in rng.integers(0, 256, 2))
            assert hilbert_decode(hilbert_encode(c, 8), 2, 8) == c

    def test_3d_roundtrip(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            c = tuple(int(x) for x in rng.integers(0, 32, 3))
            assert hilbert_decode(hilbert_encode(c, 5), 3, 5) == c

    def test_codes_are_a_bijection(self):
        codes = {hilbert_encode((x, y), 4) for x in range(16) for y in range(16)}
        assert codes == set(range(256))

    @settings(max_examples=100, deadline=None)
    @given(x=st.integers(0, 1023), y=st.integers(0, 1023))
    def test_property_roundtrip(self, x, y):
        assert hilbert_decode(hilbert_encode((x, y), 10), 2, 10) == (x, y)


class TestLocality:
    def test_consecutive_codes_are_adjacent_cells(self):
        # The defining property of the Hilbert curve: successive curve
        # positions are Manhattan-distance-1 neighbours.
        bits = 5
        for code in range((1 << (2 * bits)) - 1):
            a = hilbert_decode(code, 2, bits)
            b = hilbert_decode(code + 1, 2, bits)
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_fewer_clusters_than_zorder(self):
        # The classic clustering result (Moon et al.): a query rectangle
        # intersects fewer contiguous curve runs ("clusters") under the
        # Hilbert order than under the Z order, on average.
        from repro.curves.zorder import interleave

        bits = 4
        rng = np.random.default_rng(7)

        def clusters(encode) -> float:
            total = 0
            trials = 40
            for _ in range(trials):
                x0, y0 = rng.integers(0, 10, 2)
                w, h = rng.integers(2, 6, 2)
                codes = sorted(
                    encode((x, y), bits)
                    for x in range(x0, min(x0 + w, 16))
                    for y in range(y0, min(y0 + h, 16))
                )
                runs = 1 + sum(1 for a, b in zip(codes, codes[1:]) if b != a + 1)
                total += runs
            return total / trials

        assert clusters(hilbert_encode) < clusters(interleave)


class TestEncodeArray:
    def test_matches_scalar(self):
        rng = np.random.default_rng(2)
        coords = rng.integers(0, 64, (50, 2))
        vec = hilbert_encode_array(coords, 6)
        assert list(vec) == [hilbert_encode(tuple(int(v) for v in c), 6) for c in coords]

    def test_raises_on_out_of_range(self):
        import pytest

        with pytest.raises(ValueError):
            hilbert_encode((999, 0), 4)
