"""Code-budget edge tests: the shared capacity helpers and wide round-trips.

The 62-bit int64 code budget (``d * bits <= 62``) is enforced in one
place — :mod:`repro.curves.capacity` — and both the Morton and Hilbert
array kernels route through it.  These tests pin the helper down at the
exact budget edges and prove the object-dtype fallback round-trips codes
the fast path cannot hold, including the ``bits=22, d=3`` case that used
to crash ``zdecode_array`` with an OverflowError.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves.capacity import (
    CODE_BUDGET_BITS,
    FAST_PATH_COORD_BITS,
    fits_code_budget,
    require_code_budget,
)
from repro.curves.zorder import (
    deinterleave,
    deinterleave_array,
    interleave,
    interleave_array,
    zdecode,
    zdecode_array,
    zencode,
    zencode_array,
)


class TestCapacityHelpers:
    @pytest.mark.parametrize("dims,bits,ok", [
        (1, 62, True), (1, 63, False),
        (2, 31, True), (2, 32, False),
        (3, 20, True), (3, 21, False),
        (4, 15, True), (4, 16, False),
    ])
    def test_fits_code_budget_edges(self, dims, bits, ok):
        assert fits_code_budget(dims, bits) is ok

    def test_fast_path_masks_admit_every_in_budget_width(self):
        assert CODE_BUDGET_BITS == 62
        # The magic-mask tables must never be the binding constraint:
        # each admits at least the budget's per-dimension share.
        assert all(cap >= CODE_BUDGET_BITS // d
                   for d, cap in FAST_PATH_COORD_BITS.items())

    def test_require_passes_in_budget(self):
        require_code_budget(3, 20)

    def test_require_raises_with_diagnostic(self):
        with pytest.raises(ValueError, match="dims=2, bits=32"):
            require_code_budget(2, 32)


COORD_31 = st.integers(min_value=0, max_value=(1 << 31) - 1)
COORD_20 = st.integers(min_value=0, max_value=(1 << 20) - 1)


class TestBudgetEdgeRoundTrips:
    @settings(max_examples=25, deadline=None)
    @given(coords=st.lists(st.tuples(COORD_31, COORD_31), min_size=1, max_size=20))
    def test_d2_bits31_round_trip(self, coords):
        arr = np.asarray(coords, dtype=np.int64)
        codes = interleave_array(arr, 31)
        assert codes.dtype == np.int64
        assert codes.min() >= 0  # sign bit never set at the budget edge
        np.testing.assert_array_equal(deinterleave_array(codes, 2, 31), arr)

    @settings(max_examples=25, deadline=None)
    @given(coords=st.lists(st.tuples(COORD_20, COORD_20, COORD_20),
                           min_size=1, max_size=20))
    def test_d3_bits20_round_trip(self, coords):
        arr = np.asarray(coords, dtype=np.int64)
        codes = interleave_array(arr, 20)
        assert codes.dtype == np.int64
        assert codes.min() >= 0
        np.testing.assert_array_equal(deinterleave_array(codes, 3, 20), arr)

    @settings(max_examples=25, deadline=None)
    @given(coords=st.lists(st.tuples(COORD_31, COORD_31), min_size=1, max_size=20))
    def test_array_forms_match_scalar_forms_at_edge(self, coords):
        arr = np.asarray(coords, dtype=np.int64)
        codes = interleave_array(arr, 31)
        for row, code in zip(arr, codes):
            assert interleave(tuple(int(c) for c in row), 31) == int(code)
            assert deinterleave(int(code), 2, 31) == tuple(int(c) for c in row)


class TestBeyondBudgetFallback:
    """bits=22, d=3 needs 66-bit codes: the object-dtype path must carry them."""

    BITS = 22
    DIMS = 3

    def _coords(self, seed: int, n: int = 64) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.integers(0, 1 << self.BITS, (n, self.DIMS)).astype(np.int64)

    def test_interleave_array_refuses_beyond_budget(self):
        # The int64 fast path has no wide fallback of its own: it must
        # fail loudly, not wrap.
        with pytest.raises(ValueError, match="62"):
            interleave_array(self._coords(0), self.BITS)

    def test_deinterleave_regression_no_overflow_error(self):
        # Used to raise OverflowError: np.asarray(codes, dtype=np.int64)
        # ran before any budget check.
        coords = self._coords(1)
        codes = np.array(
            [interleave(tuple(int(c) for c in row), self.BITS) for row in coords],
            dtype=object,
        )
        assert max(int(c) for c in codes).bit_length() > 62
        back = deinterleave_array(codes, self.DIMS, self.BITS)
        np.testing.assert_array_equal(back, coords)

    def test_zencode_zdecode_array_match_scalars(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(-5.0, 5.0, (32, self.DIMS))
        lo = np.full(self.DIMS, -5.0)
        hi = np.full(self.DIMS, 5.0)
        codes = zencode_array(points, lo, hi, self.BITS)
        scalar_codes = [zencode(p, lo, hi, self.BITS) for p in points]
        assert [int(c) for c in codes] == [int(c) for c in scalar_codes]
        decoded = zdecode_array(codes, lo, hi, self.DIMS, self.BITS)
        expected = np.array(
            [zdecode(int(c), lo, hi, self.DIMS, self.BITS) for c in codes])
        np.testing.assert_allclose(decoded, expected)
