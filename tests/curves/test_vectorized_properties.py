"""Property tests for the vectorized curve layer.

The batch query engine leans on three contracts that these tests pin
down with hypothesis-generated inputs:

1. ``deinterleave(interleave(p))`` is the identity on the integer
   lattice (and the array forms agree with the scalar forms bit for
   bit), so Morton codes are loss-free cell identifiers.
2. ``zencode_array`` equals a loop of scalar ``zencode`` calls — the
   vectorized encoder used by ``ZMIndex.point_query_batch`` cannot
   diverge from the scalar query path.
3. ``bigmin`` jumps strictly forward and lands inside the query box,
   which is what makes the range scan's curve-excursion skipping sound.

Plus the floor-quantisation regression: ``quantize`` must route points
to the same cells as the grid/Flood floor-based lattice arithmetic.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves.hilbert import hilbert_encode, hilbert_encode_array
from repro.curves.zorder import (
    bigmin,
    deinterleave,
    deinterleave_array,
    interleave,
    interleave_array,
    quantize,
    zdecode_array,
    zencode,
    zencode_array,
)

DIMS_BITS = st.sampled_from([(1, 20), (2, 8), (2, 16), (2, 31), (3, 8), (3, 20), (4, 12)])


class TestLatticeRoundtrip:
    @given(data=st.data(), dims_bits=DIMS_BITS, n=st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_deinterleave_inverts_interleave(self, data, dims_bits, n):
        dims, bits = dims_bits
        coords = np.asarray(data.draw(st.lists(
            st.lists(st.integers(0, (1 << bits) - 1), min_size=dims, max_size=dims),
            min_size=n, max_size=n,
        )), dtype=np.int64)
        codes = interleave_array(coords, bits)
        assert np.array_equal(deinterleave_array(codes, dims, bits), coords)

    @given(data=st.data(), dims_bits=DIMS_BITS)
    @settings(max_examples=60, deadline=None)
    def test_array_forms_match_scalar_forms(self, data, dims_bits):
        dims, bits = dims_bits
        coords = np.asarray(data.draw(st.lists(
            st.lists(st.integers(0, (1 << bits) - 1), min_size=dims, max_size=dims),
            min_size=1, max_size=20,
        )), dtype=np.int64)
        codes = interleave_array(coords, bits)
        for i in range(coords.shape[0]):
            scalar_code = interleave(tuple(int(c) for c in coords[i]), bits)
            assert int(codes[i]) == scalar_code
            assert deinterleave(scalar_code, dims, bits) == tuple(int(c) for c in coords[i])

    def test_zdecode_array_is_identity_on_cell_centres(self):
        rng = np.random.default_rng(3)
        lo, hi = np.zeros(2), np.full(2, 100.0)
        bits = 12
        cells = rng.integers(0, 1 << bits, (200, 2))
        centres = lo + (cells + 0.5) / (1 << bits) * (hi - lo)
        codes = zencode_array(centres, lo, hi, bits)
        assert np.allclose(zdecode_array(codes, lo, hi, 2, bits), centres)


class TestZencodeArrayParity:
    @given(data=st.data(), dims_bits=DIMS_BITS)
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_zencode(self, data, dims_bits):
        dims, bits = dims_bits
        pts = np.asarray(data.draw(st.lists(
            st.lists(st.floats(-10.0, 110.0, allow_nan=False), min_size=dims, max_size=dims),
            min_size=1, max_size=25,
        )))
        lo, hi = np.zeros(dims), np.full(dims, 100.0)
        codes = zencode_array(pts, lo, hi, bits)
        for i in range(pts.shape[0]):
            assert int(codes[i]) == zencode(pts[i], lo, hi, bits)

    def test_wide_codes_use_object_fallback(self):
        # 3 dims x 31 bits = 93 bits: beyond int64, still exact.
        pts = np.random.default_rng(4).uniform(0.0, 1.0, (20, 3))
        lo, hi = np.zeros(3), np.ones(3)
        codes = zencode_array(pts, lo, hi, 31)
        assert codes.dtype == object
        for i in range(pts.shape[0]):
            assert codes[i] == zencode(pts[i], lo, hi, 31)


class TestHilbertArrayParity:
    @given(data=st.data(), dims_bits=st.sampled_from([(2, 8), (2, 16), (3, 10)]))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_hilbert_encode(self, data, dims_bits):
        dims, bits = dims_bits
        coords = np.asarray(data.draw(st.lists(
            st.lists(st.integers(0, (1 << bits) - 1), min_size=dims, max_size=dims),
            min_size=1, max_size=20,
        )), dtype=np.int64)
        codes = hilbert_encode_array(coords, bits)
        for i in range(coords.shape[0]):
            assert int(codes[i]) == hilbert_encode(tuple(int(c) for c in coords[i]), bits)


class TestBigminProperties:
    @given(data=st.data(), bits=st.integers(3, 10))
    @settings(max_examples=80, deadline=None)
    def test_jump_is_forward_and_inside_box(self, data, bits):
        dims = 2
        top = (1 << bits) - 1
        lo_q = tuple(data.draw(st.integers(0, top)) for _ in range(dims))
        hi_q = tuple(data.draw(st.integers(lo_q[d], top)) for d in range(dims))
        code = data.draw(st.integers(0, (1 << (bits * dims)) - 1))
        nxt = bigmin(code, lo_q, hi_q, dims, bits)
        z_hi = interleave(hi_q, bits)
        if nxt is None:
            # No in-box code follows `code`: verify exhaustively via the
            # box's max code (anything in the box after `code` would have
            # a code in (code, z_hi]).
            in_box_after = [
                interleave((x, y), bits)
                for x in range(lo_q[0], hi_q[0] + 1)
                for y in range(lo_q[1], hi_q[1] + 1)
                if interleave((x, y), bits) > code
            ] if z_hi > code and bits <= 6 else []
            if bits <= 6:
                assert not in_box_after
            return
        assert nxt > code
        decoded = deinterleave(nxt, dims, bits)
        assert all(lo_q[d] <= decoded[d] <= hi_q[d] for d in range(dims))


class TestQuantizeGridConsistency:
    """Regression: floor-quantisation must agree with grid cell routing."""

    def test_quantize_matches_grid_floor_routing(self):
        rng = np.random.default_rng(9)
        bits = 4
        cells = 1 << bits
        lo, hi = np.zeros(2), np.full(2, 100.0)
        pts = rng.uniform(0.0, 100.0, (500, 2))
        q = quantize(pts, lo, hi, bits)
        # The grid/Flood lattice: clip(floor(frac * cells)) per dimension.
        frac = (pts - lo) / (hi - lo)
        grid_cells = np.clip((frac * cells).astype(int), 0, cells - 1)
        assert np.array_equal(q, grid_cells)

    def test_boundary_points_take_lower_cell_like_floor(self):
        lo, hi = np.zeros(1), np.ones(1)
        # 0.5 with bits=1 is exactly the cell boundary: floor gives cell 1,
        # while the old rint-based quantiser rounded 0.5 * 2 = 1.0 to cell 1
        # only via banker's rounding luck; 0.25 exposes the difference.
        pts = np.array([[0.0], [0.25], [0.5], [0.74], [0.75], [1.0]])
        q = quantize(pts, lo, hi, 2)
        assert q.ravel().tolist() == [0, 1, 2, 2, 3, 3]

    @pytest.mark.parametrize("bits", [1, 4, 10])
    def test_max_edge_clamps_into_top_cell(self, bits):
        lo, hi = np.zeros(3), np.full(3, 7.0)
        q = quantize(np.array([[7.0, 7.0, 7.0]]), lo, hi, bits)
        assert np.array_equal(q[0], np.full(3, (1 << bits) - 1))
