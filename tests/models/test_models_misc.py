"""Tests for the CDF, polynomial, histogram, MLP, and classifier models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.cdf import EmpiricalCDF, QuantileModel
from repro.models.classifier import LogisticClassifier, ScalarFeaturizer
from repro.models.histogram import EquiDepthHistogram, EquiWidthHistogram
from repro.models.nn import TinyMLP
from repro.models.polynomial import PolynomialModel


class TestEmpiricalCDF:
    def test_basic_values(self):
        cdf = EmpiricalCDF.fit(np.array([1.0, 2.0, 3.0, 4.0]))
        assert cdf.evaluate(0.0) == 0.0
        assert cdf.evaluate(2.0) == 0.5
        assert cdf.evaluate(100.0) == 1.0

    def test_monotone(self):
        rng = np.random.default_rng(0)
        cdf = EmpiricalCDF.fit(rng.normal(0, 1, 500))
        probes = np.linspace(-4, 4, 100)
        vals = cdf.evaluate_array(probes)
        assert all(a <= b for a, b in zip(vals, vals[1:]))

    def test_position_scales_with_n(self):
        cdf = EmpiricalCDF.fit(np.arange(101, dtype=np.float64))
        assert cdf.position(50.0) == pytest.approx(50.0 / 101 * 100 * 1.0, abs=2.0)

    def test_empty(self):
        cdf = EmpiricalCDF.fit(np.array([]))
        assert cdf.evaluate(1.0) == 0.0


class TestQuantileModel:
    def test_uniform_data_is_linear(self):
        keys = np.linspace(0, 100, 1001)
        model = QuantileModel.fit(keys, num_quantiles=16)
        assert model.evaluate(50.0) == pytest.approx(0.5, abs=0.01)

    def test_clamps_out_of_range(self):
        model = QuantileModel.fit(np.arange(10.0), num_quantiles=4)
        assert model.evaluate(-5.0) == 0.0
        assert model.evaluate(99.0) == 1.0

    def test_rejects_bad_quantile_count(self):
        with pytest.raises(ValueError):
            QuantileModel.fit(np.arange(10.0), num_quantiles=0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=5, max_size=200))
    def test_property_monotone(self, raw):
        model = QuantileModel.fit(np.array(raw), num_quantiles=8)
        probes = np.linspace(min(raw) - 1, max(raw) + 1, 50)
        vals = [model.evaluate(float(p)) for p in probes]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))


class TestEquiWidthHistogram:
    def test_position_ranges_partition_the_data(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.uniform(0, 100, 1000))
        hist = EquiWidthHistogram.fit(keys, bins=16)
        assert hist.cumulative[0] == 0
        assert hist.cumulative[-1] == 1000

    def test_key_falls_in_its_bucket_range(self):
        rng = np.random.default_rng(2)
        keys = np.sort(rng.uniform(0, 100, 500))
        hist = EquiWidthHistogram.fit(keys, bins=32)
        for i in range(0, 500, 41):
            first, last = hist.position_range(float(keys[i]))
            assert first <= i < last or keys[first - 1] == keys[i]

    def test_bin_of_clamps(self):
        hist = EquiWidthHistogram.fit(np.arange(10.0), bins=4)
        assert hist.bin_of(-100.0) == 0
        assert hist.bin_of(1e9) == 3

    def test_all_equal_keys(self):
        hist = EquiWidthHistogram.fit(np.full(10, 5.0), bins=4)
        first, last = hist.position_range(5.0)
        assert (first, last) == (0, 10)

    def test_empty(self):
        hist = EquiWidthHistogram.fit(np.array([]), bins=4)
        assert hist.position_range(1.0) == (0, 0)


class TestEquiDepthHistogram:
    def test_buckets_roughly_equal(self):
        rng = np.random.default_rng(3)
        keys = rng.lognormal(0, 2, 2000)
        hist = EquiDepthHistogram.fit(keys, bins=8)
        assert hist.depth == 250

    def test_bin_of_monotone(self):
        keys = np.sort(np.random.default_rng(4).uniform(0, 1, 500))
        hist = EquiDepthHistogram.fit(keys, bins=8)
        bins = [hist.bin_of(float(k)) for k in keys]
        assert all(a <= b for a, b in zip(bins, bins[1:]))


class TestTinyMLP:
    def test_learns_linear_function(self):
        rng = np.random.default_rng(5)
        xs = rng.uniform(-1, 1, 400)
        ys = 3 * xs + 1
        mlp = TinyMLP(hidden=8, epochs=400, learning_rate=0.05).fit(xs, ys)
        preds = mlp.predict(xs)
        assert float(np.mean(np.abs(preds - ys))) < 0.2

    def test_learns_nonlinear_cdf_shape(self):
        rng = np.random.default_rng(6)
        keys = np.sort(rng.lognormal(0, 1, 500))
        positions = np.arange(keys.size, dtype=np.float64)
        mlp = TinyMLP(hidden=16, epochs=400).fit(keys, positions)
        preds = mlp.predict(keys)
        # Must beat the best single *linear* model on this skewed CDF.
        from repro.models.linear import LinearModel

        linear = LinearModel.fit(keys, positions)
        assert float(np.mean(np.abs(preds - positions))) < linear.max_error

    def test_logistic_loss_classifies(self):
        rng = np.random.default_rng(7)
        xs = np.concatenate([rng.normal(-2, 0.5, 200), rng.normal(2, 0.5, 200)])
        ys = np.concatenate([np.zeros(200), np.ones(200)])
        mlp = TinyMLP(hidden=8, loss="logistic", epochs=300).fit(xs, ys)
        probs = mlp.predict_proba(xs)
        acc = float(np.mean((probs > 0.5) == ys))
        assert acc > 0.95

    def test_rejects_unknown_loss(self):
        with pytest.raises(ValueError):
            TinyMLP(loss="hinge").fit(np.zeros(3), np.zeros(3))

    def test_rejects_empty_fit(self):
        with pytest.raises(ValueError):
            TinyMLP().fit(np.array([]), np.array([]))

    def test_deterministic_given_seed(self):
        xs = np.linspace(0, 1, 50)
        ys = xs * 2
        a = TinyMLP(seed=9).fit(xs, ys).predict(xs)
        b = TinyMLP(seed=9).fit(xs, ys).predict(xs)
        assert np.array_equal(a, b)


class TestLogisticClassifier:
    def test_separable_data(self):
        rng = np.random.default_rng(8)
        x0 = rng.normal(-1, 0.3, (100, 2))
        x1 = rng.normal(1, 0.3, (100, 2))
        features = np.vstack([x0, x1])
        labels = np.concatenate([np.zeros(100), np.ones(100)])
        clf = LogisticClassifier().fit(features, labels)
        assert float(np.mean(clf.predict(features) == labels)) > 0.97

    def test_probabilities_in_unit_interval(self):
        clf = LogisticClassifier().fit(np.arange(10.0), (np.arange(10) > 4).astype(float))
        probs = clf.predict_proba(np.arange(10.0))
        assert np.all((probs >= 0) & (probs <= 1))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LogisticClassifier().fit(np.empty((0, 2)), np.empty(0))


class TestScalarFeaturizer:
    def test_single_key_matches_batch_featurization(self):
        keys = np.array([1.0, 5.0, 9.0, 200.0])
        feat = ScalarFeaturizer.fit(keys)
        batch = feat.transform(keys)
        single = feat.transform(np.array([5.0]))
        assert np.allclose(batch[1], single[0])

    def test_feature_count(self):
        feat = ScalarFeaturizer.fit(np.array([0.0, 1.0]))
        assert feat.transform(np.array([0.5])).shape == (1, 6)


class TestPolynomialModel:
    def test_recovers_quadratic(self):
        xs = np.linspace(-5, 5, 100)
        ys = 2 * xs ** 2 - 3 * xs + 1
        model = PolynomialModel.fit(xs, ys, degree=2)
        assert model.max_error < 1e-6

    def test_horner_matches_vectorized(self):
        xs = np.linspace(0, 10, 30)
        model = PolynomialModel.fit(xs, np.sqrt(xs + 1), degree=3)
        single = [model.predict(float(x)) for x in xs]
        assert np.allclose(single, model.predict_array(xs))

    def test_degree_clamped_to_data(self):
        model = PolynomialModel.fit(np.array([1.0, 2.0]), np.array([1.0, 2.0]), degree=5)
        assert model.degree <= 1

    def test_rejects_negative_degree(self):
        with pytest.raises(ValueError):
            PolynomialModel.fit(np.arange(3.0), np.arange(3.0), degree=-1)

    def test_higher_degree_fits_no_worse(self):
        xs = np.linspace(0, 1, 200)
        ys = np.sin(xs * 6)
        e2 = PolynomialModel.fit(xs, ys, degree=2).max_error
        e6 = PolynomialModel.fit(xs, ys, degree=6).max_error
        assert e6 <= e2 + 1e-9
