"""Tests for the epsilon-bounded piecewise-linear approximation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.pla import (
    Segment,
    segment_greedy_splits,
    segment_stream,
    verify_epsilon,
)

sorted_keys = st.lists(
    st.floats(min_value=-1e12, max_value=1e12, allow_nan=False),
    min_size=1, max_size=300,
).map(lambda xs: np.array(sorted(xs)))


class TestSegmentStream:
    def test_single_key(self):
        segs = segment_stream(np.array([5.0]), 4)
        assert len(segs) == 1
        assert segs[0].first == 0 and segs[0].last == 1

    def test_perfectly_linear_data_is_one_segment(self):
        keys = np.arange(1000, dtype=np.float64) * 3.5 + 7
        segs = segment_stream(keys, 1)
        assert len(segs) == 1
        assert verify_epsilon(keys, segs, 1) <= 1

    def test_two_slopes_give_two_segments_at_tight_epsilon(self):
        keys = np.concatenate([np.arange(100) * 1.0, 100 + np.arange(100) * 100.0])
        segs = segment_stream(keys, 1)
        assert len(segs) >= 2

    def test_epsilon_guarantee_on_random_data(self):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.lognormal(0, 2, 5000) * 1e6)
        for epsilon in (1, 4, 16, 64):
            segs = segment_stream(keys, epsilon)
            # Exact in real arithmetic; floats may exceed by a few ulps.
            assert verify_epsilon(keys, segs, epsilon) <= epsilon * (1 + 1e-9)

    def test_segments_tile_the_array(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.uniform(0, 1e9, 2000))
        segs = segment_stream(keys, 8)
        assert segs[0].first == 0
        assert segs[-1].last == keys.size
        for a, b in zip(segs, segs[1:]):
            assert a.last == b.first

    def test_larger_epsilon_never_needs_more_segments(self):
        rng = np.random.default_rng(2)
        keys = np.sort(rng.zipf(1.5, 3000).cumsum().astype(np.float64))
        counts = [len(segment_stream(keys, e)) for e in (2, 8, 32, 128)]
        assert counts == sorted(counts, reverse=True)

    def test_duplicate_keys_within_epsilon_stay_in_segment(self):
        keys = np.array([1.0, 2.0, 2.0, 2.0, 3.0])
        segs = segment_stream(keys, 4)
        assert len(segs) == 1

    def test_duplicate_run_exceeding_epsilon_breaks(self):
        keys = np.array([1.0] + [2.0] * 10 + [3.0])
        segs = segment_stream(keys, 1)
        assert len(segs) >= 2

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            segment_stream(np.array([1.0]), -1)

    def test_empty_input(self):
        assert segment_stream(np.array([]), 4) == []

    def test_custom_positions(self):
        keys = np.arange(10, dtype=np.float64)
        positions = np.arange(10, dtype=np.float64) * 7
        segs = segment_stream(keys, 1, positions=positions)
        assert abs(segs[0].predict(3.0) - 21.0) <= 1

    @settings(max_examples=60, deadline=None)
    @given(keys=sorted_keys, epsilon=st.integers(min_value=1, max_value=64))
    def test_property_epsilon_always_holds(self, keys, epsilon):
        segs = segment_stream(keys, epsilon)
        # Exact in real arithmetic; floats may exceed by a few ulps.
        assert verify_epsilon(keys, segs, epsilon) <= epsilon * (1 + 1e-9)

    @settings(max_examples=60, deadline=None)
    @given(keys=sorted_keys)
    def test_property_full_coverage(self, keys):
        segs = segment_stream(keys, 8)
        covered = sum(len(s) for s in segs)
        assert covered == keys.size


class TestGreedySplits:
    def test_fixed_size_partitioning(self):
        keys = np.arange(100, dtype=np.float64)
        segs = segment_greedy_splits(keys, 32)
        assert [len(s) for s in segs] == [32, 32, 32, 4]

    def test_rejects_bad_segment_size(self):
        with pytest.raises(ValueError):
            segment_greedy_splits(np.arange(4.0), 0)

    def test_segment_predict_endpoints_exact(self):
        keys = np.array([0.0, 10.0, 20.0, 40.0])
        segs = segment_greedy_splits(keys, 4)
        seg = segs[0]
        assert seg.predict(0.0) == pytest.approx(0.0)
        assert seg.predict(40.0) == pytest.approx(3.0)


class TestSegmentDataclass:
    def test_len(self):
        seg = Segment(key=0.0, slope=1.0, anchor_pos=0.0, first=3, last=9)
        assert len(seg) == 6

    def test_size_bytes_constant(self):
        seg = Segment(key=0.0, slope=1.0, anchor_pos=0.0, first=0, last=1)
        assert seg.size_bytes == 40

    def test_anchor_form_is_numerically_stable(self):
        # Huge anchor key + huge slope: the anchor form stays finite
        # where slope * key + intercept would overflow.
        seg = Segment(key=1e9, slope=1e300, anchor_pos=5.0, first=0, last=2)
        assert np.isfinite(seg.predict(1e9))
        assert seg.predict(1e9) == 5.0
