"""Tests for the greedy error-bounded spline (RadixSpline substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.spline import GreedySpline, SplineKnot, fit_greedy_spline

distinct_sorted_keys = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    min_size=2, max_size=300, unique=True,
).map(lambda xs: np.array(sorted(xs)))


class TestFitGreedySpline:
    def test_linear_data_needs_two_knots(self):
        keys = np.arange(500, dtype=np.float64)
        spline = fit_greedy_spline(keys, 2)
        assert len(spline.knots) == 2

    def test_error_bound_on_random_distinct_keys(self):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.uniform(0, 1e9, 4000))
        for max_error in (2, 8, 32):
            spline = fit_greedy_spline(keys, max_error)
            worst = max(abs(spline.predict(float(k)) - i) for i, k in enumerate(keys))
            assert worst <= max_error + 1e-6

    def test_knots_are_strictly_increasing(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.lognormal(0, 2, 3000))
        spline = fit_greedy_spline(keys, 16)
        knot_keys = [k.key for k in spline.knots]
        assert all(a < b for a, b in zip(knot_keys, knot_keys[1:]))

    def test_predictions_are_monotone(self):
        rng = np.random.default_rng(2)
        keys = np.sort(rng.uniform(0, 1e6, 1000))
        spline = fit_greedy_spline(keys, 8)
        probes = np.linspace(keys[0], keys[-1], 500)
        preds = [spline.predict(float(p)) for p in probes]
        assert all(a <= b + 1e-9 for a, b in zip(preds, preds[1:]))

    def test_tighter_error_means_more_knots(self):
        rng = np.random.default_rng(3)
        keys = np.sort(rng.zipf(1.4, 2000).cumsum().astype(np.float64))
        tight = fit_greedy_spline(keys, 2)
        loose = fit_greedy_spline(keys, 64)
        assert len(tight.knots) >= len(loose.knots)

    def test_single_key(self):
        spline = fit_greedy_spline(np.array([42.0]), 4)
        assert spline.predict(42.0) == 0.0

    def test_empty_keys(self):
        spline = fit_greedy_spline(np.array([]), 4)
        assert spline.knots == []
        assert spline.predict(1.0) == 0.0

    def test_out_of_range_queries_clamp(self):
        keys = np.arange(100, dtype=np.float64)
        spline = fit_greedy_spline(keys, 4)
        assert spline.predict(-50.0) == 0.0
        assert spline.predict(1e9) == 99.0

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            fit_greedy_spline(np.array([1.0]), -1)

    @settings(max_examples=60, deadline=None)
    @given(keys=distinct_sorted_keys, max_error=st.integers(min_value=1, max_value=32))
    def test_property_error_bound(self, keys, max_error):
        spline = fit_greedy_spline(keys, max_error)
        worst = max(abs(spline.predict(float(k)) - i) for i, k in enumerate(keys))
        assert worst <= max_error + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(keys=distinct_sorted_keys)
    def test_property_endpoints_are_knots(self, keys):
        spline = fit_greedy_spline(keys, 8)
        assert spline.knots[0].key == keys[0]
        assert spline.knots[-1].key == keys[-1]


class TestGreedySplineSearch:
    def test_segment_index_brackets_key(self):
        keys = np.sort(np.random.default_rng(5).uniform(0, 1e6, 500))
        spline = fit_greedy_spline(keys, 8)
        for k in keys[::37]:
            seg = spline.segment_index(float(k))
            assert spline.knots[seg].key <= k

    def test_size_bytes_scales_with_knots(self):
        spline = GreedySpline(knots=[SplineKnot(0.0, 0.0), SplineKnot(1.0, 1.0)], max_error=1)
        assert spline.size_bytes == 32
