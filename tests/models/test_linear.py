"""Tests for the linear models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.linear import EndpointLinearModel, LinearModel, fit_linear


class TestFitLinear:
    def test_exact_line_recovered(self):
        xs = np.array([0.0, 1.0, 2.0, 3.0])
        slope, intercept = fit_linear(xs, 2 * xs + 5)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(5.0)

    def test_empty_input(self):
        assert fit_linear(np.array([]), np.array([])) == (0.0, 0.0)

    def test_single_point_is_constant(self):
        slope, intercept = fit_linear(np.array([3.0]), np.array([7.0]))
        assert slope == 0.0
        assert intercept == 7.0

    def test_duplicate_xs_fall_back_to_mean(self):
        slope, intercept = fit_linear(np.array([2.0, 2.0]), np.array([1.0, 3.0]))
        assert slope == 0.0
        assert intercept == pytest.approx(2.0)

    def test_sorted_positions_give_nonnegative_slope(self):
        rng = np.random.default_rng(0)
        xs = np.sort(rng.uniform(0, 1e9, 500))
        slope, _ = fit_linear(xs, np.arange(500, dtype=np.float64))
        assert slope >= 0


class TestLinearModel:
    def test_fit_records_max_error(self):
        xs = np.array([0.0, 1.0, 2.0, 3.0])
        ys = np.array([0.0, 1.0, 2.0, 10.0])  # outlier
        model = LinearModel.fit(xs, ys)
        assert model.max_error > 0
        preds = model.predict_array(xs)
        assert model.max_error == pytest.approx(float(np.max(np.abs(preds - ys))))

    def test_predict_matches_predict_array(self):
        model = LinearModel(slope=1.5, intercept=-2.0)
        xs = np.array([0.0, 4.0, -3.0])
        assert [model.predict(x) for x in xs] == list(model.predict_array(xs))

    def test_predict_clamped(self):
        model = LinearModel(slope=1.0, intercept=0.0)
        assert model.predict_clamped(-10.0, 0, 99) == 0
        assert model.predict_clamped(1000.0, 0, 99) == 99
        assert model.predict_clamped(50.4, 0, 99) == 50

    def test_size_is_constant(self):
        assert LinearModel().size_bytes == 24

    @settings(max_examples=50, deadline=None)
    @given(
        slope=st.floats(min_value=-100, max_value=100, allow_nan=False),
        intercept=st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    def test_property_exact_fit_recovers_line(self, slope, intercept):
        xs = np.linspace(0, 10, 20)
        model = LinearModel.fit(xs, slope * xs + intercept)
        assert model.max_error <= 1e-6 * (1 + abs(slope) * 10 + abs(intercept))


class TestEndpointLinearModel:
    def test_passes_through_endpoints(self):
        xs = np.array([1.0, 2.0, 5.0])
        ys = np.array([10.0, 11.0, 40.0])
        model = EndpointLinearModel.fit(xs, ys)
        assert model.predict(1.0) == pytest.approx(10.0)
        assert model.predict(5.0) == pytest.approx(40.0)

    def test_empty_and_single(self):
        assert EndpointLinearModel.fit(np.array([]), np.array([])).slope == 0.0
        model = EndpointLinearModel.fit(np.array([3.0]), np.array([9.0]))
        assert model.predict(3.0) == pytest.approx(9.0)

    def test_duplicate_endpoints_constant(self):
        model = EndpointLinearModel.fit(np.array([2.0, 2.0]), np.array([1.0, 5.0]))
        assert model.slope == 0.0
