"""Tests for dataset and workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DATASETS_1D,
    DATASETS_ND,
    insert_stream,
    knn_queries,
    load_1d,
    load_nd,
    mixed_workload,
    negative_lookups,
    point_lookups,
    range_queries_1d,
    range_queries_nd,
    zipf_lookups,
)
from repro.data.spatial import correlated_points


class TestOneDimDatasets:
    @pytest.mark.parametrize("name", sorted(DATASETS_1D))
    def test_exact_size_unique_sorted(self, name):
        keys = load_1d(name, 2000, seed=5)
        assert keys.size == 2000
        assert np.all(np.diff(keys) > 0)

    @pytest.mark.parametrize("name", sorted(DATASETS_1D))
    def test_deterministic(self, name):
        a = load_1d(name, 500, seed=9)
        b = load_1d(name, 500, seed=9)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(load_1d("uniform", 500, seed=1),
                                  load_1d("uniform", 500, seed=2))

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_1d("nope", 10)

    def test_fb_has_heavy_tail(self):
        keys = load_1d("fb", 5000, seed=1)
        # The tail keys dwarf the body - that is the point of the dataset.
        assert keys.max() > keys[int(0.9 * keys.size)] * 100

    def test_osm_is_clustered(self):
        keys = load_1d("osm", 5000, seed=1)
        gaps = np.diff(keys)
        # Clustered data: the largest gaps dominate the median gap.
        assert gaps.max() > np.median(gaps) * 1000


class TestSpatialDatasets:
    @pytest.mark.parametrize("name", sorted(DATASETS_ND))
    def test_exact_size_unique(self, name):
        pts = load_nd(name, 1500, seed=4)
        assert pts.shape == (1500, 2)
        assert np.unique(pts, axis=0).shape[0] == 1500

    def test_correlated_rho_controls_correlation(self):
        weak = correlated_points(3000, seed=2, rho=0.1)
        strong = correlated_points(3000, seed=2, rho=0.99)
        weak_r = abs(np.corrcoef(weak[:, 0], weak[:, 1])[0, 1])
        strong_r = abs(np.corrcoef(strong[:, 0], strong[:, 1])[0, 1])
        assert strong_r > 0.9 > weak_r

    def test_correlated_rejects_bad_rho(self):
        with pytest.raises(ValueError):
            correlated_points(100, rho=1.5)

    def test_higher_dims(self):
        pts = load_nd("uniform", 500, seed=3, dims=4)
        assert pts.shape == (500, 4)


class TestQueryWorkloads:
    def test_point_lookups_hit_existing_keys(self, uniform_keys):
        qs = point_lookups(uniform_keys, 200, seed=1)
        key_set = set(float(k) for k in uniform_keys)
        assert all(float(q) in key_set for q in qs)

    def test_negative_lookups_miss(self, uniform_keys):
        qs = negative_lookups(uniform_keys, 200, seed=2)
        key_set = set(float(k) for k in uniform_keys)
        assert all(float(q) not in key_set for q in qs)
        assert qs.size == 200

    def test_zipf_lookups_are_skewed(self, uniform_keys):
        qs = zipf_lookups(uniform_keys, 3000, seed=3)
        _, counts = np.unique(qs, return_counts=True)
        # Top key should dominate under a Zipf law.
        assert counts.max() > 3000 * 0.05

    def test_range_1d_selectivity(self, uniform_keys):
        for lo, hi in range_queries_1d(uniform_keys, 10, 0.01, seed=4):
            count = int(np.sum((uniform_keys >= lo) & (uniform_keys <= hi)))
            assert abs(count - 0.01 * uniform_keys.size) <= 2

    def test_range_1d_rejects_bad_selectivity(self, uniform_keys):
        with pytest.raises(ValueError):
            range_queries_1d(uniform_keys, 1, 0.0)

    def test_range_nd_never_empty_on_clustered(self, clustered_points):
        for lo, hi in range_queries_nd(clustered_points, 10, 0.001, seed=5):
            mask = np.all((clustered_points >= lo) & (clustered_points <= hi), axis=1)
            assert mask.sum() >= 1  # centred on a data point

    def test_knn_queries_shape(self, clustered_points):
        qs = knn_queries(clustered_points, 25, seed=6)
        assert qs.shape == (25, 2)

    def test_insert_stream_avoids_existing(self, uniform_keys):
        fresh = insert_stream(uniform_keys, 300, seed=7)
        key_set = set(float(k) for k in uniform_keys)
        assert all(float(k) not in key_set for k in fresh)
        assert np.unique(fresh).size == 300

    def test_insert_stream_append_mode_is_increasing(self, uniform_keys):
        fresh = insert_stream(uniform_keys, 100, seed=8, mode="append")
        assert fresh[0] > uniform_keys.max()
        assert np.all(np.diff(fresh) > 0)

    def test_insert_stream_hotspot_mode_is_concentrated(self, uniform_keys):
        fresh = insert_stream(uniform_keys, 300, seed=9, mode="hotspot")
        span = uniform_keys.max() - uniform_keys.min()
        assert fresh.max() - fresh.min() < span * 0.2

    def test_mixed_workload_ratio(self, uniform_keys):
        ops = list(mixed_workload(uniform_keys, 1000, 0.8, seed=10))
        assert len(ops) == 1000
        reads = sum(1 for op in ops if op.kind == "read")
        assert 700 <= reads <= 900

    def test_mixed_workload_rejects_bad_ratio(self, uniform_keys):
        with pytest.raises(ValueError):
            list(mixed_workload(uniform_keys, 10, 1.5))

    @settings(max_examples=20, deadline=None)
    @given(sel=st.sampled_from([0.001, 0.01, 0.05, 0.2]))
    def test_property_range_nd_selectivity_order(self, sel):
        pts = load_nd("uniform", 2000, seed=11)
        boxes = range_queries_nd(pts, 5, sel, seed=12)
        counts = [
            int(np.sum(np.all((pts >= lo) & (pts <= hi), axis=1))) for lo, hi in boxes
        ]
        assert np.mean(counts) == pytest.approx(sel * 2000, rel=1.2, abs=4)
