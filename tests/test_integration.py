"""Integration tests: cross-module consistency across the whole library.

These tests exercise the same workload through *every* index of a family
and demand identical answers — the strongest cross-implementation check
the library offers, and the invariant all benchmarks rely on.
"""

import numpy as np
import pytest

from repro.bench.runner import (
    MULTI_DIM_FACTORIES,
    MUTABLE_ONE_DIM_FACTORIES,
    ONE_DIM_FACTORIES,
)
from repro.core.registry import REGISTRY
from repro.data import load_1d, load_nd, mixed_workload, range_queries_nd


class TestOneDimConsistency:
    """All 18 one-dimensional indexes agree on every query."""

    @pytest.fixture(scope="class")
    def built(self):
        keys = load_1d("books", 3000, seed=42)
        values = [f"v{i}" for i in range(keys.size)]
        return keys, {
            name: factory().build(keys, values)
            for name, factory in ONE_DIM_FACTORIES.items()
        }

    def test_point_lookups_agree(self, built):
        keys, indexes = built
        oracle = indexes["binary-search"]
        rng = np.random.default_rng(1)
        probes = np.concatenate([
            keys[rng.integers(0, keys.size, 60)],
            rng.uniform(keys.min() - 10, keys.max() + 10, 60),
        ])
        for probe in probes:
            expected = oracle.lookup(float(probe))
            for name, index in indexes.items():
                assert index.lookup(float(probe)) == expected, (name, probe)

    def test_range_queries_agree(self, built):
        keys, indexes = built
        oracle = indexes["binary-search"]
        rng = np.random.default_rng(2)
        for _ in range(10):
            a, b = sorted(rng.uniform(keys.min(), keys.max(), 2))
            expected = oracle.range_query(float(a), float(b))
            for name, index in indexes.items():
                assert index.range_query(float(a), float(b)) == expected, name


class TestMutableOneDimConsistency:
    """All mutable indexes replay the same mixed workload identically."""

    def test_mixed_workload_replay(self):
        keys = load_1d("lognormal", 1200, seed=7)
        ops = list(mixed_workload(keys, 600, 0.6, seed=8))
        final_scans = {}
        for name, factory in MUTABLE_ONE_DIM_FACTORIES.items():
            index = factory().build(keys)
            for op in ops:
                if op.kind == "read":
                    index.lookup(op.key)
                else:
                    index.insert(op.key, round(op.key, 3))
            final_scans[name] = index.range_query(-1e300, 1e300)
        reference = final_scans.pop("b+tree")
        for name, scan in final_scans.items():
            assert scan == reference, name


class TestMultiDimConsistency:
    """All 13 multi-dimensional indexes agree with the R-tree."""

    @pytest.fixture(scope="class")
    def built(self):
        pts = load_nd("osm-like", 2000, seed=9)
        return pts, {
            name: factory().build(pts)
            for name, factory in MULTI_DIM_FACTORIES.items()
        }

    def test_point_queries_agree(self, built):
        pts, indexes = built
        oracle = indexes["r-tree"]
        rng = np.random.default_rng(3)
        probes = np.concatenate([
            pts[rng.integers(0, pts.shape[0], 40)],
            rng.uniform(pts.min(), pts.max(), (20, 2)),
        ])
        for probe in probes:
            expected = oracle.point_query(probe)
            for name, index in indexes.items():
                assert index.point_query(probe) == expected, name

    def test_range_queries_agree(self, built):
        pts, indexes = built
        oracle = indexes["r-tree"]
        for lo, hi in range_queries_nd(pts, 6, 0.005, seed=10):
            expected = sorted(v for _, v in oracle.range_query(lo, hi))
            for name, index in indexes.items():
                got = sorted(v for _, v in index.range_query(lo, hi))
                assert got == expected, name


class TestRegistryMatchesImplementations:
    """Every `implemented` pointer in the registry resolves and builds."""

    @pytest.mark.parametrize(
        "info", [i for i in REGISTRY if i.implemented], ids=lambda i: i.name
    )
    def test_implemented_class_importable_and_buildable(self, info):
        import importlib

        module_name, _, class_name = info.implemented.rpartition(".")
        cls = getattr(importlib.import_module(module_name), class_name)
        instance = cls()
        assert hasattr(instance, "build")
        # Tiny end-to-end build per declared dimensionality.
        from repro.core.taxonomy import Dimensionality, QueryType

        if info.name == "SIndex":
            # String-keyed adapter: exercised with string keys.
            instance.build(["a", "b", "c"])
            assert instance.lookup("b") == 1
        elif QueryType.AGGREGATE in info.queries:
            # Range-aggregate engine (PolyFit): count within its bound.
            instance.build(np.arange(100.0))
            estimate = instance.count(10.0, 20.0)
            assert abs(estimate - 11) <= instance.count_error_bound + 1
        elif QueryType.MEMBERSHIP in info.queries:
            if info.dimensionality is Dimensionality.MULTI_DIMENSIONAL:
                instance.build(np.random.default_rng(0).uniform(0, 10, (50, 2)))
                assert instance.might_contain([0.0, 0.0]) in (True, False)
            else:
                instance.build(np.arange(50.0))
                assert instance.might_contain(1.0) in (True, False)
        elif info.dimensionality is Dimensionality.ONE_DIMENSIONAL:
            instance.build(np.arange(50.0))
            assert instance.lookup(7.0) == 7
        else:
            pts = np.random.default_rng(0).uniform(0, 10, (50, 2))
            instance.build(pts)
            assert instance.point_query(pts[3]) == 3


class TestStatsAccounting:
    """Counters behave consistently across the library."""

    def test_reset_between_measurements(self):
        keys = load_1d("uniform", 500, seed=11)
        for name, factory in list(ONE_DIM_FACTORIES.items())[:6]:
            index = factory().build(keys)
            index.lookup(float(keys[0]))
            index.stats.reset_counters()
            snapshot = index.stats.snapshot()
            assert snapshot["comparisons"] == 0, name
            assert snapshot["keys_scanned"] == 0, name

    def test_size_bytes_scales_sublinearly_for_pure_learned(self):
        small = ONE_DIM_FACTORIES["pgm"]().build(load_1d("uniform", 1000, seed=12))
        large = ONE_DIM_FACTORIES["pgm"]().build(load_1d("uniform", 16000, seed=12))
        # 16x data must not mean 16x model (uniform data: same segments).
        assert large.stats.size_bytes < small.stats.size_bytes * 8

    def test_every_factory_reports_nonzero_cost_on_queries(self):
        pts = load_nd("uniform", 500, seed=13)
        for name, factory in MULTI_DIM_FACTORIES.items():
            index = factory().build(pts)
            index.stats.reset_counters()
            index.point_query(pts[0])
            index.range_query(pts.min(axis=0), pts.max(axis=0))
            total = (index.stats.comparisons + index.stats.keys_scanned
                     + index.stats.nodes_visited + index.stats.model_predictions)
            assert total > 0, name
