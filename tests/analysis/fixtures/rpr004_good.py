"""Fixture: seeded randomness only (RPR004 stays quiet)."""

import numpy as np
from numpy.random import default_rng

__all__ = ["sample", "seeded_rng", "generator_sample"]


def sample(n, seed):
    return np.random.default_rng(seed).uniform(size=n)


def seeded_rng(seed=42):
    return default_rng(seed)


def generator_sample(rng: np.random.Generator, n):
    return rng.normal(size=n)
