"""RPR204 positive fixture: generation bumps detached from their mutation."""

import threading


class DetachedGenerations:
    def __init__(self):
        self._lock = threading.Lock()
        self.generation = 0
        self.items = []

    def append_unlocked_bump(self, item):
        with self._lock:
            self.items.append(item)
        self.generation += 1

    def append_bump_alone(self, item):
        self.items.append(item)
        with self._lock:
            self.generation += 1
