"""Fixture: build() without the built flag, query without the check (RPR007)."""

__all__ = ["ForgetfulIndex"]


class ForgetfulIndex(MultiDimIndex):  # noqa: F821 - fixture, never imported
    def build(self, points, values=None):
        self._points = points
        return self

    def point_query(self, point):
        return self._points.get(tuple(point))
