"""Fixture: __all__ lists a name the module never binds (RPR008 fires)."""

__all__ = ["present", "phantom"]


def present():
    return 1
