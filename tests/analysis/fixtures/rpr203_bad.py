"""RPR203 positive fixture: Condition.wait guarded by ``if``, not a loop."""

import threading


class IfGuardedWait:
    def __init__(self):
        self._cond = threading.Condition()
        self._ready = False

    def take(self):
        with self._cond:
            if not self._ready:
                self._cond.wait()
            self._ready = False
