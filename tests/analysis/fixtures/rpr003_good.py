"""Fixture: floor-based routing plus round() outside routing scope (clean)."""

import numpy as np

__all__ = ["quantize_points", "predicted_position"]


def quantize_points(points, lo, hi, bits):
    frac = (points - lo) / (hi - lo)
    return np.floor(frac * (1 << bits)).astype(np.int64)


def predicted_position(model, key, n):
    # round() is fine here: model prediction followed by a bounded
    # last-mile search, not cell routing.
    return int(np.clip(round(model(key)), 0, n - 1))
