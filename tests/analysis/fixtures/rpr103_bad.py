"""RPR103 positive fixture: wide integers routed against float operands."""

__all__ = ["route", "compare"]

import numpy as np


def route(float_keys, codes):
    wide = np.asarray(codes, dtype=np.int64) & np.int64((1 << 62) - 1)
    return np.searchsorted(float_keys.astype(np.float64), wide)


def compare(codes, float_bounds):
    wide = np.asarray(codes, dtype=np.int64) & np.int64((1 << 62) - 1)
    return wide <= float_bounds.astype(np.float64)
