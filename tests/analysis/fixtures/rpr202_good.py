"""RPR202 negative fixture: full discipline, docstring escapes, lock-free."""

import threading


class DisciplinedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def incr(self):
        with self._lock:
            self._count += 1

    def read(self):
        with self._lock:
            return self._count

    def peek(self):
        """Racy snapshot read for monitoring; staleness is acceptable."""
        return self._count


class SingleWriter:
    """Lock-free by design: a single writer thread owns every field."""

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def incr(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count
