"""Fixture: unseeded / global-state randomness (RPR004 fires three times)."""

import numpy as np
from numpy.random import default_rng

__all__ = ["sample", "reseed", "fresh_rng"]


def sample(n):
    return np.random.rand(n)


def reseed():
    np.random.seed(0)


def fresh_rng():
    return default_rng()
