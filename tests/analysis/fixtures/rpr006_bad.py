"""Fixture: mutable default arguments (RPR006 fires twice)."""

__all__ = ["append_to", "merge_config"]


def append_to(item, bucket=[]):
    bucket.append(item)
    return bucket


def merge_config(*, overrides={}):
    return dict(overrides)
