"""Fixture: built-flag discipline done right (RPR007 stays quiet)."""

__all__ = ["DisciplinedIndex", "DerivedIndex"]


class DisciplinedIndex(MultiDimIndex):  # noqa: F821 - fixture, never imported
    def build(self, points, values=None):
        self._points = points
        self._built = True
        return self

    def point_query(self, point):
        self._require_built()
        return self._points.get(tuple(point))


class DerivedIndex(DisciplinedIndex):
    def build(self, points, values=None):
        return super().build(points, values)
