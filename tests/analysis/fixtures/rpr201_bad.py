"""RPR201 positive fixture: opposite lock orders plus nested re-entry."""

import threading


class TwoLockInverted:
    """Takes A then B on one path and B then A (via a helper) on another."""

    def __init__(self):
        self._lock_a = threading.Lock()
        self._lock_b = threading.Lock()
        self.total = 0

    def ab(self):
        with self._lock_a:
            with self._lock_b:
                self.total += 1

    def ba(self):
        with self._lock_b:
            self._take_a()

    def _take_a(self):
        with self._lock_a:
            self.total -= 1


class SelfNested:
    """Re-acquires its own non-reentrant lock while already holding it."""

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def outer(self):
        with self._lock:
            with self._lock:
                self.count += 1
