"""RPR302 negative fixture: a batch kernel that stays vectorized."""

import numpy as np

__all__ = ["OneDimIndex", "VectorBatchIndex"]


class OneDimIndex:  # stub base so the fixture imports standalone
    pass


class VectorBatchIndex(OneDimIndex):
    def build(self, keys, values=None):
        self._keys = np.sort(np.asarray(keys))
        return self

    def lookup(self, key):
        return int(np.searchsorted(self._keys, key))

    def lookup_batch(self, keys):
        queries = np.asarray(keys, dtype=np.float64)
        positions = np.searchsorted(self._keys, queries)
        positions = np.clip(positions, 0, self._keys.size - 1)
        hits = self._keys[positions] == queries
        return np.where(hits, positions, -1)
