"""Fixture: __all__ consistent with module bindings (clean)."""

from collections import OrderedDict as Ordered

__all__ = ["CONSTANT", "Ordered", "exported", "Exported"]

CONSTANT = 3


def exported():
    return CONSTANT


class Exported:
    pass
