"""Fixture: violations silenced by per-rule suppression comments."""

__all__ = ["append_to", "cell_of"]


def append_to(item, bucket=[]):  # lint: disable=RPR006 -- fixture exercising suppression
    bucket.append(item)
    return bucket


def cell_of(value, width):
    # lint: disable=RPR003 -- fixture: own-line comment covers the next line
    return int(round(value / width))
