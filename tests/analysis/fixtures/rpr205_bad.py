"""RPR205 positive fixture: worker-reachable segment create and unlink."""

from multiprocessing import Process
from multiprocessing.shared_memory import SharedMemory


def worker_main(name):
    shm = SharedMemory(name=name)
    try:
        use(shm)
    finally:
        shm.close()
        _cleanup(shm)


def _cleanup(shm):
    shm.unlink()


def creator_worker(size):
    shm = SharedMemory(create=True, size=size)
    use(shm)


def use(shm):
    return len(shm.buf)


def spawn():
    Process(target=worker_main, args=("seg",)).start()
    Process(target=creator_worker, args=(64,)).start()
