"""RPR102 positive fixture: lossy int -> float64 cast with no 2^53 guard."""

__all__ = ["codes_as_float"]

import numpy as np


def codes_as_float(codes):
    wide = np.asarray(codes, dtype=np.int64) & np.int64((1 << 62) - 1)
    return wide.astype(np.float64)
