"""Fixture: query scans that account their work (RPR005 stays quiet)."""

__all__ = ["CountedIndex", "DelegatingIndex"]


class CountedIndex(OneDimIndex):  # noqa: F821 - fixture, never imported
    def lookup(self, key):
        for k, v in self._pairs:
            self.stats.comparisons += 1
            if k == key:
                return v
        return None


class DelegatingIndex(OneDimIndex):  # noqa: F821 - fixture, never imported
    def lookup(self, key):
        for candidate in self._candidates(key):
            if candidate == key:
                return candidate
        return None
