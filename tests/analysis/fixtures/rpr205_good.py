"""RPR205 negative fixture: parent owns the lifecycle, worker attaches."""

from multiprocessing import Process
from multiprocessing.shared_memory import SharedMemory


def worker_main(name):
    shm = SharedMemory(name=name)
    try:
        use(shm)
    finally:
        shm.close()


def use(shm):
    return len(shm.buf)


def parent():
    shm = SharedMemory(create=True, size=64)
    proc = Process(target=worker_main, args=(shm.name,))
    proc.start()
    proc.join()
    shm.close()
    shm.unlink()
