"""RPR202 positive fixture: locked writers, bare readers (and vice versa)."""

import threading


class RacyCounter:
    """Writes under the lock; ``peek`` reads bare with no escape docstring."""

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def incr(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count


class ForgottenWriteLock:
    """Readers lock ``_mode`` but the writer mutates it bare."""

    def __init__(self):
        self._lock = threading.Lock()
        self._mode = "idle"

    def get_mode(self):
        with self._lock:
            return self._mode

    def set_mode(self, mode):
        self._mode = mode
