"""RPR301 positive fixture: hot paths that degrade to scans."""

__all__ = ["OneDimIndex", "ScanningIndex"]


class OneDimIndex:  # stub base so the fixture imports standalone
    pass


class ScanningIndex(OneDimIndex):
    """Unregistered class: the strict learned-index default applies."""

    def build(self, keys, values=None):
        self._keys = list(keys)
        self._values = list(values or [None] * len(self._keys))
        return self

    def lookup(self, key):
        for i, stored in enumerate(self._keys):  # O(n) scan
            if stored == key:
                return self._values[i]
        return None

    def insert(self, key, value=None):
        position = 0
        while position < len(self._keys) and self._keys[position] < key:
            position += 1  # O(n) shift-search without descent evidence
        self._keys.insert(position, key)
        self._values.insert(position, value)
