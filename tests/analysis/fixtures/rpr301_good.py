"""RPR301 negative fixture: sublinear hot paths the cost model accepts."""

import bisect

__all__ = ["OneDimIndex", "BoundedIndex"]


class OneDimIndex:  # stub base so the fixture imports standalone
    pass


class BoundedIndex(OneDimIndex):
    """Bisection lookup plus a documented duplicate-bounded repair scan."""

    def __init__(self, capacity=64):
        self.capacity = capacity
        self._keys = []
        self._values = []

    def build(self, keys, values=None):
        self._keys = sorted(keys)
        self._values = list(values or [None] * len(self._keys))
        return self

    def _scan_run(self, pos, key):
        """Duplicate-bounded: walks only the equal-key run at ``pos``."""
        while pos < len(self._keys) and self._keys[pos] == key:
            if self._values[pos] is not None:
                return self._values[pos]
            pos += 1
        return None

    def lookup(self, key):
        pos = bisect.bisect_left(self._keys, key)
        return self._scan_run(pos, key)

    def insert(self, key, value=None):
        pos = bisect.bisect_left(self._keys, key)
        self._keys.insert(pos, key)
        self._values.insert(pos, value)
