"""RPR206 positive fixture: control-plane code reaching past the store API."""


class RogueActuator:
    def __init__(self, store):
        self.store = store

    def apply_rebuild(self, shard):
        # BAD: mutating a shard object directly, no lock, no generation.
        self.store.shards[shard].compact()

    def apply_rebalance(self, bounds):
        # BAD: hand-writing the split keys and version word.
        self.store._bounds = bounds
        self.store._bounds_version += 1

    def bump(self, shard):
        # BAD: generation bookkeeping belongs to the store's methods.
        self.store.generations[shard] += 1

    def peek(self, shard):
        # BAD: reading store-private lock state from the control plane.
        with self.store._locks[shard]:
            return self.store.shards[shard]
