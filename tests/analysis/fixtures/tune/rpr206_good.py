"""RPR206 negative fixture: actuations via the store's public surface."""


class DisciplinedActuator:
    def __init__(self, store):
        self.store = store

    def apply_rebuild(self, shard):
        self.store.rebuild_shard(shard)

    def apply_rebalance(self, sample):
        self.store.rebalance(sample=sample)

    def apply_retune(self, shard, workload):
        self.store.retune_shard(shard, workload)

    def observe(self):
        # Public read-only surface is fine.
        return self.store.bounds, self.store.shard_sizes()
