"""RPR104 negative fixture: round-trips that provably keep headroom."""

__all__ = ["headroom_kept", "clamped_nonnegative"]

import numpy as np


def headroom_kept(values):
    u = np.asarray(values, dtype=np.uint64) & np.uint64((1 << 62) - 1)
    return u.astype(np.int64)


def clamped_nonnegative(values):
    delta = (np.asarray(values, dtype=np.int64) & np.int64(0xFF)) - np.int64(1)
    clamped = np.maximum(delta, np.int64(0))
    return clamped.astype(np.uint64)
