"""Fixture: a query method scanning data without stats (RPR005 fires)."""

__all__ = ["UncountedIndex"]


class UncountedIndex(OneDimIndex):  # noqa: F821 - fixture, never imported
    def lookup(self, key):
        for k, v in self._pairs:
            if k == key:
                return v
        return None
