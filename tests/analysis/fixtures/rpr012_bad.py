"""RPR012 positive fixture: suppression directives that silence nothing."""

__all__ = ["widen", "narrow"]


def widen(value, factor=2):  # lint: disable=RPR006 -- stale: no mutable default here
    return value * factor


def narrow(value, factor=2):
    # lint: disable=RPR999 -- unknown rule id is stale unconditionally
    return value / factor
