"""RPR104 positive fixture: sign-dropping uint64/int64 round-trips."""

__all__ = ["top_bit_set", "wrap_negative"]

import numpy as np


def top_bit_set(values):
    u = (np.asarray(values, dtype=np.uint64) & np.uint64(0xFFFFFFFF)) | np.uint64(1 << 63)
    return u.astype(np.int64)


def wrap_negative(values):
    delta = (np.asarray(values, dtype=np.int64) & np.int64(0xFF)) - np.int64(1)
    return delta.astype(np.uint64)
