"""RPR101 negative fixture: budget-respecting curve arithmetic."""

__all__ = ["interleave_guarded"]

import numpy as np

from repro.curves.capacity import require_code_budget

# d=2 table with the full 32-bit coordinate capacity the budget allows.
_SPREAD_STEPS = {
    2: (
        ((16, np.uint64(0x0000FFFF0000FFFF)),),
        np.uint64(0xFFFFFFFF),
    ),
}


def interleave_guarded(points, bits):
    require_code_budget(2, bits)
    arr = points.astype(np.uint64) & np.uint64((1 << 31) - 1)
    spread = (arr | (arr << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    return spread


def _spread_helper(values):
    # Private helpers run under an already-guarded public entry point.
    masked = np.asarray(values, dtype=np.uint64) & np.uint64(0xFF)
    return masked << np.uint64(8)
