"""RPR103 negative fixture: dtype-consistent routing."""

__all__ = ["route_int", "compare_small"]

import numpy as np


def route_int(sorted_codes, codes):
    wide = np.asarray(codes, dtype=np.int64) & np.int64((1 << 62) - 1)
    return np.searchsorted(sorted_codes.astype(np.int64), wide)


def compare_small(arr):
    narrow = np.asarray(arr, dtype=np.int64) & np.int64(0xFFFF)
    return narrow > 0.5
