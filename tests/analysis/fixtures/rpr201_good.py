"""RPR201 negative fixture: every path takes A before B; RLock re-entry."""

import threading


class TwoLockOrdered:
    """Both paths honour the A-before-B order, directly and via a helper."""

    def __init__(self):
        self._lock_a = threading.Lock()
        self._lock_b = threading.Lock()
        self.total = 0

    def ab(self):
        with self._lock_a:
            with self._lock_b:
                self.total += 1

    def also_ab(self):
        with self._lock_a:
            self._take_b()

    def _take_b(self):
        with self._lock_b:
            self.total -= 1


class ReentrantNested:
    """Nested acquisition of an RLock is sanctioned re-entry, not deadlock."""

    def __init__(self):
        self._lock = threading.RLock()
        self.count = 0

    def outer(self):
        with self._lock:
            with self._lock:
                self.count += 1
