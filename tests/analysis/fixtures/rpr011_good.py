"""RPR011 negative fixture: every file digest-verified before mapping."""

import hashlib
import pickle

import numpy as np


def map_arrays_checked(manifest, root):
    """sha256 per file, compared against the manifest, before any map."""
    views = []
    for entry in manifest["arrays"]:
        path = root / entry["file"]
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        if digest != entry["sha256"]:
            raise ValueError(f"{path}: digest mismatch")
        views.append(np.memmap(path, dtype=entry["dtype"], mode="r"))
    return views


def load_payload_checked(path, expected_sha256):
    """Payload bytes hashed and compared before pickle touches them."""
    with open(path, "rb") as fh:
        raw = fh.read()
    if hashlib.sha256(raw).hexdigest() != expected_sha256:
        raise ValueError(f"{path}: payload digest mismatch")
    return pickle.loads(raw)


def unpickle_verified_bytes(blob):
    """In-memory unpickle of caller-verified bytes is out of scope."""
    return pickle.loads(blob)
