"""RPR102 negative fixture: guarded or narrow int -> float64 casts."""

__all__ = ["codes_via_helper", "codes_with_explicit_guard", "narrow_codes"]

import numpy as np

from repro.core.numeric import exact_float64


def codes_via_helper(codes):
    wide = np.asarray(codes, dtype=np.int64) & np.int64((1 << 62) - 1)
    return exact_float64(wide, what="fixture codes")


def codes_with_explicit_guard(codes):
    wide = np.asarray(codes, dtype=np.int64) & np.int64((1 << 62) - 1)
    if np.abs(wide).max() >= 2**53:
        raise ValueError("codes exceed float64's exact integer range")
    return wide.astype(np.float64)


def narrow_codes(codes):
    narrow = np.asarray(codes, dtype=np.int64) & np.int64((1 << 40) - 1)
    return narrow.astype(np.float64)
