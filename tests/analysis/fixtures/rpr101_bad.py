"""RPR101 positive fixture: code-budget overflows the analyzer must flag."""

__all__ = ["shift_overflow", "interleave_unguarded"]

import numpy as np

# Spread table whose d=3 in-mask only admits 19 coordinate bits, below the
# 20 bits the 62-bit int64 budget allows at d=3.
_SPREAD_STEPS = {
    3: (
        ((2, np.uint64(0x1249249249249249)),),
        np.uint64(0x7FFFF),
    ),
}


def shift_overflow(values):
    masked = np.asarray(values, dtype=np.uint64) & np.uint64((1 << 62) - 1)
    return masked << np.uint64(16)


def interleave_unguarded(points, bits):
    arr = points.astype(np.uint64)
    spread = (arr | (arr << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    return spread
