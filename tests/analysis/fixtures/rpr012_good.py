"""RPR012 negative fixture: a directive that really suppresses a finding."""

__all__ = ["collect"]


def collect(item, seen=[]):  # lint: disable=RPR006 -- fixture: live suppression
    seen.append(item)
    return seen
