"""RPR303 negative fixture: serve-path containers with bound evidence."""

from collections import deque

__all__ = ["BoundedRequestLog"]


class BoundedRequestLog:
    """Grows containers but caps each one: eviction, len check, maxlen."""

    def __init__(self, capacity=128):
        self.capacity = capacity
        self._log = []
        self._recent = deque(maxlen=capacity)

    def record(self, request):
        self._log.append(request)
        if len(self._log) > self.capacity:
            self._log.pop(0)  # eviction keeps the log capacity-bounded
        self._recent.append(request)

    def reset(self):
        self._recent = deque(maxlen=self.capacity)
