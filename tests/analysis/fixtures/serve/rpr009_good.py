"""RPR009 negative fixture: guarded, documented, or self-delegating mutations."""

import threading


class LockedStore:
    """Mutates held indexes only under the owning shard's lock."""

    def __init__(self, factory, num_shards):
        self.shards = [factory() for _ in range(num_shards)]
        self._locks = [threading.Lock() for _ in range(num_shards)]

    def rebuild(self, shard, data):
        with self._locks[shard]:
            self.shards[shard].build(data)

    def add(self, shard, key, value):
        with self._locks[shard]:
            self.shards[shard].insert(key, value)

    def remove(self, shard, key):
        with self._locks[shard]:
            return self.shards[shard].delete(key)

    def insert(self, key, value):
        self.add(0, key, value)


class DelegatingFacade:
    """Forwards mutations to a store that owns the locking."""

    def __init__(self, store):
        self._store = store

    def insert(self, key, value):
        """Routed insert; the store takes the shard lock internally."""
        self._store.insert(key, value)

    def add_many(self, pairs):
        for key, value in pairs:
            self.insert(key, value)


class SnapshotReader:
    """Lock-free reader over immutable snapshots; never mutates shards."""

    def __init__(self, snapshots):
        self._snapshots = snapshots

    def refresh(self, factory, data):
        rebuilt = factory()
        rebuilt.build(data)
        self._snapshots.append(rebuilt)
