"""RPR010 positive fixture: shared-state snapshot discipline violations."""

import numpy as np
from multiprocessing import shared_memory


def allocate_scratch_segment(nbytes):
    # RPR010: segment creation outside repro.serve.shm
    return shared_memory.SharedMemory(create=True, size=nbytes)


class SnapshotRetirer:
    """Retires snapshots by unlinking segments directly."""

    def retire(self, shm):
        shm.close()
        shm.unlink()  # RPR010: unlink outside repro.serve.shm


def map_arrays_blindly(shm, specs):
    # RPR010: ndarray views over a shared buffer with no digest check
    views = []
    for dtype, shape, offset in specs:
        views.append(np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset))
    return views


def map_arrays_checked(shm, manifest):
    """Verifies the manifest sha256 before mapping; compliant."""
    if digest_of(shm) != manifest.sha256:
        raise ValueError("digest mismatch")
    return [np.ndarray(s.shape, dtype=s.dtype, buffer=shm.buf, offset=s.offset)
            for s in manifest.arrays]


def digest_of(shm):
    return "0" * 64


class ExportOnlyIndex:
    """RPR010: flattens state on export but inherits the generic restore."""

    def export_state(self):
        return None


class RestoreOnlyIndex:
    """RPR010: custom restore without the matching export override."""

    @classmethod
    def from_state(cls, state):
        return cls()
