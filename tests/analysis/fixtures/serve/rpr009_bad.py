"""RPR009 positive fixture: unguarded mutations of held index references."""

import threading


class UnlockedStore:
    """Holds shard indexes but mutates them without taking the shard lock."""

    def __init__(self, factory, num_shards):
        self.shards = [factory() for _ in range(num_shards)]
        self._locks = [threading.Lock() for _ in range(num_shards)]

    def rebuild(self, shard, data):
        self.shards[shard].build(data)  # RPR009: no lock, no docstring

    def add(self, shard, key, value):
        self.shards[shard].insert(key, value)  # RPR009

    def remove(self, shard, key):
        removed = self.shards[shard].delete(key)  # RPR009
        return removed


class HalfLockedStore:
    """Takes a lock for inserts but rebuilds outside it."""

    def __init__(self, factory):
        self.index = factory()
        self._lock = threading.Lock()

    def refresh(self, data):
        with self._lock:
            staged = list(data)
        self.index.build(staged)  # RPR009: lock released before the build
