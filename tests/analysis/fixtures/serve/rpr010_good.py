"""RPR010 negative fixture: compliant snapshot attach/retire idiom."""

import numpy as np
from multiprocessing import shared_memory


def attach_snapshot(manifest):
    """Attach by name (never create) and verify the digest before mapping."""
    shm = shared_memory.SharedMemory(name=manifest.shm_name)
    digest = sha256_of(shm, manifest.total_bytes)
    if digest != manifest.sha256:
        raise ValueError("snapshot digest mismatch")
    views = [np.ndarray(s.shape, dtype=s.dtype, buffer=shm.buf, offset=s.offset)
             for s in manifest.arrays]
    return views, shm


def sha256_of(shm, nbytes):
    return "0" * 64


def retire_snapshot(shm, release_segment):
    """Owner-side retirement goes through the shm module's helper."""
    release_segment(shm)


class PairedIndex:
    """Overrides the export/restore pair together; layouts stay in sync."""

    def export_state(self):
        return ()

    @classmethod
    def from_state(cls, state):
        return cls()


class InheritingIndex:
    """Defines neither half of the pair; the generic path handles both."""

    def build(self, data):
        self.data = list(data)
