"""RPR303 positive fixture: serve-path container that only ever grows."""

__all__ = ["LeakyRequestLog"]


class LeakyRequestLog:
    """Accumulates one entry per request with no eviction anywhere."""

    def __init__(self):
        self._log = []
        self._hits = 0

    def record(self, request):
        self._log.append(request)  # unbounded growth per request
        self._hits += 1  # scalar counter: allocates nothing, not flagged

    def handle(self, request):
        self.record(request)
        return {"status": "ok", "seen": self._hits}
