"""RPR206 negative fixture: re-partition methods that version their work."""


class VersionedStore:
    def __init__(self):
        self.shards = []
        self.generations = []

    def rebuild_shard(self, shard):
        self.shards[shard] = object()
        self.generations[shard] += 1

    def retune_shard(self, shard, workload):
        self.shards[shard] = object()
        self.generations[shard] += 1

    def rebalance(self, sample=None):
        # Delegation to a same-class family method is sanctioned.
        for shard in range(len(self.shards)):
            self.rebuild_shard(shard)
