"""RPR206 positive fixture: a re-partition method with no generation write."""


class LeakyStore:
    def __init__(self):
        self.shards = []
        self.generations = []

    def rebuild_shard(self, shard):
        # BAD: mutates the shard but never bumps its generation, so
        # caches keyed on the old generation keep serving stale hits.
        self.shards[shard] = object()

    def retune_shard(self, shard, workload):
        # BAD: same leak on the retune path.
        self.shards[shard] = object()
