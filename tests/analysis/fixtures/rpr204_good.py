"""RPR204 negative fixture: bump and mutation share one locked region."""

import threading


class AtomicGenerations:
    def __init__(self):
        self._lock = threading.Lock()
        self.generation = 0
        self.items = []

    def append(self, item):
        with self._lock:
            self.items.append(item)
            self.generation += 1
