"""RPR203 negative fixture: predicate loop and ``wait_for`` forms."""

import threading


class LoopGuardedWait:
    def __init__(self):
        self._cond = threading.Condition()
        self._ready = False

    def take(self):
        with self._cond:
            while not self._ready:
                self._cond.wait()
            self._ready = False

    def take_with_timeout(self):
        with self._cond:
            self._cond.wait_for(lambda: self._ready, timeout=1.0)
            self._ready = False
