"""Fixture: public module with no __all__ at all (RPR008 fires)."""


def orphan_export():
    return 2
