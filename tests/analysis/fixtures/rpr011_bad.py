"""RPR011 positive fixture: artifact bytes trusted before verification."""

import pickle

import numpy as np


def map_arrays_blindly(manifest, root):
    """Maps every array file without checking a single byte."""
    views = []
    for entry in manifest["arrays"]:
        views.append(
            np.memmap(root / entry["file"], dtype=entry["dtype"], mode="r")  # RPR011
        )
    return views


def read_array_blindly(path, dtype):
    """Eager read is just as unverified as a lazy map."""
    return np.fromfile(path, dtype=dtype)  # RPR011


def load_payload_blindly(path):
    """Unpickles file bytes nobody hashed — pickle executes code."""
    with open(path, "rb") as fh:
        return pickle.loads(fh.read())  # RPR011
