"""Fixture: rint/round inside cell-routing functions (RPR003 fires)."""

import numpy as np

__all__ = ["quantize_points", "cell_of"]


def quantize_points(points, lo, hi, bits):
    frac = (points - lo) / (hi - lo)
    return np.rint(frac * (1 << bits)).astype(np.int64)


def cell_of(value, width):
    return int(round(value / width))
