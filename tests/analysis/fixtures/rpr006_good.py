"""Fixture: None-defaults allocated inside the function (clean)."""

__all__ = ["append_to", "merge_config"]


def append_to(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def merge_config(*, overrides=None):
    return dict(overrides or {})
