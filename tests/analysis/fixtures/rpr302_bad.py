"""RPR302 positive fixture: batch kernels that revert to scalar cost."""

import numpy as np

__all__ = ["OneDimIndex", "ScalarBatchIndex"]


class OneDimIndex:  # stub base so the fixture imports standalone
    pass


class ScalarBatchIndex(OneDimIndex):
    def build(self, keys, values=None):
        self._keys = np.sort(np.asarray(keys))
        return self

    def lookup(self, key):
        return int(np.searchsorted(self._keys, key))

    def lookup_batch(self, keys):
        queries = np.asarray(keys)
        out = np.empty(0)
        for key in queries:  # per-element loop in a vectorized kernel
            out = np.append(out, self.lookup(float(key)))
        return out
