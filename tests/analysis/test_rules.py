"""Per-rule unit tests: one positive and one negative fixture per rule.

The syntactic rules (RPR003-RPR008) run on the fixture modules under
``fixtures/``; the contract rules (RPR001/RPR002) run on synthetic
:class:`RegistryView` snapshots so the tests control exactly which
classes are "registered" without mutating the live package.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.engine import build_context, run_analysis
from repro.analysis.registry_view import IndexClassInfo, RegistryView
from repro.analysis.rules import RULE_METADATA, RULES, AnalysisContext
from repro.analysis.source import SourceFile

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(rule_id: str, *fixture_names: str):
    ctx = build_context(
        FIXTURES,
        paths=[FIXTURES / name for name in fixture_names],
        use_registry=False,
    )
    return run_analysis(ctx, [rule_id]).findings


class TestRuleRegistry:
    def test_all_twenty_five_rules_registered(self):
        expected = [f"RPR00{i}" for i in range(1, 10)]
        expected += ["RPR010", "RPR011", "RPR012"]
        expected += [f"RPR10{i}" for i in range(1, 5)]
        expected += [f"RPR20{i}" for i in range(1, 7)]
        expected += [f"RPR30{i}" for i in range(1, 4)]
        assert sorted(RULES) == expected
        assert sorted(RULE_METADATA) == sorted(RULES)

    def test_metadata_has_rationale(self):
        for meta in RULE_METADATA.values():
            assert meta.rationale
            assert meta.name


def _synthetic_view(tmp_path: Path, **overrides) -> tuple[AnalysisContext, Path]:
    """A context whose registry contains exactly one synthetic class."""
    module = tmp_path / "fake_index.py"
    module.write_text(
        '"""Synthetic module."""\n\n__all__ = ["FakeIndex"]\n\n\n'
        "class FakeIndex:\n    pass\n",
        encoding="utf-8",
    )
    fields = {
        "qualname": "fake.FakeIndex",
        "name": "FakeIndex",
        "module": "fake",
        "filename": str(module),
        "lineno": 6,
        "family": "OneDimIndex",
        "missing_abstract": (),
        "batch_overrides": (),
        "in_registry": True,
        "factory_names": ("fake",),
    }
    fields.update(overrides)
    info = IndexClassInfo(**fields)
    view = RegistryView(
        classes=[info],
        factory_members={
            "ONE_DIM_FACTORIES": {"fake.FakeIndex"},
            "MULTI_DIM_FACTORIES": set(),
        },
    )
    ctx = AnalysisContext(
        root=tmp_path,
        files=[SourceFile.load(module, tmp_path)],
        registry=view,
    )
    return ctx, module


class TestRPR001ContractSurface:
    def test_fires_on_missing_abstract_methods(self, tmp_path):
        ctx, _ = _synthetic_view(tmp_path, missing_abstract=("lookup", "range_query"))
        findings = run_analysis(ctx, ["RPR001"]).findings
        assert len(findings) == 1
        assert "lookup" in findings[0].message

    def test_fires_on_unregistered_class(self, tmp_path):
        ctx, _ = _synthetic_view(tmp_path, in_registry=False, factory_names=())
        findings = run_analysis(ctx, ["RPR001"]).findings
        assert len(findings) == 1
        assert "escapes" in findings[0].message

    def test_quiet_on_registered_complete_class(self, tmp_path):
        ctx, _ = _synthetic_view(tmp_path)
        assert run_analysis(ctx, ["RPR001"]).findings == []

    def test_factory_membership_alone_suffices(self, tmp_path):
        ctx, _ = _synthetic_view(tmp_path, in_registry=False, factory_names=("fake",))
        assert run_analysis(ctx, ["RPR001"]).findings == []


class TestRPR002BatchParityCoverage:
    def test_fires_on_override_outside_parity_factories(self, tmp_path):
        ctx, _ = _synthetic_view(tmp_path, batch_overrides=("lookup_batch",))
        ctx.registry.factory_members["ONE_DIM_FACTORIES"] = set()
        findings = run_analysis(ctx, ["RPR002"]).findings
        assert len(findings) == 1
        assert "lookup_batch" in findings[0].message

    def test_quiet_when_override_is_covered(self, tmp_path):
        ctx, _ = _synthetic_view(tmp_path, batch_overrides=("lookup_batch",))
        assert run_analysis(ctx, ["RPR002"]).findings == []

    def test_fires_when_parity_test_drops_the_dicts(self, tmp_path):
        ctx, module = _synthetic_view(tmp_path)
        ctx.parity_test = SourceFile.load(module, tmp_path)  # no FACTORIES refs
        findings = run_analysis(ctx, ["RPR002"]).findings
        assert len(findings) == 2
        assert all("unverifiable" in f.message for f in findings)


class TestRPR003RoutingRound:
    def test_fires_on_rint_and_round_in_routing(self):
        findings = findings_for("RPR003", "rpr003_bad.py")
        assert len(findings) == 2
        assert any("rint" in f.message for f in findings)
        assert any("round()" in f.message for f in findings)

    def test_quiet_on_floor_routing_and_prediction_round(self):
        assert findings_for("RPR003", "rpr003_good.py") == []

    def test_fires_anywhere_inside_curves_modules(self, tmp_path):
        curves = tmp_path / "curves"
        curves.mkdir()
        mod = curves / "morton.py"
        mod.write_text(
            '"""Curve module."""\n\n__all__ = ["enc"]\n\n'
            "def enc(x):\n    return round(x)\n",
            encoding="utf-8",
        )
        ctx = build_context(tmp_path, paths=[mod], use_registry=False)
        assert len(run_analysis(ctx, ["RPR003"]).findings) == 1


class TestRPR004UnseededRNG:
    def test_fires_on_global_state_and_unseeded_rng(self):
        findings = findings_for("RPR004", "rpr004_bad.py")
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "np.random.rand" in messages
        assert "reseeds global state" in messages
        assert "without a seed" in messages

    def test_quiet_on_seeded_generators(self):
        assert findings_for("RPR004", "rpr004_good.py") == []


class TestRPR005StatsAccounting:
    def test_fires_on_uncounted_scan(self):
        findings = findings_for("RPR005", "rpr005_bad.py")
        assert len(findings) == 1
        assert "UncountedIndex.lookup" in findings[0].message

    def test_quiet_on_counted_or_delegating_scans(self):
        assert findings_for("RPR005", "rpr005_good.py") == []


class TestRPR006MutableDefaults:
    def test_fires_on_list_and_dict_defaults(self):
        findings = findings_for("RPR006", "rpr006_bad.py")
        assert len(findings) == 2

    def test_quiet_on_none_defaults(self):
        assert findings_for("RPR006", "rpr006_good.py") == []


class TestRPR007BuiltFlag:
    def test_fires_on_missing_flag_and_missing_check(self):
        findings = findings_for("RPR007", "rpr007_bad.py")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "never sets self._built" in messages
        assert "_require_built" in messages

    def test_quiet_on_disciplined_and_super_delegating_classes(self):
        assert findings_for("RPR007", "rpr007_good.py") == []


class TestRPR008DunderAll:
    def test_fires_on_phantom_export(self):
        findings = findings_for("RPR008", "rpr008_bad.py")
        assert len(findings) == 1
        assert "phantom" in findings[0].message

    def test_fires_on_missing_dunder_all(self):
        findings = findings_for("RPR008", "rpr008_missing.py")
        assert len(findings) == 1
        assert "no __all__" in findings[0].message

    def test_quiet_on_consistent_exports(self):
        assert findings_for("RPR008", "rpr008_good.py") == []


class TestRPR009ServeShardLocks:
    def test_fires_on_each_unguarded_mutation(self):
        findings = findings_for("RPR009", "serve/rpr009_bad.py")
        assert len(findings) == 4
        messages = " ".join(f.message for f in findings)
        assert "build()" in messages
        assert "insert()" in messages
        assert "delete()" in messages
        # The half-locked class releases the lock before rebuilding.
        assert "HalfLockedStore.refresh" in messages

    def test_quiet_on_locked_documented_and_lock_free_classes(self):
        assert findings_for("RPR009", "serve/rpr009_good.py") == []

    def test_scoped_to_serve_paths(self):
        # The same unguarded code outside a serve/ directory is ignored:
        # the rule encodes a serving-layer contract, not a repo-wide one.
        import shutil

        src = FIXTURES / "serve" / "rpr009_bad.py"
        outside = FIXTURES / "rpr009_outside_scope.py"
        shutil.copyfile(src, outside)
        try:
            assert findings_for("RPR009", "rpr009_outside_scope.py") == []
        finally:
            outside.unlink()


class TestRPR010SharedStateDiscipline:
    def test_fires_on_each_seeded_violation(self):
        findings = findings_for("RPR010", "serve/rpr010_bad.py")
        messages = [f.message for f in findings]
        assert len(findings) == 5
        assert any("created outside repro.serve.shm" in m for m in messages)
        assert any("unlink() outside repro.serve.shm" in m for m in messages)
        assert any("map_arrays_blindly maps ndarray views" in m
                   for m in messages)
        assert any("ExportOnlyIndex overrides export_state but not from_state"
                   in m for m in messages)
        assert any("RestoreOnlyIndex overrides from_state but not export_state"
                   in m for m in messages)

    def test_digest_checked_mapper_is_quiet(self):
        findings = findings_for("RPR010", "serve/rpr010_bad.py")
        assert not any("map_arrays_checked" in f.message for f in findings)

    def test_quiet_on_compliant_attach_and_paired_state(self):
        assert findings_for("RPR010", "serve/rpr010_good.py") == []

    def test_segment_checks_scoped_to_serve_paths(self):
        # The same creation/unlink/mapping code outside serve/ is ignored
        # (the confinement is a serving-layer contract), but unpaired
        # export_state/from_state overrides are flagged repo-wide.
        import shutil

        src = FIXTURES / "serve" / "rpr010_bad.py"
        outside = FIXTURES / "rpr010_outside_scope.py"
        shutil.copyfile(src, outside)
        try:
            findings = findings_for("RPR010", "rpr010_outside_scope.py")
            messages = [f.message for f in findings]
            assert len(findings) == 2
            assert all("overrides" in m for m in messages)
        finally:
            outside.unlink()


class TestRPR011ArtifactDigestDiscipline:
    def test_fires_on_each_unverified_access(self):
        findings = findings_for("RPR011", "rpr011_bad.py")
        messages = [f.message for f in findings]
        assert len(findings) == 3
        assert any("map_arrays_blindly maps file bytes" in m and "memmap" in m
                   for m in messages)
        assert any("read_array_blindly maps file bytes" in m and "fromfile" in m
                   for m in messages)
        assert any("load_payload_blindly unpickles bytes read from disk" in m
                   for m in messages)

    def test_quiet_on_digest_checked_access(self):
        assert findings_for("RPR011", "rpr011_good.py") == []

    def test_in_memory_unpickle_is_out_of_scope(self):
        # unpickle_verified_bytes in the good fixture never reads a file;
        # verify the bad fixture's findings never point at a function
        # that only handles in-memory bytes.
        findings = findings_for("RPR011", "rpr011_good.py")
        assert not any("unpickle_verified_bytes" in f.message for f in findings)


class TestRPR101CodeBudget:
    def test_fires_on_narrow_mask_table_and_wide_shifts(self):
        findings = findings_for("RPR101", "rpr101_bad.py")
        messages = [f.message for f in findings]
        assert any("spread-table input mask for d=3" in m for m in messages)
        assert any("78 bits" in m for m in messages)
        unguarded = {m.split("'")[1] for m in messages if "'" in m}
        assert {"shift_overflow", "interleave_unguarded"} <= unguarded

    def test_quiet_on_guarded_kernels_and_full_masks(self):
        assert findings_for("RPR101", "rpr101_good.py") == []


class TestRPR102LossyFloatCast:
    def test_fires_on_unguarded_wide_cast(self):
        findings = findings_for("RPR102", "rpr102_bad.py")
        assert len(findings) == 1
        assert "62 bits" in findings[0].message
        assert "exact_float64" in findings[0].message

    def test_quiet_on_guarded_or_narrow_casts(self):
        assert findings_for("RPR102", "rpr102_good.py") == []


class TestRPR103MixedDtypeRouting:
    def test_fires_on_searchsorted_and_comparison(self):
        findings = findings_for("RPR103", "rpr103_bad.py")
        assert len(findings) == 2
        assert any("searchsorted" in f.message for f in findings)
        assert any("comparison" in f.message for f in findings)

    def test_quiet_on_integral_routing(self):
        assert findings_for("RPR103", "rpr103_good.py") == []


class TestRPR104SignRoundTrip:
    def test_fires_on_top_bit_and_negative_wrap(self):
        findings = findings_for("RPR104", "rpr104_bad.py")
        assert len(findings) == 2
        assert any("sign bit" in f.message for f in findings)
        assert any("wrap to huge codes" in f.message for f in findings)

    def test_quiet_on_headroom_and_clamped_values(self):
        assert findings_for("RPR104", "rpr104_good.py") == []


class TestRPR301ComplexityContract:
    def test_fires_on_linear_hot_paths(self):
        findings = findings_for("RPR301", "rpr301_bad.py")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "ScanningIndex.lookup" in messages
        assert "ScanningIndex.insert" in messages
        assert "O(n)" in messages

    def test_quiet_on_bisection_with_documented_bounded_scan(self):
        # BoundedIndex.lookup bisects and then calls a helper whose
        # docstring declares the scan duplicate-bounded: the cost model
        # must follow the call and honour the escape.
        assert findings_for("RPR301", "rpr301_good.py") == []


class TestRPR302BatchKernelDiscipline:
    def test_fires_on_scalar_loop_and_append_accumulation(self):
        findings = findings_for("RPR302", "rpr302_bad.py")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "iterates the query batch" in messages
        assert "append" in messages

    def test_quiet_on_vectorized_kernel(self):
        assert findings_for("RPR302", "rpr302_good.py") == []


class TestRPR303ServeAllocation:
    def test_fires_on_unbounded_container_growth(self):
        findings = findings_for("RPR303", "serve/rpr303_bad.py")
        assert len(findings) == 1
        assert "LeakyRequestLog grows self._log" in findings[0].message

    def test_scalar_counters_are_not_growth(self):
        # self._hits += 1 in the bad fixture allocates nothing.
        findings = findings_for("RPR303", "serve/rpr303_bad.py")
        assert not any("_hits" in f.message for f in findings)

    def test_quiet_on_eviction_len_check_and_maxlen(self):
        assert findings_for("RPR303", "serve/rpr303_good.py") == []

    def test_scoped_to_serve_paths(self):
        # The same unbounded growth outside a serve/ directory is ignored:
        # the rule encodes a serving-layer contract, not a repo-wide one.
        import shutil

        src = FIXTURES / "serve" / "rpr303_bad.py"
        outside = FIXTURES / "rpr303_outside_scope.py"
        shutil.copyfile(src, outside)
        try:
            assert findings_for("RPR303", "rpr303_outside_scope.py") == []
        finally:
            outside.unlink()


class TestRPR012StaleSuppression:
    def _run(self, fixture, rule_ids=None):
        ctx = build_context(
            FIXTURES, paths=[FIXTURES / fixture], use_registry=False
        )
        return run_analysis(ctx, rule_ids)

    def test_fires_on_stale_and_unknown_directives(self):
        result = self._run("rpr012_bad.py")  # full run: rules are auditable
        stale = [f for f in result.findings if f.rule_id == "RPR012"]
        assert len(stale) == 2
        messages = " ".join(f.message for f in stale)
        assert "RPR006" in messages
        assert "RPR999" in messages

    def test_quiet_on_live_suppression(self):
        result = self._run("rpr012_good.py")
        assert [f for f in result.findings if f.rule_id == "RPR012"] == []
        assert {f.rule_id for f in result.suppressed} == {"RPR006"}

    def test_unaudited_rule_is_not_judged_stale(self):
        # With only RPR012 selected, RPR006 never ran, so its directive
        # cannot be judged; the unknown rule id is stale unconditionally.
        result = self._run("rpr012_bad.py", ["RPR012"])
        stale = [f for f in result.findings if f.rule_id == "RPR012"]
        assert len(stale) == 1
        assert "RPR999" in stale[0].message


class TestSuppression:
    @pytest.mark.parametrize("rule_id", ["RPR003", "RPR006"])
    def test_disable_comment_moves_finding_to_suppressed(self, rule_id):
        ctx = build_context(
            FIXTURES, paths=[FIXTURES / "suppressed.py"], use_registry=False
        )
        result = run_analysis(ctx, [rule_id])
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0].rule_id == rule_id

    def test_suppression_is_per_rule(self):
        # The disable=RPR006 comment must not silence other rules there.
        ctx = build_context(
            FIXTURES, paths=[FIXTURES / "suppressed.py"], use_registry=False
        )
        result = run_analysis(ctx)
        assert result.findings == []
        assert {f.rule_id for f in result.suppressed} == {"RPR003", "RPR006"}


class TestRPR206TunerActuationDiscipline:
    def test_fires_on_control_plane_store_mutations(self):
        findings = findings_for("RPR206", "tune/rpr206_bad.py")
        messages = "\n".join(f.message for f in findings)
        assert "'.compact()' on a shard object" in messages
        assert "'._bounds'" in messages
        assert "'._bounds_version'" in messages
        assert "'.generations'" in messages
        assert "store-private '._locks'" in messages
        assert len(findings) >= 5

    def test_quiet_on_public_repartition_surface(self):
        assert findings_for("RPR206", "tune/rpr206_good.py") == []

    def test_fires_on_bumpless_serve_repartition(self):
        findings = findings_for("RPR206", "serve/rpr206_bad.py")
        assert len(findings) == 2
        assert any("LeakyStore.rebuild_shard" in f.message for f in findings)
        assert any("LeakyStore.retune_shard" in f.message for f in findings)

    def test_quiet_on_versioned_and_delegating_repartition(self):
        assert findings_for("RPR206", "serve/rpr206_good.py") == []

    def test_scoped_to_tune_and_serve_paths(self):
        # The same store pokes outside a tune/ directory are ignored:
        # the rule encodes the control-plane contract, not a repo-wide
        # style ban.
        import shutil

        src = FIXTURES / "tune" / "rpr206_bad.py"
        outside = FIXTURES / "rpr206_outside_scope.py"
        shutil.copyfile(src, outside)
        try:
            assert findings_for("RPR206", "rpr206_outside_scope.py") == []
        finally:
            outside.unlink()

    def test_live_tune_package_is_clean(self):
        repo = Path(__file__).resolve().parents[2]
        ctx = build_context(
            repo, paths=[repo / "src" / "repro" / "tune",
                         repo / "src" / "repro" / "serve"],
            use_registry=False,
        )
        assert run_analysis(ctx, ["RPR206"]).findings == []
