"""Unit tests for the numeric dataflow analyzer.

Each test parses a tiny synthetic function, runs :func:`analyze_module`,
and checks the abstract value inferred for the return expression — the
same facts the RPR1xx rules consume.
"""

from __future__ import annotations

import ast

import pytest

from repro.analysis.dataflow import (
    TOP,
    AbstractValue,
    FunctionFacts,
    analyze_module,
    bit_width,
    join,
    parse_spread_table,
)


def facts_of(source: str, qualname: str) -> FunctionFacts:
    module = analyze_module(ast.parse(source))
    for fn in module.functions:
        if fn.qualname == qualname:
            return fn
    raise AssertionError(f"no function {qualname!r} analyzed")


def return_value(fn: FunctionFacts) -> AbstractValue:
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Return) and node.value is not None:
            return fn.value_of(node.value)
    raise AssertionError("function has no return expression")


class TestConstantFolding:
    def test_mask_literal_is_exact_and_non_negative(self):
        fn = facts_of("def f():\n    return (1 << 62) - 1\n", "f")
        value = return_value(fn)
        assert value.is_int
        assert value.max_abs == (1 << 62) - 1
        assert not value.maybe_negative

    def test_dtype_constructor_keeps_value_and_dtype(self):
        fn = facts_of(
            "import numpy as np\n"
            "def f():\n    return np.uint64(1 << 63)\n",
            "f",
        )
        value = return_value(fn)
        assert value.dtype == "uint64"
        assert value.max_abs == 1 << 63
        assert not value.maybe_negative


class TestBoundPropagation:
    def test_and_mask_caps_unknown_operand(self):
        fn = facts_of(
            "import numpy as np\n"
            "def f(codes):\n"
            "    wide = np.asarray(codes, dtype=np.int64) & np.int64((1 << 62) - 1)\n"
            "    return wide\n",
            "f",
        )
        value = return_value(fn)
        assert value.dtype == "int64"
        assert bit_width(value) == 62
        assert not value.maybe_negative

    def test_shift_multiplies_bound(self):
        fn = facts_of(
            "def f(x):\n    m = x & 0xFF\n    return m << 8\n", "f")
        value = return_value(fn)
        assert bit_width(value) == 16

    def test_huge_shift_amount_stays_unknown(self):
        # A position-sized shift amount must not be materialised as a
        # Python int (it used to allocate terabytes); the bound goes to
        # unknown instead.
        fn = facts_of(
            "import numpy as np\n"
            "def f(a, b):\n"
            "    n = np.searchsorted(a, b)\n"
            "    return 1 << n\n",
            "f",
        )
        assert return_value(fn).max_abs is None

    def test_sub_makes_negative_possible(self):
        fn = facts_of("def f(x):\n    m = x & 0xFF\n    return m - 1\n", "f")
        value = return_value(fn)
        assert value.maybe_negative
        assert value.max_abs == 256

    def test_maximum_with_zero_clears_sign(self):
        fn = facts_of(
            "import numpy as np\n"
            "def f(x):\n"
            "    d = (x & 0xFF) - 1\n"
            "    return np.maximum(d, 0)\n",
            "f",
        )
        assert not return_value(fn).maybe_negative

    def test_float_cast_loses_int_domain(self):
        fn = facts_of(
            "import numpy as np\n"
            "def f(x):\n    return x.astype(np.float64)\n", "f")
        assert return_value(fn).is_float


class TestSignaturesAndGuards:
    def test_signature_db_bounds_curve_codes(self):
        fn = facts_of(
            "def f(points, lo, hi, bits):\n"
            "    return zencode_array(points, lo, hi, bits)\n",
            "f",
        )
        value = return_value(fn)
        assert value.dtype == "int64"
        assert bit_width(value) == 62

    def test_param_guard_narrows_bits(self):
        fn = facts_of(
            "def f(bits):\n"
            "    if bits < 1 or bits > 31:\n"
            "        raise ValueError()\n"
            "    return bits\n",
            "f",
        )
        assert return_value(fn).max_abs == 31

    def test_float64_guard_detection(self):
        fn = facts_of(
            "def f(x):\n"
            "    if x.max() >= 2**53:\n"
            "        raise ValueError()\n"
            "    return x\n",
            "f",
        )
        assert fn.has_float64_guard

    def test_budget_guard_detection(self):
        fn = facts_of(
            "def f(d, bits):\n"
            "    if d * bits > 62:\n"
            "        raise ValueError()\n"
            "    return bits\n",
            "f",
        )
        assert fn.has_budget_guard


class TestClassAttributes:
    def test_init_facts_reach_query_methods(self):
        source = (
            "class Idx:\n"
            "    def __init__(self):\n"
            "        self.bits = 7\n"
            "    def q(self):\n"
            "        return self.bits\n"
        )
        fn = facts_of(source, "Idx.q")
        assert return_value(fn).max_abs == 7


class TestSpreadTables:
    SOURCE = (
        "import numpy as np\n"
        "_SPREAD = {2: (((1, np.uint64(3)),), np.uint64(0xFFFFFFFF))}\n"
        "def f(d):\n"
        "    steps, in_mask = _SPREAD[d]\n"
        "    return in_mask\n"
    )

    def test_parse_collects_masks(self):
        tree = ast.parse(self.SOURCE)
        assign = next(s for s in tree.body if isinstance(s, ast.Assign))
        parsed = parse_spread_table(assign)
        assert parsed is not None
        name, table = parsed
        assert name == "_SPREAD"
        assert table.masks == {2: 0xFFFFFFFF}

    def test_unpack_binds_mask_bound(self):
        fn = facts_of(self.SOURCE, "f")
        assert return_value(fn).max_abs == 0xFFFFFFFF


class TestLattice:
    def test_join_widens_bounds_and_sign(self):
        a = AbstractValue("int", "int64", 10, False)
        b = AbstractValue("int", "int64", 100, True)
        merged = join(a, b)
        assert merged.max_abs == 100
        assert merged.maybe_negative

    def test_join_of_kind_mismatch_is_top(self):
        a = AbstractValue("int", "int64", 10, False)
        b = AbstractValue("float", "float64", None, True)
        assert join(a, b) == TOP

    @pytest.mark.parametrize("max_abs,width", [(0, 0), (1, 1), (255, 8), ((1 << 62) - 1, 62)])
    def test_bit_width(self, max_abs, width):
        assert bit_width(AbstractValue("int", "pyint", max_abs, False)) == width

    def test_bit_width_of_unknown_is_none(self):
        assert bit_width(TOP) is None
