"""Concurrency analyzer tests: RPR201-205 fixtures + the lock-graph model.

Each rule gets one positive and one negative fixture (mirroring
``test_rules.py``), and the interprocedural model itself is pinned
against the live serving stack: the static lock graph of ``src/repro``
must contain exactly the sanctioned acquisition edges and stay acyclic.
That last test is the static half of the cross-validation contract —
the runtime half lives in ``tests/core/test_lockorder.py``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.concurrency import build_model, static_lock_graph
from repro.analysis.engine import build_context, run_analysis

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def findings_for(rule_id: str, *fixture_names: str):
    ctx = build_context(
        FIXTURES,
        paths=[FIXTURES / name for name in fixture_names],
        use_registry=False,
    )
    return run_analysis(ctx, [rule_id]).findings


def model_for(*fixture_names: str):
    ctx = build_context(
        FIXTURES,
        paths=[FIXTURES / name for name in fixture_names],
        use_registry=False,
    )
    return build_model(ctx)


class TestFixtures:
    """One positive and one negative fixture per rule."""

    @pytest.mark.parametrize("rule_id,expected", [
        ("RPR201", 2),  # interprocedural a->b->a cycle + self-nested Lock
        ("RPR202", 2),  # bare read of locked attr + bare write of read-locked attr
        ("RPR203", 1),  # if-guarded Condition.wait
        ("RPR204", 2),  # generation bump outside / alone inside the lock
        ("RPR205", 2),  # worker-reachable unlink + create
    ])
    def test_bad_fixture_fires(self, rule_id, expected):
        bad = f"rpr{rule_id[3:]}_bad.py"
        findings = findings_for(rule_id, bad)
        assert len(findings) == expected, [f.message for f in findings]
        assert all(f.rule_id == rule_id for f in findings)

    @pytest.mark.parametrize("rule_id", ["RPR201", "RPR202", "RPR203", "RPR204", "RPR205"])
    def test_good_fixture_is_clean(self, rule_id):
        good = f"rpr{rule_id[3:]}_good.py"
        assert findings_for(rule_id, good) == []

    def test_rpr201_cycle_message_has_provenance(self):
        """The cycle finding names both legs so the report is actionable."""
        messages = [f.message for f in findings_for("RPR201", "rpr201_bad.py")]
        cycle = next(m for m in messages if "lock-order cycle" in m)
        assert "TwoLockInverted._lock_a" in cycle
        assert "TwoLockInverted._lock_b" in cycle
        # The b->a leg only exists through the _take_a helper.
        assert "_take_a" in cycle

    def test_rpr202_names_the_guard(self):
        messages = [f.message for f in findings_for("RPR202", "rpr202_bad.py")]
        assert any("RacyCounter._lock" in m for m in messages)

    def test_rpr205_reports_both_lifecycle_ops(self):
        messages = " ".join(f.message for f in findings_for("RPR205", "rpr205_bad.py"))
        assert "unlink" in messages
        assert "create" in messages


class TestModel:
    """Unit-level checks on the interprocedural lock model."""

    def test_lock_discovery_kinds(self):
        model = model_for("rpr201_good.py", "rpr203_good.py")
        ordered = model.classes["TwoLockOrdered"]
        assert {d.attr: d.kind for d in ordered.locks.values()} == {
            "_lock_a": "lock", "_lock_b": "lock",
        }
        reentrant = model.classes["ReentrantNested"]
        assert reentrant.locks["_lock"].kind == "rlock"
        waiter = model.classes["LoopGuardedWait"]
        assert waiter.locks["_cond"].kind == "condition"

    def test_edges_follow_helper_calls(self):
        """`also_ab` holds _lock_a across `_take_b`, producing the a->b edge."""
        model = model_for("rpr201_good.py")
        edges = {(src, dst) for (src, dst) in model.edges}
        assert ("TwoLockOrdered._lock_a", "TwoLockOrdered._lock_b") in edges
        assert ("TwoLockOrdered._lock_b", "TwoLockOrdered._lock_a") not in edges

    def test_entry_held_for_private_helper(self):
        """`_take_b` is only ever called with _lock_a held, and knows it."""
        model = model_for("rpr201_good.py")
        helper = model.classes["TwoLockOrdered"].methods["_take_b"]
        assert "TwoLockOrdered._lock_a" in helper.entry_held

    def test_wait_sites_record_loop_context(self):
        model = model_for("rpr203_bad.py", "rpr203_good.py")
        bad = model.classes["IfGuardedWait"].methods["take"]
        assert [w.in_while for w in bad.wait_sites] == [False]
        good = model.classes["LoopGuardedWait"].methods["take"]
        assert [w.in_while for w in good.wait_sites] == [True]


class TestRepoLockGraph:
    """The serving stack's static lock graph is pinned and acyclic."""

    # Every acquisition ordering the serving stack is allowed to exhibit.
    SANCTIONED = {
        ("Coalescer._conds", "ServerStats._lock"),
        ("ProcessShardExecutor._pipe_locks", "ProcessShardExecutor._state_lock"),
        ("ProcessShardExecutor._pipe_locks", "ServerStats._lock"),
        ("ProcessShardExecutor._pipe_locks", "ShardedStore._locks"),
    }

    @pytest.fixture(scope="class")
    def graph(self):
        ctx = build_context(REPO_ROOT, use_registry=False)
        return static_lock_graph(ctx)

    def test_expected_nodes(self, graph):
        assert {
            "Coalescer._conds", "LockOrderGraph._lock",
            "ProcessShardExecutor._pipe_locks", "ProcessShardExecutor._state_lock",
            "ResultCache._lock", "ServerStats._lock",
            "ShardedStore._locks", "Window._lock",
        } <= set(graph["nodes"])

    def test_edges_are_exactly_the_sanctioned_set(self, graph):
        edges = {(e["from"], e["to"]) for e in graph["edges"]}
        assert edges == self.SANCTIONED

    def test_graph_is_acyclic(self, graph):
        adj: dict[str, set[str]] = {}
        for e in graph["edges"]:
            adj.setdefault(e["from"], set()).add(e["to"])
        state: dict[str, int] = {}

        def visit(node: str) -> None:
            state[node] = 1
            for nxt in adj.get(node, ()):
                assert state.get(nxt) != 1, f"cycle through {node} -> {nxt}"
                if nxt not in state:
                    visit(nxt)
            state[node] = 2

        for node in graph["nodes"]:
            if node not in state:
                visit(node)

    def test_edges_carry_provenance_notes(self, graph):
        for e in graph["edges"]:
            assert e["notes"], f"edge {e['from']} -> {e['to']} has no provenance"
