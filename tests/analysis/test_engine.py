"""Engine and CLI behaviour: exit codes, reports, and the clean-repo gate.

``test_repo_is_clean`` *is* the contract: the library must lint clean
with zero unsuppressed findings, exactly what CI enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.analysis.engine import build_context, render_json, render_text, run_analysis
from repro.analysis.source import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


class TestRepoGate:
    def test_repo_is_clean(self):
        """src/repro has zero unsuppressed findings under all eight rules."""
        ctx = build_context(REPO_ROOT)
        result = run_analysis(ctx)
        assert result.findings == [], render_text(result)
        assert result.exit_code == 0

    def test_fixtures_are_dirty(self):
        """The violation fixtures must make the linter exit nonzero."""
        ctx = build_context(FIXTURES, paths=[FIXTURES], use_registry=False)
        result = run_analysis(ctx)
        assert result.exit_code == 1
        # Every syntactic rule fires at least once across the fixture set.
        fired = {f.rule_id for f in result.findings}
        assert {"RPR003", "RPR004", "RPR005", "RPR006", "RPR007", "RPR008",
                "RPR011", "RPR012", "RPR101", "RPR102", "RPR103", "RPR104",
                "RPR201", "RPR202", "RPR203", "RPR204", "RPR205",
                "RPR301", "RPR302", "RPR303"} <= fired


class TestCLI:
    def test_exit_zero_on_repo(self):
        assert main(["--root", str(REPO_ROOT)]) == 0

    def test_exit_one_on_fixtures(self, capsys):
        code = main(["--root", str(FIXTURES), str(FIXTURES)])
        assert code == 1
        out = capsys.readouterr().out
        assert "RPR" in out

    def test_json_format(self, capsys):
        code = main(["--root", str(FIXTURES), "--format", "json", str(FIXTURES)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["exit_code"] == 1
        assert payload["summary"]["findings"] == len(payload["findings"])
        assert all(
            {"rule", "severity", "path", "line", "col", "message"} <= set(f)
            for f in payload["findings"]
        )

    def test_output_writes_json_artifact(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        main(["--root", str(REPO_ROOT), "--output", str(report)])
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["summary"]["findings"] == 0
        expected = {f"RPR00{i}" for i in range(1, 10)}
        expected |= {"RPR010", "RPR011", "RPR012"}
        expected |= {f"RPR10{i}" for i in range(1, 5)}
        expected |= {f"RPR20{i}" for i in range(1, 7)}
        expected |= {f"RPR30{i}" for i in range(1, 4)}
        assert set(payload["rules"]) == expected

    def test_rule_selection(self, capsys):
        code = main([
            "--root", str(FIXTURES), "--rules", "RPR006",
            str(FIXTURES / "rpr006_bad.py"),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "RPR006" in out
        assert "RPR008" not in out  # unselected rules stay silent

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--rules", "RPR999"]) == 2

    def test_select_expands_rule_family(self, capsys):
        code = main([
            "--root", str(FIXTURES), "--select", "RPR1",
            str(FIXTURES / "rpr102_bad.py"),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "RPR102" in out
        assert "4 rule(s)" in out  # RPR1 expands to the whole family

    def test_ignore_drops_rule_family(self, capsys):
        code = main([
            "--root", str(FIXTURES), "--ignore", "RPR1",
            str(FIXTURES / "rpr102_bad.py"),
        ])
        out = capsys.readouterr().out
        assert "RPR102" not in out
        assert "21 rule(s)" in out
        del code  # exit code depends on other rules; selection is the contract

    def test_select_unmatched_pattern_is_usage_error(self, capsys):
        assert main(["--select", "RPRX"]) == 2
        assert "no rule matches" in capsys.readouterr().err

    def test_ignore_everything_is_usage_error(self, capsys):
        assert main(["--ignore", "RPR"]) == 2
        assert "removed every rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 10):
            assert f"RPR00{i}" in out
        assert "RPR010" in out
        assert "RPR011" in out
        assert "RPR012" in out
        for i in range(1, 5):
            assert f"RPR10{i}" in out
        for i in range(1, 4):
            assert f"RPR30{i}" in out


class TestSuppressionParsing:
    def test_trailing_comment_covers_own_line(self):
        text = "x = round(y)  # lint: disable=RPR003\n"
        assert parse_suppressions(text) == {1: {"RPR003"}}

    def test_own_line_comment_covers_next_line(self):
        text = "# lint: disable=RPR003,RPR006\nx = round(y)\n"
        supp = parse_suppressions(text)
        assert supp[1] == {"RPR003", "RPR006"}
        assert supp[2] == {"RPR003", "RPR006"}

    def test_unrelated_comments_ignored(self):
        assert parse_suppressions("# just a note\nx = 1\n") == {}


class TestRenderers:
    @pytest.fixture()
    def result(self):
        ctx = build_context(
            FIXTURES, paths=[FIXTURES / "rpr006_bad.py"], use_registry=False
        )
        return run_analysis(ctx, ["RPR006"])

    def test_text_render_has_location_and_rule(self, result):
        text = render_text(result)
        assert "rpr006_bad.py:" in text
        assert "RPR006 error:" in text
        assert text.strip().endswith("rule(s).")

    def test_json_round_trips(self, result):
        payload = json.loads(render_json(result))
        assert payload["summary"]["files_analyzed"] == 1
        assert payload["rules"]["RPR006"]["severity"] == "error"


class TestBaselineMode:
    """--baseline ratchets the gate: only NEW findings are fatal."""

    BAD = "rpr202_bad.py"

    def _report(self, tmp_path, *extra):
        report = tmp_path / "baseline.json"
        main(["--root", str(FIXTURES), "--output", str(report),
              str(FIXTURES / self.BAD), *extra])
        return report

    def test_known_findings_are_tolerated(self, tmp_path, capsys):
        baseline = self._report(tmp_path)
        capsys.readouterr()
        code = main(["--root", str(FIXTURES), "--baseline", str(baseline),
                     str(FIXTURES / self.BAD)])
        assert code == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_new_findings_still_fail(self, tmp_path, capsys):
        baseline = self._report(tmp_path, "--rules", "RPR202")
        capsys.readouterr()
        # The same file under *all* rules surfaces findings the
        # RPR202-only baseline has never seen.
        code = main(["--root", str(FIXTURES), "--baseline", str(baseline),
                     str(FIXTURES / "rpr203_bad.py"), str(FIXTURES / self.BAD)])
        assert code == 1
        out = capsys.readouterr().out
        assert "new finding(s)" in out
        assert "0 new finding(s)" not in out

    def test_resolved_findings_are_counted(self, tmp_path, capsys):
        baseline = self._report(tmp_path, "--rules", "RPR202")
        capsys.readouterr()
        code = main(["--root", str(FIXTURES), "--baseline", str(baseline),
                     "--rules", "RPR202", str(FIXTURES / "rpr202_good.py")])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out
        assert "0 resolved" not in out  # the baselined findings resolved

    def test_unreadable_baseline_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["--baseline", str(missing)]) == 2
        assert "cannot read baseline" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["--baseline", str(bad)]) == 2


class TestLockGraphDump:
    def test_lock_graph_artifact_matches_library(self, tmp_path, capsys):
        from repro.analysis.concurrency import static_lock_graph
        from repro.analysis.engine import build_context

        out_path = tmp_path / "lock-graph.json"
        code = main(["--root", str(REPO_ROOT), "--select", "RPR2",
                     "--lock-graph", str(out_path)])
        capsys.readouterr()
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert {"nodes", "edges"} == set(payload)
        expected = static_lock_graph(build_context(REPO_ROOT, use_registry=False))
        assert payload == json.loads(json.dumps(expected))
