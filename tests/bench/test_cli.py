"""Tests for the `python -m repro.bench` command-line interface."""

import pytest

from repro.bench.__main__ import main


class TestCLI:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ("F1", "E1", "E5", "E15"):
            assert eid in out

    def test_run_figure(self, capsys):
        assert main(["run", "F1"]) == 0
        assert "Spectrum" in capsys.readouterr().out

    def test_run_experiment_with_params(self, capsys):
        assert main(["run", "E5", "--param", "n=2000", "--param", "lookups=20"]) == 0
        out = capsys.readouterr().out
        assert "epsilon" in out
        assert "segments" in out

    def test_run_csv_output(self, capsys):
        assert main(["run", "E5", "--param", "n=2000", "--param", "lookups=20",
                     "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("epsilon,")

    def test_param_type_coercion(self):
        from repro.bench.__main__ import _parse_param

        assert _parse_param("n=500") == ("n", 500)
        assert _parse_param("ratio=0.5") == ("ratio", 0.5)
        assert _parse_param("mode=append") == ("mode", "append")

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])

    def test_bad_param_format_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "E5", "--param", "not-a-pair"])
