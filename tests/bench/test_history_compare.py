"""Tests for the benchmark history ledger and the regression-compare CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import compare_artifact, main
from repro.bench.history import (
    HEADLINE_KEYS,
    append_record,
    config_signature,
    extract_headlines,
    last_baseline,
    load_history,
    make_record,
)


def _e19_payload(speedups: dict[str, float], n: int = 4000) -> dict:
    return {
        "experiment": "E19",
        "dataset": "uniform",
        "n": n,
        "requests": 2500,
        "cpu_count": 64,
        "environment": {"python": "3.12.0"},
        "results": {name: {"speedup": value, "clients": 8}
                    for name, value in speedups.items()},
    }


def _e20_payload(ratios: dict[str, float]) -> dict:
    return {
        "experiment": "E20",
        "dataset": "uniform",
        "n": 4000,
        "cpu_count": 8,
        "environment": {},
        "results": {name: {"mp_vs_thread": value, "thread": {}, "process": {}}
                    for name, value in ratios.items()},
    }


class TestHeadlines:
    def test_extracts_registered_ratio_per_row(self):
        payload = _e19_payload({"1d/rmi/shards=2": 3.5, "md/grid/shards=2": 2.0})
        assert extract_headlines(payload) == {
            "1d/rmi/shards=2": 3.5, "md/grid/shards=2": 2.0,
        }

    def test_e20_headline_is_mp_ratio(self):
        payload = _e20_payload({"1d/rmi/shards=4": 1.7})
        assert extract_headlines(payload) == {"1d/rmi/shards=4": 1.7}

    def test_unregistered_experiment_raises(self):
        with pytest.raises(KeyError):
            extract_headlines({"experiment": "E99", "results": {}})

    def test_every_registered_experiment_has_a_key(self):
        assert set(HEADLINE_KEYS) == {"E17", "E18", "E19", "E20", "E21",
                                      "E22", "E23"}


class TestSignature:
    def test_ignores_machine_and_results_fields(self):
        a = _e19_payload({"1d/rmi/shards=2": 3.0})
        b = _e19_payload({"1d/rmi/shards=2": 9.0})
        b["cpu_count"] = 1
        b["environment"] = {"python": "3.10.0"}
        assert config_signature(a) == config_signature(b)

    def test_differs_on_scale_parameters(self):
        a = _e19_payload({}, n=4000)
        b = _e19_payload({}, n=100000)
        assert config_signature(a) != config_signature(b)


class TestHistoryLedger:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        record = make_record(_e19_payload({"r": 2.0}), passed=True, sha="abc")
        append_record(record, path=path)
        append_record(record, path=path)
        assert load_history(path) == [record, record]
        assert load_history(tmp_path / "missing.jsonl") == []

    def test_baseline_skips_failed_and_mismatched_records(self, tmp_path):
        good = make_record(_e19_payload({"r": 3.0}), passed=True, sha="good")
        failed = make_record(_e19_payload({"r": 1.0}), passed=False, sha="bad")
        other_shape = make_record(_e19_payload({"r": 3.0}, n=100000),
                                  passed=True, sha="other")
        records = [good, failed, other_shape]
        signature = config_signature(_e19_payload({}))
        baseline = last_baseline(records, "E19", signature)
        # The failed record is newer but can never become the bar.
        assert baseline is good
        assert last_baseline(records, "E20", signature) is None


class TestCompare:
    def test_no_baseline_passes_with_notice(self):
        regressions, report = compare_artifact(_e19_payload({"r": 2.0}), [])
        assert regressions == []
        assert "no passing baseline" in report

    def test_within_threshold_passes(self):
        history = [make_record(_e19_payload({"r": 4.0}), passed=True, sha="x")]
        regressions, report = compare_artifact(_e19_payload({"r": 3.2}), history)
        assert regressions == []
        assert "-20.0%" in report

    def test_regression_beyond_threshold_fails(self):
        history = [make_record(_e19_payload({"r": 4.0}), passed=True, sha="x")]
        regressions, report = compare_artifact(_e19_payload({"r": 2.0}), history)
        assert len(regressions) == 1
        assert "REGRESSION" in report
        assert "speedup 4.000 -> 2.000" in regressions[0]

    def test_new_row_without_baseline_is_skipped(self):
        history = [make_record(_e19_payload({"old": 4.0}), passed=True, sha="x")]
        regressions, report = compare_artifact(
            _e19_payload({"old": 4.1, "new": 0.1}), history)
        assert regressions == []
        assert "no baseline row" in report


class TestCli:
    def _write(self, tmp_path, payload, name="artifact.json"):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_missing_artifact_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2

    def test_first_run_appends_passing_baseline(self, tmp_path, capsys):
        artifact = self._write(tmp_path, _e19_payload({"r": 2.0}))
        history = tmp_path / "hist.jsonl"
        assert main([str(artifact), "--history", str(history), "--append"]) == 0
        records = load_history(history)
        assert len(records) == 1 and records[0]["passed"] is True

    def test_regressed_run_fails_and_never_ratchets(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        good = self._write(tmp_path, _e19_payload({"r": 4.0}), "good.json")
        bad = self._write(tmp_path, _e19_payload({"r": 1.0}), "bad.json")
        assert main([str(good), "--history", str(history), "--append"]) == 0
        assert main([str(bad), "--history", str(history), "--append"]) == 1
        # The failed run was recorded but flagged; a rerun at the bad
        # level still fails because the baseline is the good run.
        records = load_history(history)
        assert [r["passed"] for r in records] == [True, False]
        assert main([str(bad), "--history", str(history)]) == 1
        err = capsys.readouterr().err
        assert "regression" in err

    def test_threshold_flag_widens_the_band(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        good = self._write(tmp_path, _e19_payload({"r": 4.0}), "good.json")
        soso = self._write(tmp_path, _e19_payload({"r": 2.2}), "soso.json")
        assert main([str(good), "--history", str(history), "--append"]) == 0
        assert main([str(soso), "--history", str(history)]) == 1
        assert main([str(soso), "--history", str(history),
                     "--threshold", "0.5"]) == 0
