"""Tests for E17 (batch-query throughput) and its JSON artifact."""

from __future__ import annotations

import json

import pytest

from repro.bench.batch import DEFAULT_E17_INDEXES, run_e17
from repro.bench.experiments import EXPERIMENTS
from repro.bench.__main__ import main


class TestRunE17:
    def test_smoke_rows_cover_requested_indexes(self, tmp_path):
        out = tmp_path / "BENCH_batch.json"
        rows = run_e17(indexes=["rmi", "binary-search"], smoke=True, out=str(out))
        assert [r["index"] for r in rows] == ["rmi", "binary-search"]
        for row in rows:
            assert row["scalar_ops_per_s"] > 0
            assert row["batch_ops_per_s"] > 0
            assert row["speedup"] == pytest.approx(
                row["batch_ops_per_s"] / row["scalar_ops_per_s"]
            )
            # Parity guarantee: batching must not change the answers.
            assert row["hits_batch"] == row["hits_scalar"]

    def test_json_artifact_shape(self, tmp_path):
        out = tmp_path / "bench.json"
        run_e17(indexes=["pgm"], smoke=True, out=str(out))
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "E17"
        assert payload["n"] <= 5000 and payload["batch"] <= 1000
        assert set(payload["results"]) == {"pgm"}
        assert set(payload["results"]["pgm"]) == {
            "scalar_ops_per_s", "batch_ops_per_s", "speedup",
        }

    def test_out_none_skips_artifact(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_e17(indexes=["binary-search"], smoke=True, out=None)
        assert not list(tmp_path.iterdir())

    def test_unknown_index_raises(self):
        with pytest.raises(KeyError, match="no-such-index"):
            run_e17(indexes=["no-such-index"], smoke=True, out=None)

    def test_defaults_include_vectorized_and_fallback_contenders(self):
        assert "rmi" in DEFAULT_E17_INDEXES
        assert "b+tree" in DEFAULT_E17_INDEXES  # loop-fallback control


class TestE17Cli:
    def test_registered(self):
        assert "E17" in EXPERIMENTS
        assert "batch" in EXPERIMENTS["E17"].description

    def test_direct_id_shorthand_with_smoke(self, tmp_path, capsys):
        out = tmp_path / "BENCH_batch.json"
        rc = main(["E17", "--smoke", "--param", "indexes=binary-search",
                   "--param", f"out={out}"])
        assert rc == 0
        assert out.exists()
        assert "binary-search" in capsys.readouterr().out

    def test_run_subcommand_equivalent(self, tmp_path, capsys):
        out = tmp_path / "b.json"
        rc = main(["run", "E17", "--smoke", "--param", "indexes=rmi",
                   "--param", f"out={out}", "--csv"])
        assert rc == 0
        assert "rmi" in capsys.readouterr().out
        assert json.loads(out.read_text())["results"].keys() == {"rmi"}
