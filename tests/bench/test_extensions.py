"""Tests for the open-challenge extension experiments (E13, E14)."""

import numpy as np
import pytest

from repro.bench.extensions import poison_keys, run_e13, run_e14
from repro.data import load_1d


class TestPoisonKeys:
    def test_fraction_controls_count(self):
        base = load_1d("uniform", 1000, seed=1)
        assert poison_keys(base, 0.1, seed=2).size == 100
        assert poison_keys(base, 0.0).size == 0

    def test_poison_is_concentrated(self):
        base = load_1d("uniform", 1000, seed=1)
        poison = poison_keys(base, 0.2, seed=2)
        span = base.max() - base.min()
        assert (poison.max() - poison.min()) < span * 1e-6

    def test_poison_lands_inside_key_range(self):
        base = load_1d("uniform", 1000, seed=1)
        poison = poison_keys(base, 0.2, seed=2)
        assert poison.min() >= base.min()
        assert poison.max() <= base.max()

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            poison_keys(np.arange(10.0), 1.5)


class TestE13Poisoning:
    def test_rmi_error_explodes_pgm_stays_bounded(self):
        rows = run_e13(n=4000, lookups=80, poison_fractions=(0.0, 0.5))
        by = {(r["index"], r["poison_fraction"]): r for r in rows}
        rmi_clean = by[("rmi", 0.0)]["max_model_error"]
        rmi_poisoned = by[("rmi", 0.5)]["max_model_error"]
        assert rmi_poisoned > 10 * max(rmi_clean, 1)
        assert by[("pgm (eps=32)", 0.5)]["max_model_error"] == 32

    def test_pgm_search_effort_stays_near_clean(self):
        rows = run_e13(n=4000, lookups=80, poison_fractions=(0.0, 0.5))
        by = {(r["index"], r["poison_fraction"]): r for r in rows}
        clean = by[("pgm (eps=32)", 0.0)]["victim_cmp_per_op"]
        poisoned = by[("pgm (eps=32)", 0.5)]["victim_cmp_per_op"]
        assert poisoned <= clean * 1.5 + 2


class TestE14Drift:
    def test_three_phases_per_index(self):
        rows = run_e14(n=1500, drift_inserts=1500, lookups=60)
        phases = {(r["index"], r["phase"]) for r in rows}
        for name in ("alex", "dynamic-pgm", "learned-skiplist"):
            for phase in ("initial", "drifted", "rebuilt"):
                assert (name, phase) in phases

    def test_rebuild_recovers_stale_guide(self):
        rows = run_e14(n=1500, drift_inserts=1500, lookups=60)
        by = {(r["index"], r["phase"]): r for r in rows}
        drifted = by[("learned-skiplist", "drifted")]["lookup_us"]
        rebuilt = by[("learned-skiplist", "rebuilt")]["lookup_us"]
        # The stale-guide index must benefit from re-training.
        assert rebuilt < drifted
