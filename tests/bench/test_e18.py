"""Tests for E18 (multi-d batch-query throughput) and its JSON artifact."""

from __future__ import annotations

import json

import pytest

from repro.bench.batch import DEFAULT_E18_INDEXES, run_e18
from repro.bench.experiments import EXPERIMENTS
from repro.bench.__main__ import main


class TestRunE18:
    def test_smoke_rows_cover_requested_indexes(self, tmp_path):
        out = tmp_path / "BENCH_batch_md.json"
        rows = run_e18(indexes=["zm-index", "kd-tree"], smoke=True, out=str(out))
        assert [r["index"] for r in rows] == ["zm-index", "kd-tree"]
        for row in rows:
            assert row["dataset"] == "uniform"  # smoke trims to one dataset
            assert row["scalar_ops_per_s"] > 0
            assert row["batch_ops_per_s"] > 0
            assert row["speedup"] == pytest.approx(
                row["batch_ops_per_s"] / row["scalar_ops_per_s"]
            )
            # Every query samples an indexed point: all must hit.
            assert row["hits_batch"] == row["batch"]

    def test_range_probe_only_for_overriding_indexes(self, tmp_path):
        rows = run_e18(indexes=["flood", "kd-tree"], smoke=True, out=None)
        by_name = {r["index"]: r for r in rows}
        assert "range_speedup" in by_name["flood"]
        # Batched and looped range queries must agree on result counts.
        assert by_name["flood"]["range_hits"] == by_name["flood"]["range_hits_scalar"]
        assert "range_speedup" not in by_name["kd-tree"]

    def test_json_artifact_shape(self, tmp_path):
        out = tmp_path / "bench_md.json"
        run_e18(indexes=["grid"], datasets="uniform", smoke=True, out=str(out))
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "E18"
        assert payload["n"] <= 4000 and payload["batch"] <= 800
        assert payload["datasets"] == ["uniform"]
        assert set(payload["environment"]) == {"python", "numpy"}
        assert set(payload["results"]) == {"uniform/grid"}
        assert set(payload["results"]["uniform/grid"]) >= {
            "scalar_ops_per_s", "batch_ops_per_s", "speedup",
        }

    def test_multiple_datasets_cross_product(self):
        rows = run_e18(indexes=["grid"], datasets="uniform,skew",
                       smoke=True, out=None)
        assert [(r["dataset"], r["index"]) for r in rows] == [
            ("uniform", "grid"), ("skew", "grid"),
        ]

    def test_unknown_index_raises(self):
        with pytest.raises(KeyError, match="no-such-index"):
            run_e18(indexes=["no-such-index"], smoke=True, out=None)

    def test_defaults_include_vectorized_and_fallback_contenders(self):
        assert {"zm-index", "flood", "grid", "lisa"} <= set(DEFAULT_E18_INDEXES)
        assert "kd-tree" in DEFAULT_E18_INDEXES  # loop-fallback control


class TestE18Cli:
    def test_registered(self):
        assert "E18" in EXPERIMENTS
        assert "multi-d batch" in EXPERIMENTS["E18"].description

    def test_direct_id_shorthand_with_smoke(self, tmp_path, capsys):
        out = tmp_path / "BENCH_batch_md.json"
        rc = main(["E18", "--smoke", "--param", "indexes=grid",
                   "--param", f"out={out}"])
        assert rc == 0
        assert out.exists()
        assert "grid" in capsys.readouterr().out
