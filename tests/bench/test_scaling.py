"""Tests for E22 (empirical scaling witness) and its slope machinery."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.history import HEADLINE_KEYS, extract_headlines
from repro.bench.scaling import (
    CONSTANT_SLOPE_MAX,
    LINEAR_SLOPE_MIN,
    SMOKE_SIZES,
    classify_slope,
    fit_loglog_slope,
    is_consistent,
    main,
    run_e22,
)
from repro.core.taxonomy import ComplexityClass

NS = (1_000, 10_000, 100_000, 1_000_000)


class TestFitLogLogSlope:
    def test_constant_series_fits_flat(self):
        slope = fit_loglog_slope(NS, [3.0, 3.0, 3.0, 3.0])
        assert slope == pytest.approx(0.0, abs=1e-9)

    def test_logarithmic_series_fits_shallow(self):
        slope = fit_loglog_slope(NS, [np.log2(n) for n in NS])
        assert 0.0 < slope < LINEAR_SLOPE_MIN
        assert classify_slope(slope) is ComplexityClass.LOGARITHMIC

    def test_linear_series_fits_unit_slope(self):
        slope = fit_loglog_slope(NS, [float(n) for n in NS])
        assert slope == pytest.approx(1.0, abs=1e-9)

    def test_sqrt_series_classifies_linear(self):
        # A sqrt(n) hot path is not sublinear in the contract's sense.
        slope = fit_loglog_slope(NS, [float(n) ** 0.5 for n in NS])
        assert slope == pytest.approx(0.5, abs=1e-9)
        assert classify_slope(slope) is ComplexityClass.LOGARITHMIC
        slope = fit_loglog_slope(NS, [float(n) ** 0.7 for n in NS])
        assert classify_slope(slope) is ComplexityClass.LINEAR

    def test_zero_work_is_floored_not_infinite(self):
        slope = fit_loglog_slope(NS, [0.0, 0.0, 0.0, 0.0])
        assert np.isfinite(slope)
        assert classify_slope(slope) is ComplexityClass.CONSTANT

    def test_single_point_is_an_error(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1_000], [1.0])


class TestClassifySlope:
    def test_thresholds(self):
        assert classify_slope(CONSTANT_SLOPE_MAX - 1e-6) is ComplexityClass.CONSTANT
        assert classify_slope(CONSTANT_SLOPE_MAX) is ComplexityClass.LOGARITHMIC
        assert classify_slope(LINEAR_SLOPE_MIN) is ComplexityClass.LOGARITHMIC
        assert classify_slope(LINEAR_SLOPE_MIN + 1e-6) is ComplexityClass.LINEAR

    def test_negative_slope_is_constant(self):
        assert classify_slope(-0.2) is ComplexityClass.CONSTANT


class TestIsConsistent:
    O1 = ComplexityClass.CONSTANT
    OLOG = ComplexityClass.LOGARITHMIC
    ON = ComplexityClass.LINEAR

    def test_fitted_at_or_below_declared_passes(self):
        assert is_consistent(self.OLOG, self.O1)
        assert is_consistent(self.OLOG, self.OLOG)
        assert is_consistent(self.O1, self.O1)

    def test_fitted_above_declared_fails(self):
        assert not is_consistent(self.O1, self.OLOG)
        assert not is_consistent(self.OLOG, self.ON)
        assert not is_consistent(self.O1, self.ON)

    def test_linear_declaration_must_measure_linear(self):
        # The scan controls are honest denominators: a "linear" control
        # that measures flat would silently flatter every speedup.
        assert is_consistent(self.ON, self.ON)
        assert not is_consistent(self.ON, self.OLOG)
        assert not is_consistent(self.ON, self.O1)


SUBSET = ("linear-scan", "binary-search", "hash")


class TestRunE22:
    def test_subset_sweep_matches_declarations(self, tmp_path):
        out = tmp_path / "BENCH_scaling.json"
        rows = run_e22(sizes=(500, 2_000, 8_000), only=SUBSET, out=str(out))
        assert {row["index"] for row in rows} == set(SUBSET)
        by_name = {row["index"]: row for row in rows}
        assert by_name["linear-scan"]["fitted"] == "LINEAR"
        assert by_name["linear-scan"]["slope"] == pytest.approx(1.0, abs=0.1)
        assert by_name["hash"]["fitted"] == "CONSTANT"
        for row in rows:
            assert row["consistent"], row
            assert row["sublinearity"] == pytest.approx(
                max(0.0, 1.0 - row["slope"])
            )
            assert len(row["work_per_op"]) == len(row["ns"]) == 3

    def test_artifact_schema_and_headlines(self, tmp_path):
        out = tmp_path / "scaling.json"
        run_e22(sizes=(500, 2_000), only=SUBSET, out=str(out))
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "E22"
        assert payload["sizes"] == [500, 2_000]
        assert "python" in payload["environment"]
        assert "1d/linear-scan" in payload["results"]
        for entry in payload["results"].values():
            assert set(entry) == {"qualname", "declared", "fitted", "slope",
                                  "sublinearity", "consistent", "ns",
                                  "work_per_op"}
        headlines = extract_headlines(payload)
        assert set(headlines) == set(payload["results"])
        assert HEADLINE_KEYS["E22"] == "sublinearity"

    def test_sizes_accepts_comma_string(self):
        rows = run_e22(sizes="500,2000", only="hash", out=None)
        assert len(rows) == 1
        assert rows[0]["ns"] == [500, 2000]

    def test_unknown_factory_name_is_a_key_error(self):
        with pytest.raises(KeyError, match="no-such-index"):
            run_e22(sizes=(500, 2_000), only=("no-such-index",), out=None)

    def test_single_size_sweep_is_an_error(self):
        with pytest.raises(ValueError):
            run_e22(sizes=(1_000,), only=SUBSET, out=None)

    def test_smoke_defaults_to_smoke_sizes(self, tmp_path):
        out = tmp_path / "scaling.json"
        rows = run_e22(smoke=True, only="hash", out=str(out))
        assert rows[0]["ns"] == list(SMOKE_SIZES)

    def test_registered_as_experiment(self):
        assert "E22" in EXPERIMENTS
        assert EXPERIMENTS["E22"].runner is run_e22


class TestCLI:
    def test_exit_zero_and_report(self, tmp_path, capsys):
        out = tmp_path / "scaling.json"
        code = main(["--sizes", "500,2000", "--only", "hash,linear-scan",
                     "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "2 factories, 0 contract violation(s)" in stdout
        assert out.is_file()

    def test_empty_out_skips_artifact(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["--sizes", "500,2000", "--only", "hash", "--out", ""])
        capsys.readouterr()
        assert code == 0
        assert not (tmp_path / "BENCH_scaling.json").exists()
