"""Tests for E19 (serving throughput/tail latency) and its JSON artifact."""

from __future__ import annotations

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.experiments import EXPERIMENTS
from repro.bench.serving import (
    DEFAULT_E19_MULTI_DIM,
    DEFAULT_E19_ONE_DIM,
    run_e19,
)


class TestRunE19:
    def test_smoke_rows_cover_requested_indexes(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        rows = run_e19(indexes="binary-search", indexes_md="grid",
                       smoke=True, out=str(out))
        assert [(r["space"], r["index"]) for r in rows] == [
            ("1d", "binary-search"), ("md", "grid"),
        ]
        for row in rows:
            assert row["shards"] == 2  # smoke sweeps a single shard count
            assert row["coalesced"]["ops_per_s"] > 0
            assert row["serial"]["ops_per_s"] > 0
            assert row["coalesced"]["shed"] == row["serial"]["shed"] == 0
            assert row["coalesced"]["completed"] == row["requests"]
            assert row["speedup"] == pytest.approx(
                row["coalesced"]["ops_per_s"] / row["serial"]["ops_per_s"]
            )
            # Coalescing must actually batch; the serial arm must not.
            assert row["coalesced"]["avg_batch"] > 1.0
            assert row["serial"]["avg_batch"] <= 1.0

    def test_json_artifact_shape_and_environment(self, tmp_path):
        out = tmp_path / "serve.json"
        run_e19(indexes="rmi", indexes_md="", smoke=True, out=str(out))
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "E19"
        assert payload["workload"] == "zipfian"
        assert "python" in payload["environment"]
        assert "numpy" in payload["environment"]
        assert set(payload["results"]) == {"1d/rmi/shards=2"}
        entry = payload["results"]["1d/rmi/shards=2"]
        assert set(entry) == {"coalesced", "serial", "speedup",
                              "clients", "pipeline", "max_batch"}
        for arm in ("coalesced", "serial"):
            assert {"ops_per_s", "p50_us", "p95_us", "p99_us"} <= set(entry[arm])

    def test_out_none_skips_artifact(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_e19(indexes="binary-search", indexes_md="", smoke=True, out=None)
        assert not list(tmp_path.iterdir())

    def test_unknown_index_raises(self):
        with pytest.raises(KeyError, match="no-such-index"):
            run_e19(indexes="no-such-index", smoke=True, out=None)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="no-such-workload"):
            run_e19(workload="no-such-workload", smoke=True, out=None)

    def test_defaults_pair_learned_indexes_with_controls(self):
        assert "rmi" in DEFAULT_E19_ONE_DIM
        assert "binary-search" in DEFAULT_E19_ONE_DIM  # classical control
        assert "zm-index" in DEFAULT_E19_MULTI_DIM
        assert "kd-tree" in DEFAULT_E19_MULTI_DIM      # classical control


class TestE19Cli:
    def test_registered(self):
        assert "E19" in EXPERIMENTS
        assert "serving" in EXPERIMENTS["E19"].description

    def test_direct_id_shorthand_with_smoke(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        rc = main(["E19", "--smoke", "--param", "indexes=binary-search",
                   "--param", "indexes_md=", "--param", f"out={out}"])
        assert rc == 0
        assert out.exists()
        assert "binary-search" in capsys.readouterr().out
