"""Tests for the benchmark harness: every experiment runs and reports."""

import numpy as np
import pytest

from repro.bench import (
    EXPERIMENTS,
    MULTI_DIM_FACTORIES,
    ONE_DIM_FACTORIES,
    build_index,
    measure_inserts,
    measure_lookups,
    render_table,
    run_experiment,
    to_csv,
)
from repro.bench.experiments import (
    run_e1,
    run_e3,
    run_e5,
    run_e6,
    run_e7,
    run_e8,
    run_e10,
)
from repro.bench.report import format_value


class TestReport:
    def test_render_table_basic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = render_table(rows, title="T")
        assert "T" in text and "a" in text and "b" in text
        assert "10" in text

    def test_render_empty(self):
        assert "(no rows)" in render_table([])

    def test_explicit_columns(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_csv(self):
        csv = to_csv([{"x": 1, "y": "z"}])
        assert csv.splitlines() == ["x,y", "1,z"]

    def test_format_value_variants(self):
        assert format_value(True) == "yes"
        assert format_value(2_000_000) == "2.00M"
        assert format_value(15000) == "15.0k"
        assert format_value(0.5).startswith("0.5")
        assert format_value(1e-9) == "1.000e-09"
        assert format_value("abc") == "abc"


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "F1", "F2", "F3", "T1",
            "E1", "E2", "E3", "E4", "E5", "E6",
            "E7", "E8", "E9", "E10", "E11", "E12",
            "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20",
            "E21", "E22", "E23",
        }

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_figure_artifacts_are_text(self):
        for fid in ("F1", "F2", "F3", "T1"):
            artifact = run_experiment(fid)
            assert isinstance(artifact, str)
            assert len(artifact) > 100

    def test_case_insensitive_ids(self):
        assert run_experiment("f1") == run_experiment("F1")


class TestMeasurement:
    def test_build_index_returns_elapsed(self, uniform_keys):
        index, seconds = build_index(ONE_DIM_FACTORIES["pgm"], uniform_keys)
        assert seconds >= 0
        assert index.stats.build_seconds == seconds

    def test_measure_lookups_counts_hits(self, uniform_keys):
        index, _ = build_index(ONE_DIM_FACTORIES["binary-search"], uniform_keys)
        metrics = measure_lookups(index, uniform_keys[:50])
        assert metrics["hits"] == 50
        assert metrics["lookup_us"] > 0

    def test_measure_inserts_throughput(self, uniform_keys):
        index, _ = build_index(ONE_DIM_FACTORIES["b+tree"], uniform_keys)
        metrics = measure_inserts(index, np.array([1e12, 2e12, 3e12]))
        assert metrics["inserts_per_s"] > 0


class TestExperimentsSmallScale:
    """Each experiment must run end-to-end at tiny scale with sane rows."""

    def test_e1_rows(self):
        rows = run_e1(n=800, lookups=50, datasets=("uniform",),
                      indexes=("binary-search", "pgm", "rmi"))
        assert len(rows) == 3
        assert all(r["hits"] == 50 for r in rows)

    def test_e2_rows(self):
        rows = run_experiment("E2", n=800, datasets=("uniform",),
                              indexes=("pgm", "b+tree"))
        assert all(r["size_bytes"] > 0 for r in rows)
        pgm = next(r for r in rows if r["index"] == "pgm")
        btree = next(r for r in rows if r["index"] == "b+tree")
        # The headline learned-index size win.
        assert pgm["size_bytes"] < btree["size_bytes"]

    def test_e3_rows(self):
        rows = run_e3(n=500, inserts=300, indexes=("alex", "b+tree"))
        assert all(r["inserts_per_s"] > 0 for r in rows)

    def test_e4_rows(self):
        rows = run_experiment("E4", n=500, ops=200, indexes=("alex",),
                              read_ratios=(0.5,))
        assert len(rows) == 1 and rows[0]["ops_per_s"] > 0

    def test_e5_epsilon_monotonicity(self):
        rows = run_e5(n=5000, lookups=100, epsilons=(8, 64, 256))
        sizes = [r["size_bytes"] for r in rows]
        segs = [r["segments"] for r in rows]
        assert sizes == sorted(sizes, reverse=True)
        assert segs == sorted(segs, reverse=True)

    def test_e6_rows(self):
        rows = run_e6(n=1500, bits_per_key=(8,))
        names = {r["filter"] for r in rows}
        assert names == {"bloom", "learned", "sandwiched", "partitioned"}
        assert all(0 <= r["fpr"] <= 1 for r in rows)

    def test_e7_rows(self):
        rows = run_e7(n=1000, lookups=50, datasets=("uniform",),
                      indexes=("r-tree", "flood", "zm-index"))
        assert all(r["hits"] == 50 for r in rows)

    def test_e8_rows(self):
        rows = run_e8(n=1000, queries=5, datasets=("uniform",),
                      indexes=("grid", "flood"), selectivities=(0.01,))
        assert all(r["avg_results"] > 0 for r in rows)

    def test_e9_rows(self):
        rows = run_experiment("E9", n=800, queries=5,
                              indexes=("kd-tree", "flood"), ks=(5,))
        assert all(r["knn_us"] > 0 for r in rows)

    def test_e10_rows(self):
        rows = run_e10(n=1500, queries=10, rhos=(0.99,))
        names = {r["index"] for r in rows}
        assert names == {"flood-untuned", "flood", "tsunami", "r-tree"}

    def test_e11_rows(self):
        rows = run_experiment("E11", n=800, datasets=("uniform",),
                              indexes=("r-tree", "flood"))
        assert all(r["build_s"] >= 0 for r in rows)

    def test_e12_rows(self):
        rows = run_experiment("E12", n=600, inserts=300,
                              indexes=("r-tree", "lisa"))
        assert all(r["inserts_per_s"] > 0 for r in rows)


class TestFactoriesComplete:
    def test_one_dim_factories_cover_learned_and_traditional(self):
        assert "rmi" in ONE_DIM_FACTORIES and "b+tree" in ONE_DIM_FACTORIES
        assert len(ONE_DIM_FACTORIES) >= 16

    def test_multi_dim_factories_cover_learned_and_traditional(self):
        assert "flood" in MULTI_DIM_FACTORIES and "r-tree" in MULTI_DIM_FACTORIES
        assert len(MULTI_DIM_FACTORIES) >= 12

    def test_factories_produce_fresh_instances(self):
        a = ONE_DIM_FACTORIES["pgm"]()
        b = ONE_DIM_FACTORIES["pgm"]()
        assert a is not b
