"""Tests for E23 (self-tuning vs static under drift) and its artifact."""

from __future__ import annotations

import json

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.tuning import DEFAULT_E23_TUNE, run_e23

_AUDIT_OUTCOMES = {"applied", "dry-run", "cooldown", "subsumed", "error"}


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    """One shared smoke run: the arms are the expensive part."""
    out = tmp_path_factory.mktemp("e23") / "BENCH_tune.json"
    rows = run_e23(smoke=True, out=str(out))
    return rows, out


class TestRunE23:
    def test_both_arms_complete_the_identical_schedule(self, smoke):
        rows, _out = smoke
        assert len(rows) == 1
        row = rows[0]
        assert row["index"] == "dynamic-pgm"
        assert row["tuned"]["completed"] == row["static"]["completed"] > 0
        for arm in ("tuned", "static"):
            assert row[arm]["ops_per_s"] > 0
            assert row[arm]["p99_us"] > 0
            assert len(row[arm]["phase_ops_per_s"]) == row["phases"]
        assert row["tuned_vs_static"] == pytest.approx(
            row["tuned"]["ops_per_s"] / row["static"]["ops_per_s"]
        )

    def test_tuned_arm_carries_a_complete_audit(self, smoke):
        rows, _out = smoke
        tuned = rows[0]["tuned"]
        assert "audit" not in rows[0]["static"]
        assert tuned["actions_applied"] == sum(
            1 for record in tuned["audit"] if record["outcome"] == "applied"
        )
        for record in tuned["audit"]:
            # Every decision is traceable: policy, outcome, and the
            # signal values that triggered it.
            assert record["outcome"] in _AUDIT_OUTCOMES
            assert record["policy"]
            assert isinstance(record["signal"], dict) and record["signal"]

    def test_json_artifact_shape_and_environment(self, smoke):
        _rows, out = smoke
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "E23"
        assert payload["workload"] == "drifting"
        assert "python" in payload["environment"]
        assert set(payload["results"]) == {"1d/dynamic-pgm/shards=4"}
        entry = payload["results"]["1d/dynamic-pgm/shards=4"]
        assert {"tuned", "static", "tuned_vs_static",
                "p99_ratio", "clients", "pipeline"} == set(entry)
        assert "audit" in entry["tuned"]

    def test_out_none_skips_artifact(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_e23(n=2000, requests=1200, phases=2, steps_per_phase=2,
                clients=2, pipeline=16, out=None)
        assert not list(tmp_path.iterdir())

    def test_unknown_index_raises(self):
        with pytest.raises(KeyError, match="no-such-index"):
            run_e23(index="no-such-index", smoke=True, out=None)


class TestE23Registration:
    def test_registered_with_the_cli(self):
        assert "E23" in EXPERIMENTS
        assert "self-tuning" in EXPERIMENTS["E23"].description

    def test_default_tune_config_is_enabled_and_seeded(self):
        assert DEFAULT_E23_TUNE.enabled
        assert DEFAULT_E23_TUNE.seed == 0
        assert DEFAULT_E23_TUNE.cooldown_steps == 1
