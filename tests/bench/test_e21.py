"""Tests for E21 (artifact cold start vs. rebuild) and its artifact."""

from __future__ import annotations

import json

import pytest

from repro.bench.coldstart import (
    LARGE_SCALE_CONTROL,
    MODEL_HEAVY_MULTI_DIM,
    MODEL_HEAVY_ONE_DIM,
    run_e21,
)
from repro.bench.experiments import EXPERIMENTS
from repro.bench.history import HEADLINE_KEYS, extract_headlines
from repro.serve.shm import list_repro_segments


class TestRunE21:
    def test_smoke_rows_cover_both_spaces_and_server(self, tmp_path):
        out = tmp_path / "BENCH_coldstart.json"
        rows = run_e21(smoke=True, out=str(out))
        spaces = {(r["space"], r["index"]) for r in rows}
        assert ("1d", "rmi") in spaces
        assert ("1d", "binary-search") in spaces
        assert ("md", "zm-index") in spaces
        assert ("server", "rmi") in spaces
        for row in rows:
            assert row["build_s"] > 0
            assert row["load_s"] > 0
            assert row["artifact_bytes"] > 0
            assert row["load_vs_rebuild"] == pytest.approx(
                row["build_s"] / row["load_s"]
            )
        server_rows = [r for r in rows if r["space"] == "server"]
        assert all(r["shards"] == 4 for r in server_rows)
        assert list_repro_segments() == []

    def test_artifact_schema(self, tmp_path):
        out = tmp_path / "coldstart.json"
        run_e21(smoke=True, out=str(out))
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "E21"
        assert isinstance(payload["cpu_count"], int) and payload["cpu_count"] >= 1
        assert "python" in payload["environment"]
        assert "1d/rmi/n=2000" in payload["results"]
        for entry in payload["results"].values():
            assert set(entry) == {"build_s", "load_s", "artifact_bytes",
                                  "load_vs_rebuild"}
        headlines = extract_headlines(payload)
        assert headlines  # every row exposes the E21 headline ratio
        assert set(headlines) == set(payload["results"])

    def test_sizes_accepts_comma_string(self):
        rows = run_e21(sizes="1500", smoke=False, repeats=1, out=None)
        # Full registries at the (single) first size.
        from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES
        assert {r["index"] for r in rows if r["space"] == "1d"} == \
            set(ONE_DIM_FACTORIES)
        assert {r["index"] for r in rows if r["space"] == "md"} == \
            set(MULTI_DIM_FACTORIES)


class TestRegistration:
    def test_e21_registered_with_defaults(self):
        exp = EXPERIMENTS["E21"]
        assert exp.runner is run_e21
        assert "cold start" in exp.description

    def test_headline_key_is_load_vs_rebuild(self):
        assert HEADLINE_KEYS["E21"] == "load_vs_rebuild"

    def test_model_heavy_contenders_exist(self):
        from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES
        assert set(MODEL_HEAVY_ONE_DIM) <= set(ONE_DIM_FACTORIES)
        assert set(MODEL_HEAVY_MULTI_DIM) <= set(MULTI_DIM_FACTORIES)
        assert set(LARGE_SCALE_CONTROL) <= set(ONE_DIM_FACTORIES)
