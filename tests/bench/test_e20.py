"""Tests for E20 (thread vs. process shard backends) and its artifact."""

from __future__ import annotations

import json

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.serving_mp import (
    DEFAULT_E20_MULTI_DIM,
    DEFAULT_E20_ONE_DIM,
    run_e20,
)
from repro.serve.shm import list_repro_segments


class TestRunE20:
    def test_smoke_rows_sweep_shards_for_both_backends(self, tmp_path):
        out = tmp_path / "BENCH_serve_mp.json"
        rows = run_e20(indexes="binary-search", indexes_md="",
                       smoke=True, out=str(out))
        assert [(r["space"], r["index"], r["shards"]) for r in rows] == [
            ("1d", "binary-search", 1), ("1d", "binary-search", 2),
        ]
        for row in rows:
            for arm in ("thread", "process"):
                assert row[arm]["ops_per_s"] > 0
                assert row[arm]["completed"] == row["requests"]
                assert row[arm]["shed"] == 0
                assert row[arm]["avg_batch"] > 1.0
            assert row["thread"]["worker_restarts"] == 0
            assert row["process"]["worker_restarts"] == 0
            assert row["mp_vs_thread"] == pytest.approx(
                row["process"]["ops_per_s"] / row["thread"]["ops_per_s"]
            )
        # mp_scaling is relative to the first shard count in the sweep.
        assert rows[0]["mp_scaling"] == pytest.approx(1.0)
        # Every benchmark server released its segments on close.
        assert list_repro_segments() == []

    def test_artifact_schema_records_cpu_count(self, tmp_path):
        out = tmp_path / "serve_mp.json"
        run_e20(indexes="binary-search", indexes_md="", smoke=True,
                out=str(out))
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "E20"
        assert isinstance(payload["cpu_count"], int) and payload["cpu_count"] >= 1
        assert "python" in payload["environment"]
        assert set(payload["results"]) == {
            "1d/binary-search/shards=1", "1d/binary-search/shards=2",
        }
        entry = payload["results"]["1d/binary-search/shards=1"]
        assert set(entry) == {"thread", "process", "mp_vs_thread",
                              "mp_scaling", "clients", "pipeline", "max_batch"}
        for arm in ("thread", "process"):
            assert {"ops_per_s", "p50_us", "p95_us", "p99_us",
                    "worker_restarts"} <= set(entry[arm])

    def test_multi_dim_contender_runs(self, tmp_path):
        rows = run_e20(indexes="", indexes_md="grid", smoke=True, out=None)
        assert [(r["space"], r["index"]) for r in rows] == [
            ("md", "grid"), ("md", "grid"),
        ]
        assert all(r["process"]["completed"] == r["requests"] for r in rows)

    def test_unknown_index_raises(self):
        with pytest.raises(KeyError, match="no-such-index"):
            run_e20(indexes="no-such-index", smoke=True, out=None)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            run_e20(workload="adversarial", smoke=True, out=None)


class TestRegistration:
    def test_e20_registered_with_defaults(self):
        exp = EXPERIMENTS["E20"]
        assert exp.runner is run_e20
        assert "thread" in exp.description and "process" in exp.description

    def test_default_contenders_exist(self):
        from repro.bench.runner import MULTI_DIM_FACTORIES, ONE_DIM_FACTORIES
        assert set(DEFAULT_E20_ONE_DIM) <= set(ONE_DIM_FACTORIES)
        assert set(DEFAULT_E20_MULTI_DIM) <= set(MULTI_DIM_FACTORIES)
