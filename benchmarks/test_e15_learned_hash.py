"""E15: learned models as hash functions (refs [102, 103])."""

from repro.bench import render_table
from repro.bench.extensions import run_e15
from repro.data import load_1d
from repro.onedim import LearnedHashIndex

from .conftest import save_result

N = 10000


def test_e15_learned_hash(benchmark, results_dir):
    rows = run_e15(n=N)
    save_result(results_dir, "E15_learned_hash",
                render_table(rows, title=f"E15: learned vs classic hashing (n={N})"))

    keys = load_1d("lognormal", N, seed=1)
    benchmark(lambda: LearnedHashIndex(learned=True).build(keys))

    by = {(r["dataset"], r["hash"]): r for r in rows}
    for ds in ("uniform", "lognormal", "osm", "fb"):
        # Order-preserving hashing: range scans touch a bucket interval,
        # not the whole table.
        assert (by[(ds, "learned-q256")]["range_scanned_per_op"]
                < by[(ds, "classic")]["range_scanned_per_op"] / 10)
        # More model capacity never hurts collision quality.
        assert (by[(ds, "learned-q256")]["mean_probe"]
                <= by[(ds, "learned-q32")]["mean_probe"] + 0.05)
    # Where the CDF is learnable at this model size, the learned hash
    # collides on par with the classical one; osm's sub-quantile clusters
    # are the paper's counter-example and are exempt here.
    for ds in ("uniform", "lognormal", "fb"):
        assert (by[(ds, "learned-q256")]["mean_probe"]
                < by[(ds, "classic")]["mean_probe"] * 1.25)
