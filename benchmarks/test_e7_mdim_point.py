"""E7: multi-dimensional point queries across data distributions."""

import numpy as np

from repro.bench import MULTI_DIM_FACTORIES, render_table
from repro.bench.experiments import run_e7
from repro.data import load_nd

from .conftest import save_result

N = 8000
LOOKUPS = 200


def test_e7_point_queries(benchmark, results_dir):
    rows = run_e7(n=N, lookups=LOOKUPS)
    save_result(results_dir, "E7_mdim_point",
                render_table(rows, title=f"E7: multi-d point queries (n={N})"))

    pts = load_nd("clusters", N, seed=1)
    index = MULTI_DIM_FACTORIES["flood"]().build(pts)
    rng = np.random.default_rng(2)
    queries = pts[rng.integers(0, N, 100)]

    def run():
        for q in queries:
            index.point_query(q)

    benchmark(run)
    # Every index answers every query (hits == LOOKUPS).
    assert all(r["hits"] == LOOKUPS for r in rows)
