"""E8: multi-dimensional range queries across selectivities."""

from repro.bench import MULTI_DIM_FACTORIES, render_table
from repro.bench.experiments import run_e8
from repro.data import load_nd, range_queries_nd

from .conftest import save_result

N = 8000


def test_e8_range_selectivity(benchmark, results_dir):
    rows = run_e8(n=N, queries=40)
    save_result(results_dir, "E8_mdim_range",
                render_table(rows, title=f"E8: multi-d range queries (n={N})"))

    pts = load_nd("clusters", N, seed=1)
    boxes = range_queries_nd(pts, 20, 0.01, seed=2)
    index = MULTI_DIM_FACTORIES["flood"]().build(pts)

    def run():
        for lo, hi in boxes:
            index.range_query(lo, hi)

    benchmark(run)

    # Result sizes must grow with selectivity for every index.
    for name in {r["index"] for r in rows}:
        per_sel = sorted(
            (r["selectivity"], r["avg_results"])
            for r in rows
            if r["index"] == name and r["dataset"] == "uniform"
        )
        sizes = [s for _, s in per_sel]
        assert sizes == sorted(sizes), name
