"""E13: poisoning attacks on learned indexes (open challenge §6.7)."""

import numpy as np

from repro.bench import render_table
from repro.bench.extensions import poison_keys, run_e13
from repro.data import load_1d
from repro.onedim import RMIIndex

from .conftest import save_result

N = 10000


def test_e13_poisoning(benchmark, results_dir):
    rows = run_e13(n=N, lookups=200)
    save_result(results_dir, "E13_poisoning",
                render_table(rows, title=f"E13: poisoning attacks (n={N})"))

    clean = load_1d("uniform", N, seed=1)
    poisoned = np.sort(np.concatenate([clean, poison_keys(clean, 0.2, seed=2)]))
    benchmark(lambda: RMIIndex(num_models=64).build(poisoned))

    by = {(r["index"], r["poison_fraction"]): r for r in rows}
    fractions = sorted({r["poison_fraction"] for r in rows})
    # RMI model error grows monotonically with poison volume; the PGM's
    # worst-case guarantee pins its error at epsilon throughout.
    rmi_errors = [by[("rmi", f)]["max_model_error"] for f in fractions]
    assert rmi_errors == sorted(rmi_errors)
    assert rmi_errors[-1] > 20 * max(rmi_errors[0], 1)
    assert all(by[("pgm (eps=32)", f)]["max_model_error"] == 32 for f in fractions)
