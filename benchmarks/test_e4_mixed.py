"""E4: mixed read/write workloads over the mutable 1-d indexes."""

from repro.bench import MUTABLE_ONE_DIM_FACTORIES, render_table
from repro.bench.experiments import run_e4
from repro.data import load_1d, mixed_workload

from .conftest import save_result

N = 8000
OPS = 3000


def test_e4_mixed_workloads(benchmark, results_dir):
    rows = run_e4(n=N, ops=OPS)
    save_result(results_dir, "E4_mixed",
                render_table(rows, title=f"E4: mixed workloads (n={N}, ops={OPS})"))

    keys = load_1d("lognormal", N, seed=1)
    workload = list(mixed_workload(keys, 500, 0.5, seed=3))
    index = MUTABLE_ONE_DIM_FACTORIES["lipp"]().build(keys)

    def run():
        for op in workload:
            if op.kind == "read":
                index.lookup(op.key)
            else:
                index.insert(op.key, None)

    benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(r["ops_per_s"] > 0 for r in rows)
