"""E12: mutable multi-dimensional insert throughput."""

import numpy as np

from repro.bench import MUTABLE_MULTI_DIM_FACTORIES, render_table
from repro.bench.experiments import run_e12
from repro.data import load_nd

from .conftest import save_result

N = 6000
INSERTS = 3000


def test_e12_mdim_inserts(benchmark, results_dir):
    rows = run_e12(n=N, inserts=INSERTS)
    save_result(results_dir, "E12_mdim_inserts",
                render_table(rows, title=f"E12: multi-d inserts (preload={N})"))

    pts = load_nd("clusters", N, seed=1)
    index = MUTABLE_MULTI_DIM_FACTORIES["lisa"]().build(pts)
    rng = np.random.default_rng(2)
    fresh = rng.uniform(0, 1000, (300, 2))

    def run():
        for i, p in enumerate(fresh):
            index.insert(p + rng.uniform(0, 1e-6, 2), i)

    benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(r["inserts_per_s"] > 0 for r in rows)
    assert all(r["post_insert_lookup_us"] > 0 for r in rows)
