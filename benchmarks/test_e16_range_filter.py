"""E16: SNARF learned range filter — FPR vs bit budget."""

from repro.bench import render_table
from repro.bench.extensions import run_e16
from repro.data import load_1d
from repro.onedim import SNARFFilter

from .conftest import save_result

N = 20000


def test_e16_range_filter(benchmark, results_dir):
    rows = run_e16(n=N, queries=1000)
    save_result(results_dir, "E16_range_filter",
                render_table(rows, title=f"E16: SNARF range filter (n={N})"))

    keys = load_1d("lognormal", N, seed=1)
    benchmark(lambda: SNARFFilter(bits_per_key=8).build(keys))

    snarf_rows = [r for r in rows if r["filter"] == "snarf"]
    # Zero false negatives at every budget; FPR falls monotonically.
    assert all(r["false_negatives"] == 0 for r in snarf_rows)
    fprs = [r["range_fpr"] for r in snarf_rows]
    assert fprs == sorted(fprs, reverse=True)
    assert fprs[-1] < 0.25
