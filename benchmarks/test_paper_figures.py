"""F1-F3 + T1: regenerate the paper's figures from the registry."""

from repro.bench import run_experiment

from .conftest import save_result


def test_figure1_spectrum(benchmark, results_dir):
    text = benchmark(run_experiment, "F1")
    save_result(results_dir, "F1_spectrum", text)
    assert "Spectrum" in text


def test_figure2_taxonomy(benchmark, results_dir):
    text = benchmark(run_experiment, "F2")
    save_result(results_dir, "F2_taxonomy", text)
    assert "Taxonomy" in text


def test_figure3_timeline(benchmark, results_dir):
    text = benchmark(run_experiment, "F3")
    save_result(results_dir, "F3_timeline", text)
    assert "Evolution" in text


def test_table_summary(benchmark, results_dir):
    text = benchmark(run_experiment, "T1")
    save_result(results_dir, "T1_summary", text)
    assert "query types" in text
