"""E5: the PGM epsilon trade-off (index size vs lookup effort)."""

from repro.bench import render_table
from repro.bench.experiments import run_e5
from repro.data import load_1d
from repro.onedim import PGMIndex

from .conftest import save_result

N = 50000


def test_e5_epsilon_tradeoff(benchmark, results_dir):
    rows = run_e5(n=N, lookups=300)
    save_result(results_dir, "E5_epsilon",
                render_table(rows, title=f"E5: PGM epsilon sweep (n={N})"))

    keys = load_1d("books", N, seed=1)
    benchmark(lambda: PGMIndex(epsilon=64).build(keys))

    # The paper's trade-off: size and segments shrink monotonically with
    # epsilon while per-lookup comparisons grow.
    sizes = [r["size_bytes"] for r in rows]
    cmps = [r["cmp_per_op"] for r in rows]
    assert sizes == sorted(sizes, reverse=True)
    assert cmps[0] < cmps[-1]
