"""Ablation benches for the design choices DESIGN.md calls out.

A1 — RMI root-model complexity (linear vs quadratic vs tiny NN).
A2 — ALEX gapped-array density (fill factor vs insert cost).
A3 — ZM-index quantisation bits (code resolution vs scan waste).
A4 — BOURBON model epsilon (learned-LSM search window).
"""

import numpy as np

from repro.bench import render_table
from repro.bench.runner import build_index, measure_inserts, measure_lookups
from repro.data import insert_stream, load_1d, load_nd, point_lookups, range_queries_nd
from repro.multidim import ZMIndex
from repro.onedim import ALEXIndex, BourbonLSM, RMIIndex

from .conftest import save_result


def test_a1_rmi_root_model(benchmark, results_dir):
    n = 20000
    keys = load_1d("osm", n, seed=1)
    queries = point_lookups(keys, 200, seed=2)
    rows = []
    for root in ("linear", "quadratic", "nn"):
        index, build_s = build_index(lambda: RMIIndex(num_models=64, root=root), keys)
        metrics = measure_lookups(index, queries)
        rows.append({
            "root": root,
            "build_s": build_s,
            "max_leaf_error": index.stats.extra["max_leaf_error"],
            "cmp_per_op": metrics["cmp_per_op"],
        })
    save_result(results_dir, "A1_rmi_root",
                render_table(rows, title=f"A1: RMI root model ablation (n={n}, osm)"))
    benchmark(lambda: RMIIndex(num_models=64, root="linear").build(keys))
    # The survey's §6.2 point: the NN root must buy error reduction to
    # justify its build cost — measured either way, build cost rises.
    by = {r["root"]: r for r in rows}
    assert by["nn"]["build_s"] > by["linear"]["build_s"]


def test_a2_alex_density(benchmark, results_dir):
    n = 10000
    keys = load_1d("lognormal", n, seed=3)
    stream = insert_stream(keys, 5000, seed=4)
    rows = []
    for density in (0.5, 0.7, 0.9):
        index, _ = build_index(lambda: ALEXIndex(density=density), keys)
        insert_metrics = measure_inserts(index, stream)
        read_metrics = measure_lookups(index, point_lookups(keys, 200, seed=5))
        rows.append({
            "density": density,
            "size_bytes": index.stats.size_bytes,
            "inserts_per_s": insert_metrics["inserts_per_s"],
            "cmp_per_op": read_metrics["cmp_per_op"],
        })
    save_result(results_dir, "A2_alex_density",
                render_table(rows, title=f"A2: ALEX gapped-array density (n={n})"))
    benchmark(lambda: ALEXIndex(density=0.7).build(keys))
    # Lower density = more gaps = bigger arrays.
    sizes = [r["size_bytes"] for r in rows]
    assert sizes == sorted(sizes, reverse=True)


def test_a3_zm_bits(benchmark, results_dir):
    n = 8000
    pts = load_nd("clusters", n, seed=6)
    boxes = range_queries_nd(pts, 30, 0.001, seed=7)
    rows = []
    for bits in (6, 10, 14, 18):
        index, build_s = build_index(lambda: ZMIndex(bits=bits), pts)
        index.stats.reset_counters()
        for lo, hi in boxes:
            index.range_query(lo, hi)
        rows.append({
            "bits": bits,
            "build_s": build_s,
            "scanned_per_op": index.stats.keys_scanned / len(boxes),
        })
    save_result(results_dir, "A3_zm_bits",
                render_table(rows, title=f"A3: ZM-index quantisation bits (n={n})"))
    benchmark(lambda: ZMIndex(bits=14).build(pts))
    # Coarse codes cram many points into each cell -> more filtering work.
    by = {r["bits"]: r["scanned_per_op"] for r in rows}
    assert by[6] > by[14]


def test_a4_bourbon_epsilon(benchmark, results_dir):
    n = 20000
    keys = load_1d("books", n, seed=8)
    queries = point_lookups(keys, 200, seed=9)
    rows = []
    for epsilon in (4, 16, 64):
        index, _ = build_index(lambda: BourbonLSM(epsilon=epsilon), keys)
        metrics = measure_lookups(index, queries)
        rows.append({
            "epsilon": epsilon,
            "model_bytes": index.model_size_bytes(),
            "cmp_per_op": metrics["cmp_per_op"],
        })
    save_result(results_dir, "A4_bourbon_epsilon",
                render_table(rows, title=f"A4: BOURBON model epsilon (n={n})"))
    benchmark(lambda: BourbonLSM(epsilon=16).build(keys))
    models = [r["model_bytes"] for r in rows]
    cmps = [r["cmp_per_op"] for r in rows]
    assert models == sorted(models, reverse=True)  # tighter eps = bigger model
    assert cmps == sorted(cmps)                    # tighter eps = less search
