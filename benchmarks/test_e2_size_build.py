"""E2: one-dimensional index size and build time."""

from repro.bench import ONE_DIM_FACTORIES, render_table
from repro.bench.experiments import run_e2
from repro.data import load_1d

from .conftest import save_result

N = 20000


def test_e2_size_and_build(benchmark, results_dir):
    rows = run_e2(n=N, datasets=("uniform", "books", "osm"))
    save_result(results_dir, "E2_size_build",
                render_table(rows, title=f"E2: 1-d index size & build (n={N})"))

    keys = load_1d("books", N, seed=1)
    benchmark(lambda: ONE_DIM_FACTORIES["pgm"]().build(keys))

    # Shape checks: the learned-index size claim.
    by = {(r["dataset"], r["index"]): r for r in rows}
    for ds in ("uniform", "books", "osm"):
        assert by[(ds, "pgm")]["size_bytes"] < by[(ds, "b+tree")]["size_bytes"] / 10
        assert by[(ds, "rmi")]["size_bytes"] < by[(ds, "b+tree")]["size_bytes"]
        assert by[(ds, "radix-spline")]["size_bytes"] < by[(ds, "b+tree")]["size_bytes"]
