"""Shared benchmark fixtures.

Every benchmark regenerates one table/figure of EXPERIMENTS.md: it runs
the registered experiment at benchmark scale, writes the rendered table
to ``benchmarks/results/``, and times a representative operation with
pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendered experiment table for EXPERIMENTS.md."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
