"""E11: multi-dimensional index build time and size."""

from repro.bench import MULTI_DIM_FACTORIES, render_table
from repro.bench.experiments import run_e11
from repro.data import load_nd

from .conftest import save_result

N = 8000


def test_e11_build_and_size(benchmark, results_dir):
    rows = run_e11(n=N)
    save_result(results_dir, "E11_mdim_size",
                render_table(rows, title=f"E11: multi-d build & size (n={N})"))

    pts = load_nd("clusters", N, seed=1)
    benchmark(lambda: MULTI_DIM_FACTORIES["zm-index"]().build(pts))
    assert all(r["size_bytes"] > 0 for r in rows)
    assert all(r["build_s"] >= 0 for r in rows)
