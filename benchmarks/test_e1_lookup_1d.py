"""E1: one-dimensional point-lookup latency, index x distribution."""

import numpy as np

from repro.bench import ONE_DIM_FACTORIES, render_table
from repro.bench.experiments import run_e1
from repro.data import load_1d, point_lookups

from .conftest import save_result

N = 20000
LOOKUPS = 300
DATASETS = ("uniform", "lognormal", "books", "osm", "fb")


def test_e1_lookup_latency(benchmark, results_dir):
    rows = run_e1(n=N, lookups=LOOKUPS, datasets=DATASETS)
    save_result(results_dir, "E1_lookup_1d",
                render_table(rows, title=f"E1: 1-d lookups (n={N}, {LOOKUPS} queries)"))

    # Representative timed op: PGM lookups on the hardest dataset.
    keys = load_1d("osm", N, seed=1)
    index = ONE_DIM_FACTORIES["pgm"]().build(keys)
    queries = point_lookups(keys, 100, seed=2)

    def run():
        for q in queries:
            index.lookup(float(q))

    benchmark(run)
    # Shape check: learned indexes must do fewer comparisons than binary
    # search on every dataset.
    by = {(r["dataset"], r["index"]): r for r in rows}
    for ds in DATASETS:
        assert by[(ds, "pgm")]["cmp_per_op"] < by[(ds, "binary-search")]["cmp_per_op"]
        assert by[(ds, "rmi")]["cmp_per_op"] < by[(ds, "binary-search")]["cmp_per_op"]
