"""E9: kNN query latency."""

from repro.bench import MULTI_DIM_FACTORIES, render_table
from repro.bench.experiments import run_e9
from repro.data import knn_queries, load_nd

from .conftest import save_result

N = 8000


def test_e9_knn(benchmark, results_dir):
    rows = run_e9(n=N, queries=30)
    save_result(results_dir, "E9_knn",
                render_table(rows, title=f"E9: kNN queries (n={N} clustered)"))

    pts = load_nd("clusters", N, seed=1)
    index = MULTI_DIM_FACTORIES["kd-tree"]().build(pts)
    queries = knn_queries(pts, 20, seed=2)

    def run():
        for q in queries:
            index.knn_query(q, 10)

    benchmark(run)

    # Larger k costs at least as much for the guided searchers.
    by = {(r["index"], r["k"]): r["knn_us"] for r in rows}
    assert by[("kd-tree", 100)] > by[("kd-tree", 1)]
    assert by[("r-tree", 100)] > by[("r-tree", 1)]
