"""E6: Bloom-filter family — FPR at equal bit budgets."""

import numpy as np

from repro.bench import render_table
from repro.bench.experiments import run_e6
from repro.data import load_1d, negative_lookups
from repro.onedim import LearnedBloomFilter

from .conftest import save_result

N = 8000


def test_e6_bloom_family(benchmark, results_dir):
    rows = run_e6(n=N)
    save_result(results_dir, "E6_bloom",
                render_table(rows, title=f"E6: Bloom family FPR (n={N} clustered keys)"))

    keys = load_1d("osm", N, seed=1)
    negatives = negative_lookups(keys, 500, seed=2)
    flt = LearnedBloomFilter(bits_budget=N * 10).build(keys)

    def probe():
        for q in negatives:
            flt.might_contain(float(q))

    benchmark(probe)

    # Shapes: all filters improve with more bits; the learned variants
    # reach low FPR at small budgets on clustered keys.
    by = {(r["filter"], r["bits_per_key"]): r["fpr"] for r in rows}
    for name in ("bloom", "learned", "sandwiched", "partitioned"):
        assert by[(name, 16)] <= by[(name, 6)] + 0.02
    assert by[("learned", 6)] < 0.5
