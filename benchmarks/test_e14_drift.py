"""E14: distribution drift and re-training (open challenge §6.3)."""

from repro.bench import render_table
from repro.bench.extensions import run_e14
from repro.data import load_1d
from repro.onedim import LearnedSkipList

from .conftest import save_result

N = 8000


def test_e14_drift_and_retraining(benchmark, results_dir):
    rows = run_e14(n=N, drift_inserts=N, lookups=200)
    save_result(results_dir, "E14_drift",
                render_table(rows, title=f"E14: drift + rebuild (n={N})"))

    keys = load_1d("uniform", N, seed=1)
    benchmark(lambda: LearnedSkipList().build(keys))

    by = {(r["index"], r["phase"]): r for r in rows}
    # Re-training recovers the stale-guide skip list.
    assert (by[("learned-skiplist", "rebuilt")]["lookup_us"]
            < by[("learned-skiplist", "drifted")]["lookup_us"])
