"""E10: correlation sensitivity — Flood vs Tsunami vs R-tree.

Includes the untuned-Flood ablation that DESIGN.md calls out.
"""

from repro.bench import render_table
from repro.bench.experiments import run_e10
from repro.data import range_queries_nd
from repro.data.spatial import correlated_points
from repro.multidim import FloodIndex

from .conftest import save_result

N = 8000


def test_e10_correlation_sensitivity(benchmark, results_dir):
    rows = run_e10(n=N, queries=40)
    save_result(results_dir, "E10_correlation",
                render_table(rows, title=f"E10: correlated dims (n={N})"))

    pts = correlated_points(N, seed=1, rho=0.99)
    boxes = range_queries_nd(pts, 20, 0.001, seed=2)
    flood = FloodIndex(columns_per_dim=16).build(pts)

    def run():
        for lo, hi in boxes:
            flood.range_query(lo, hi)

    benchmark(run)

    # The Tsunami result: under strong correlation, region splitting
    # scans fewer keys than the single untuned grid.
    by = {(r["index"], r["rho"]): r for r in rows}
    assert (by[("tsunami", 0.99)]["scanned_per_op"]
            < by[("flood-untuned", 0.99)]["scanned_per_op"])
