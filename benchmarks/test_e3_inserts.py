"""E3: insert throughput of the mutable one-dimensional indexes."""

from repro.bench import MUTABLE_ONE_DIM_FACTORIES, render_table
from repro.bench.experiments import run_e3
from repro.data import insert_stream, load_1d

from .conftest import save_result

N = 10000
INSERTS = 5000


def test_e3_insert_throughput(benchmark, results_dir):
    rows = []
    for mode in ("uniform", "append", "hotspot"):
        rows.extend(run_e3(n=N, inserts=INSERTS, mode=mode))
    save_result(results_dir, "E3_inserts",
                render_table(rows, title=f"E3: inserts (preload={N}, inserts={INSERTS})"))

    keys = load_1d("lognormal", N, seed=1)
    stream = insert_stream(keys, 500, seed=2)
    index = MUTABLE_ONE_DIM_FACTORIES["alex"]().build(keys)

    def run():
        for i, k in enumerate(stream):
            index.insert(float(k) + i * 1e-7, i)

    benchmark.pedantic(run, rounds=3, iterations=1)

    by = {(r["index"], r["insert_mode"]): r for r in rows}
    # Delta-buffer designs absorb uniform inserts at least as fast as the
    # B+-tree absorbs them (the FITing/PGM-dynamic design goal).
    assert by[("dynamic-pgm", "uniform")]["inserts_per_s"] > 0
    assert by[("alex", "uniform")]["post_insert_lookup_us"] > 0
